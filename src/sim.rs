//! Deterministic simulation driver: seeded fault schedules against the
//! durable engine over [`SimFs`], checked after every recovery against a
//! naive in-memory oracle.
//!
//! One `u64` seed determines *everything* a run does — the operation
//! schedule ([`chronicle_simkit::generate`]), the filesystem's fault
//! decisions (which bytes a torn write keeps, which unsynced renames
//! survive a power cut), and where each armed crash strikes. A failing
//! run therefore reproduces from its seed alone: `run_seed(seed, &cfg)`
//! replays it byte-for-byte.
//!
//! # Protocol
//!
//! The driver executes the schedule against a durable
//! [`ChronicleDb`]/[`ShardedDb`] opened over a [`SimFs`] with `fsync`
//! enabled, so every acknowledged (`Ok`) statement is durable by
//! contract. It tracks the acknowledged SQL prefix; after every recovery
//! — crash-induced, clean reopen, or the hard power cut that ends every
//! schedule — it rebuilds a fresh in-memory database replaying that
//! prefix and compares complete logical state (every view snapshot
//! byte-for-byte, periodic-view snapshots, relation contents, chronicle
//! windows and watermarks).
//!
//! A crash can strike mid-statement, leaving exactly one statement
//! *in flight*: its WAL record may or may not have reached the durable
//! medium before the lights went out. Recovery must land on one of the
//! two legal histories — `acked` or `acked + [in_flight]` — and the
//! driver adopts whichever matched as the canonical history going
//! forward. Anything else is a correctness bug, reported as a
//! [`SimFailure`] carrying the reproducing seed.
//!
//! # Known torn state: cross-shard relation broadcasts
//!
//! [`ShardedDb`] replicates relations to every shard by broadcasting DML
//! shard-by-shard, each with its own WAL commit. A power cut mid-broadcast
//! legally leaves a *prefix* of shards with the statement applied and the
//! rest without — the replicas have genuinely diverged, which the sharded
//! engine does not repair (there is no cross-shard atomic commit). The
//! driver verifies the per-shard prefix property (shards `0..j` match the
//! applied history, shards `j..` the unapplied one) and then halts the
//! schedule: subsequent broadcasts against diverged replicas are outside
//! the oracle's model. The halt is counted in
//! [`SimReport::halted_on_divergence`], not a failure.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use chronicle_db::{ChronicleDb, DurabilityOptions, ShardedDb};
use chronicle_simkit::{generate, ScheduleConfig, SimFs, SimOp, Vfs, SHORT_READ_MSG};
use chronicle_sql::{parse, Statement};

/// Salt xored into the schedule seed to derive the filesystem RNG seed,
/// so the two deterministic streams never accidentally correlate.
const FS_SEED_SALT: u64 = 0x0f5f_5eed_0d15_c0de;

/// `SIM_TRACE=1` streams every executed op (with the filesystem mutation
/// counter), crash points, reopens, and — on failure — the surviving
/// files with their WAL frames decoded plus the full recovered/oracle
/// digests, all to stderr. Purely diagnostic: reads no RNG and never
/// changes what a run does, so a traced replay is byte-identical to the
/// original.
fn trace_on() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("SIM_TRACE").is_ok())
}

macro_rules! trace {
    ($($t:tt)*) => {
        if trace_on() {
            eprintln!($($t)*);
        }
    };
}

/// Attempts before a reopen loop gives up (each retry first resolves any
/// pending crash, so this bound is never reached on correct code).
const MAX_REOPEN_ATTEMPTS: u32 = 8;

/// A simulation found a correctness violation (or could not recover).
/// `Display` leads with the seed: pasting it into [`run_seed`] replays
/// the failing run deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// The schedule seed that reproduces this failure.
    pub seed: u64,
    /// What went wrong, with the first diverging state line if any.
    pub detail: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation failure [reproduce with seed {}]: {}",
            self.seed, self.detail
        )
    }
}

impl std::error::Error for SimFailure {}

/// What one completed run did (diagnostics for gates and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// The seed the run replayed.
    pub seed: u64,
    /// SQL statements acknowledged (including adopted in-flight ones).
    pub sql_acked: usize,
    /// Power losses suffered (armed crashes plus the final hard cut).
    pub crashes: usize,
    /// Recoveries performed and verified against the oracle.
    pub recoveries: usize,
    /// Explicit checkpoints completed.
    pub checkpoints: usize,
    /// The run stopped early because a mid-broadcast power cut left
    /// relation replicas legally diverged across shards (sharded mode
    /// only; the diverged state itself was verified shard-by-shard).
    pub halted_on_divergence: bool,
}

/// Run one seeded schedule against a single durable [`ChronicleDb`].
pub fn run_seed(seed: u64, cfg: &ScheduleConfig) -> Result<SimReport, SimFailure> {
    run(seed, cfg, None)
}

/// Run one seeded schedule against a [`ShardedDb`] with `shards` shards.
/// Fault plans are cleared before every reopen (shard recovery is
/// parallel, so an armed countdown would trip in nondeterministic thread
/// order); faults strike only while the database is serially executing.
pub fn run_seed_sharded(
    seed: u64,
    shards: usize,
    cfg: &ScheduleConfig,
) -> Result<SimReport, SimFailure> {
    run(seed, cfg, Some(shards))
}

// ---- driver ---------------------------------------------------------------

/// The system under test: one durable database in either topology.
/// (One instance exists per run, so the size skew between the variants
/// is irrelevant — no boxing.)
#[allow(clippy::large_enum_variant)]
enum Db {
    Single(ChronicleDb),
    Sharded(ShardedDb),
}

impl Db {
    fn execute(&mut self, sql: &str) -> chronicle_types::Result<()> {
        match self {
            Db::Single(db) => db.execute(sql).map(|_| ()),
            Db::Sharded(db) => db.execute(sql).map(|_| ()),
        }
    }

    fn checkpoint(&mut self) -> chronicle_types::Result<()> {
        match self {
            Db::Single(db) => db.checkpoint().map(|_| ()),
            Db::Sharded(db) => db.checkpoint().map(|_| ()),
        }
    }

    fn digest(&self) -> String {
        match self {
            Db::Single(db) => digest_single(db),
            Db::Sharded(db) => digest_sharded(db),
        }
    }
}

fn run(seed: u64, cfg: &ScheduleConfig, shards: Option<usize>) -> Result<SimReport, SimFailure> {
    let schedule = generate(seed, cfg);
    let fs = SimFs::new(seed ^ FS_SEED_SALT);
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let root = PathBuf::from("/sim/db");
    let opts = DurabilityOptions {
        // Small segments force frequent rotation, so schedules exercise
        // the sealed-segment chain, truncation, and gap checks.
        segment_bytes: 1024,
        // Acknowledged ⇒ durable is the invariant the oracle relies on.
        fsync: true,
        auto_checkpoint_records: None,
        keep_checkpoints: 2,
    };
    let mut report = SimReport {
        seed,
        ..SimReport::default()
    };
    let mut acked: Vec<String> = Vec::new();
    let mut db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;

    for op in &schedule.ops {
        match op {
            SimOp::Sql(sql) => {
                trace!(
                    "TRACE sql[{}] muts={} {sql}",
                    acked.len(),
                    fs.mutation_count()
                );
                match db.execute(sql) {
                    Ok(()) => acked.push(sql.clone()),
                    Err(_) if fs.crashed() => {
                        trace!("TRACE crash tripped during sql: {sql}");
                        report.crashes += 1;
                        fs.crash_and_restore();
                        db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                        match verify(&db, &mut acked, Some(sql), shards, seed, &mut report)? {
                            Verdict::Continue => {}
                            Verdict::Halt => {
                                report.halted_on_divergence = true;
                                report.sql_acked = acked.len();
                                return Ok(report);
                            }
                        }
                    }
                    // A benign semantic rejection: the statement depended
                    // on an object whose creating statement was lost in an
                    // earlier crash (e.g. DROP VIEW of a never-durable
                    // view). The oracle agrees — the statement is simply
                    // not part of the acknowledged history.
                    Err(_) => {}
                }
            }
            SimOp::Checkpoint => {
                trace!("TRACE checkpoint muts={}", fs.mutation_count());
                match db.checkpoint() {
                    Ok(()) => report.checkpoints += 1,
                    Err(_) if fs.crashed() => {
                        // Checkpoints change no logical state: recovery
                        // must reproduce exactly the acknowledged history,
                        // however torn the checkpoint/prune/truncate
                        // sequence was.
                        report.crashes += 1;
                        fs.crash_and_restore();
                        db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                        match verify(&db, &mut acked, None, shards, seed, &mut report)? {
                            Verdict::Continue => {}
                            Verdict::Halt => unreachable!("no in-flight statement"),
                        }
                    }
                    Err(e) => {
                        return Err(SimFailure {
                            seed,
                            detail: format!("checkpoint failed on a healthy disk: {e}"),
                        })
                    }
                }
            }
            SimOp::Crash { countdown } => {
                trace!(
                    "TRACE arm crash countdown={countdown} muts={}",
                    fs.mutation_count()
                );
                fs.set_crash_after(*countdown);
            }
            SimOp::Reopen { short_reads } => {
                trace!(
                    "TRACE clean reopen short_reads={short_reads} muts={}",
                    fs.mutation_count()
                );
                drop(db);
                if shards.is_none() {
                    fs.set_short_reads(*short_reads);
                }
                db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                match verify(&db, &mut acked, None, shards, seed, &mut report)? {
                    Verdict::Continue => {}
                    Verdict::Halt => unreachable!("no in-flight statement"),
                }
            }
        }
    }

    // Every schedule ends with a hard power cut — no warning, no flush —
    // and one final verified recovery.
    fs.crash_and_restore();
    report.crashes += 1;
    db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
    match verify(&db, &mut acked, None, shards, seed, &mut report)? {
        Verdict::Continue => {}
        Verdict::Halt => unreachable!("no in-flight statement"),
    }
    report.sql_acked = acked.len();
    Ok(report)
}

/// Open (or re-open) the database, riding out injected faults: a crash
/// countdown tripping mid-recovery gets a power cycle and a fresh
/// attempt; a transient short read gets a plain retry. Any other failure
/// is a real recovery bug. Sharded mode clears fault plans first — its
/// parallel per-shard recovery would otherwise consume them in
/// nondeterministic thread order.
fn reopen(
    fs: &SimFs,
    vfs: &Arc<dyn Vfs>,
    root: &std::path::Path,
    opts: DurabilityOptions,
    shards: Option<usize>,
    seed: u64,
    report: &mut SimReport,
) -> Result<Db, SimFailure> {
    if shards.is_some() {
        fs.clear_faults();
    }
    let mut last_err = String::new();
    for _ in 0..MAX_REOPEN_ATTEMPTS {
        if trace_on() {
            trace_dump_disk(fs);
        }
        let attempt = match shards {
            None => ChronicleDb::open_with_vfs(Arc::clone(vfs), root, opts).map(Db::Single),
            Some(n) => ShardedDb::open_with_vfs(Arc::clone(vfs), root, n, opts).map(Db::Sharded),
        };
        match attempt {
            Ok(db) => {
                report.recoveries += 1;
                return Ok(db);
            }
            Err(e) if fs.crashed() => {
                trace!("TRACE crash during recovery: {e}");
                report.crashes += 1;
                fs.crash_and_restore();
                last_err = e.to_string();
            }
            Err(e) if e.to_string().contains(SHORT_READ_MSG) => {
                last_err = e.to_string();
            }
            Err(e) => {
                if trace_on() {
                    trace_dump_disk(fs);
                }
                return Err(SimFailure {
                    seed,
                    detail: format!("recovery failed on a crash-consistent disk: {e}"),
                });
            }
        }
    }
    Err(SimFailure {
        seed,
        detail: format!(
            "recovery did not converge after {MAX_REOPEN_ATTEMPTS} attempts: {last_err}"
        ),
    })
}

/// `SIM_TRACE` diagnostic: print every file currently live on the
/// simulated disk, decoding WAL segments frame-by-frame (lsn and on-disk
/// size per frame, torn tails called out explicitly). Reading what a
/// crash actually left behind is usually the fastest way to understand a
/// recovery failure.
fn trace_dump_disk(fs: &SimFs) {
    for p in fs.live_files() {
        let data = fs.peek(&p).unwrap_or_default();
        let name = p.display().to_string();
        if !name.ends_with(".seg") {
            eprintln!("TRACE file {name} len={}", data.len());
            continue;
        }
        let mut out = format!("TRACE seg {name} len={}", data.len());
        if data.len() < 16 || &data[..8] != b"CHRWAL01" {
            out.push_str(" <bad header>");
            eprintln!("{out}");
            continue;
        }
        let first = u64::from_le_bytes(data[8..16].try_into().unwrap());
        out.push_str(&format!(" first={first} frames=["));
        let mut pos = 16usize;
        while pos + 16 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let lsn = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().unwrap());
            if pos + 8 + len > data.len() {
                out.push_str(&format!(
                    " torn(lsn={lsn},need={},have={})",
                    len,
                    data.len() - pos - 8
                ));
                pos = data.len();
                break;
            }
            out.push_str(&format!(" {lsn}({}B)", 8 + len));
            pos += 8 + len;
        }
        if pos < data.len() {
            out.push_str(&format!(" +{}B trailing", data.len() - pos));
        }
        out.push_str(" ]");
        eprintln!("{out}");
    }
}

enum Verdict {
    /// Recovered state matched a legal history; `acked` was updated if
    /// the in-flight statement turned out durable.
    Continue,
    /// Sharded relation replicas legally diverged mid-broadcast; stop.
    Halt,
}

/// Compare the recovered database against the oracle. Legal outcomes are
/// `replay(acked)` and `replay(acked + [in_flight])`; in sharded mode a
/// broadcast in-flight statement may also land on a per-shard prefix of
/// the two (see the module docs).
fn verify(
    db: &Db,
    acked: &mut Vec<String>,
    in_flight: Option<&str>,
    shards: Option<usize>,
    seed: u64,
    report: &mut SimReport,
) -> Result<Verdict, SimFailure> {
    let got = db.digest();
    let oracle_a = replay(acked, shards, seed)?;
    let digest_a = oracle_a.digest();
    if got == digest_a {
        return Ok(Verdict::Continue);
    }
    let Some(sql) = in_flight else {
        return Err(diverged(seed, "acknowledged history", &got, &digest_a));
    };
    let mut with_in_flight = acked.clone();
    with_in_flight.push(sql.to_string());
    let oracle_b = replay_lenient(&with_in_flight, shards, seed);
    if let Some(b) = &oracle_b {
        if got == b.digest() {
            acked.push(sql.to_string());
            return Ok(Verdict::Continue);
        }
    }
    // A broadcast statement commits shard-by-shard: a power cut mid-way
    // legally applies it to a prefix of shards only.
    if let (Db::Sharded(real), Db::Sharded(a), Some(Db::Sharded(b))) =
        (db, &oracle_a, oracle_b.as_ref())
    {
        if is_broadcast(sql) {
            let n = real.shard_count();
            let per: Vec<(bool, bool)> = (0..n)
                .map(|i| {
                    let g = digest_single(real.shard(i));
                    (
                        g == digest_single(a.shard(i)),
                        g == digest_single(b.shard(i)),
                    )
                })
                .collect();
            let prefix_ok = (0..=n).any(|j| {
                per.iter()
                    .enumerate()
                    .all(|(i, &(ma, mb))| if i < j { mb } else { ma })
            });
            if prefix_ok {
                report.halted_on_divergence = true;
                return Ok(Verdict::Halt);
            }
        }
    }
    let digest_b = oracle_b.map(|b| b.digest()).unwrap_or_default();
    trace!(
        "== RECOVERED ==\n{got}== ORACLE A (acked) ==\n{digest_a}== ORACLE B (acked+in-flight) ==\n{digest_b}"
    );
    let vs = if digest_b.is_empty() {
        digest_a
    } else {
        digest_b
    };
    Err(diverged(
        seed,
        "both legal histories (with and without the in-flight statement)",
        &got,
        &vs,
    ))
}

fn diverged(seed: u64, what: &str, got: &str, expected: &str) -> SimFailure {
    let first_diff = got
        .lines()
        .zip(expected.lines())
        .find(|(g, e)| g != e)
        .map(|(g, e)| format!("first diff: recovered `{g}` vs oracle `{e}`"))
        .unwrap_or_else(|| {
            format!(
                "line counts differ: recovered {} vs oracle {}",
                got.lines().count(),
                expected.lines().count()
            )
        });
    SimFailure {
        seed,
        detail: format!("recovered state diverges from {what}; {first_diff}"),
    }
}

fn is_broadcast(sql: &str) -> bool {
    matches!(
        parse(sql),
        Ok(Statement::CreateRelation { .. }
            | Statement::InsertRelation { .. }
            | Statement::UpdateRelation { .. }
            | Statement::DeleteRelation { .. })
    )
}

/// The naive oracle: a fresh in-memory database replaying `history`.
/// Every statement in an acknowledged history succeeded against the
/// durable engine, so a replay rejection is itself a correctness signal.
fn replay(history: &[String], shards: Option<usize>, seed: u64) -> Result<Db, SimFailure> {
    let mut db = fresh(shards, seed)?;
    for sql in history {
        db.execute(sql).map_err(|e| SimFailure {
            seed,
            detail: format!("oracle rejected acknowledged statement `{sql}`: {e}"),
        })?;
    }
    Ok(db)
}

/// Oracle replay for a *candidate* history (acked + in-flight): a
/// rejection just means the candidate is not the branch that survived.
fn replay_lenient(history: &[String], shards: Option<usize>, seed: u64) -> Option<Db> {
    let mut db = fresh(shards, seed).ok()?;
    for sql in history {
        db.execute(sql).ok()?;
    }
    Some(db)
}

fn fresh(shards: Option<usize>, seed: u64) -> Result<Db, SimFailure> {
    match shards {
        None => Ok(Db::Single(ChronicleDb::new())),
        Some(n) => ShardedDb::new(n).map(Db::Sharded).map_err(|e| SimFailure {
            seed,
            detail: format!("building oracle: {e}"),
        }),
    }
}

// ---- state digest ---------------------------------------------------------

/// A deterministic text rendering of one database's complete logical
/// state: every persistent-view snapshot byte-for-byte, periodic-view
/// snapshots, relation current versions, chronicle windows and counters,
/// and group watermarks. Two databases are state-equivalent iff their
/// digests are equal; the text form makes the first diverging line
/// reportable.
fn digest_single(db: &ChronicleDb) -> String {
    let mut out = String::new();
    let mut views = db.snapshot_views();
    views.sort();
    for (name, bytes) in views {
        writeln!(out, "view {name} {bytes:?}").expect("string write");
    }
    let mut periodic: Vec<&str> = db.periodic_view_names().collect();
    periodic.sort_unstable();
    for name in periodic {
        let snap = db
            .periodic_view(name)
            .expect("listed periodic view exists")
            .snapshot();
        writeln!(out, "periodic {name} {snap:?}").expect("string write");
    }
    for (name, rel) in db.catalog().relations() {
        let cur = rel.current();
        let mut rows: Vec<String> = cur.to_vec().iter().map(|t| format!("{t:?}")).collect();
        rows.sort_unstable();
        writeln!(out, "relation {name} {rows:?}").expect("string write");
    }
    for c in db.catalog().chronicles() {
        let rows: Vec<String> = c.scan_window().map(|t| format!("{t:?}")).collect();
        writeln!(
            out,
            "chronicle {} last_seq={:?} total={} window={rows:?}",
            c.name(),
            c.last_seq(),
            c.total_appended()
        )
        .expect("string write");
    }
    for g in db.catalog().groups() {
        // Only the watermark is durable group state: a checkpoint's
        // `GroupImage` persists `high_water` and the last chronon, not
        // the full SN→chronon timeline.
        writeln!(
            out,
            "group {} high_water={:?} now={:?}",
            g.name(),
            g.high_water(),
            g.now()
        )
        .expect("string write");
    }
    out
}

fn digest_sharded(db: &ShardedDb) -> String {
    let mut out = String::new();
    for (i, shard) in db.shards().iter().enumerate() {
        writeln!(out, "-- shard {i}").expect("string write");
        out.push_str(&digest_single(shard));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ScheduleConfig {
        ScheduleConfig {
            ops: 60,
            ..ScheduleConfig::default()
        }
    }

    #[test]
    fn single_seed_runs_clean() {
        let report = run_seed(1, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
        assert!(report.recoveries >= 1, "final hard cut always recovers");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_seed(77, &quick_cfg());
        let b = run_seed(77, &quick_cfg());
        assert_eq!(a, b, "a run is a pure function of its seed");
    }

    #[test]
    fn sharded_seed_runs_clean() {
        let report = run_seed_sharded(5, 2, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
    }

    #[test]
    fn failure_prints_reproducing_seed() {
        let f = SimFailure {
            seed: 424242,
            detail: "x".into(),
        };
        assert!(f.to_string().contains("424242"));
    }
}
