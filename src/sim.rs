//! Deterministic simulation driver: seeded fault schedules against the
//! durable engine over [`SimFs`], checked after every recovery against a
//! naive in-memory oracle.
//!
//! One `u64` seed determines *everything* a run does — the operation
//! schedule ([`chronicle_simkit::generate`]), the filesystem's fault
//! decisions (which bytes a torn write keeps, which unsynced renames
//! survive a power cut), and where each armed crash strikes. A failing
//! run therefore reproduces from its seed alone: `run_seed(seed, &cfg)`
//! replays it byte-for-byte.
//!
//! # Protocol
//!
//! The driver executes the schedule against a durable
//! [`ChronicleDb`]/[`ShardedDb`] opened over a [`SimFs`] with `fsync`
//! enabled, so every acknowledged (`Ok`) statement is durable by
//! contract. It tracks the acknowledged SQL prefix; after every recovery
//! — crash-induced, clean reopen, or the hard power cut that ends every
//! schedule — it rebuilds a fresh in-memory database replaying that
//! prefix and compares complete logical state (every view snapshot
//! byte-for-byte, periodic-view snapshots, relation contents, chronicle
//! windows and watermarks).
//!
//! A crash can strike mid-statement, leaving exactly one statement
//! *in flight*: its WAL record may or may not have reached the durable
//! medium before the lights went out. Recovery must land on one of the
//! two legal histories — `acked` or `acked + [in_flight]` — and the
//! driver adopts whichever matched as the canonical history going
//! forward. Anything else is a correctness bug, reported as a
//! [`SimFailure`] carrying the reproducing seed.
//!
//! # Group moves
//!
//! Schedules also carry [`SimOp::MoveGroup`] ops — heavy-light
//! placement's move primitive, driven adversarially. The driver renders
//! each as the pseudo-statement `MOVE GROUP g TO SHARD k` and pushes it
//! through the same acknowledged-history machinery as SQL: sharded runs
//! execute it via [`ShardedDb::move_group`] (the target reduced modulo
//! the shard count) and acknowledge on `Ok`, single-topology runs reject
//! it benignly (nowhere to move a group), and the oracle replays the
//! pseudo-statement identically — placement is part of the per-shard
//! digest, so a placement divergence fails the run like any state
//! divergence. A crash mid-move is verified like any in-flight
//! statement: recovery must land on `acked` (the import never became
//! durable) or `acked + [move]` (it did, and the epoch reconcile in
//! `ShardedDb::open` rolled the half-committed move forward). After
//! every sharded recovery the driver additionally asserts that no
//! non-default group is owned by two shards. Bit-rot runs skip moves: a
//! lossy salvage can drop the import or the evict record independently,
//! and the reconciled aftermath is not enumerable as per-shard prefixes
//! of the acknowledged history.
//!
//! # Known torn state: cross-shard relation broadcasts
//!
//! [`ShardedDb`] replicates relations to every shard by broadcasting DML
//! shard-by-shard, each with its own WAL commit. A power cut mid-broadcast
//! legally leaves a *prefix* of shards with the statement applied and the
//! rest without — the replicas have genuinely diverged, which the sharded
//! engine does not repair (there is no cross-shard atomic commit). The
//! driver verifies the per-shard prefix property (shards `0..j` match the
//! applied history, shards `j..` the unapplied one) and then halts the
//! schedule: subsequent broadcasts against diverged replicas are outside
//! the oracle's model. The halt is counted in
//! [`SimReport::halted_on_divergence`], not a failure.
//!
//! # Bit-rot mode
//!
//! [`run_seed_bit_rot`] and [`run_seed_bit_rot_sharded`] run the same
//! schedule with [`RecoveryPolicy::Salvage`] and, after every power cut,
//! flip a few seeded bits in the durable medium
//! ([`SimFs::inject_bit_rot`]) before recovering. Two properties are
//! checked at every rotted recovery:
//!
//! * **Strict fails loudly.** On a fork of the rotted disk,
//!   [`RecoveryPolicy::Strict`] must either refuse to open or land
//!   exactly on a prefix of the acknowledged history (rot in the final
//!   segment's tail is indistinguishable from a clean torn write, which
//!   Strict legally repairs). Opening onto any other state is a failure.
//! * **Salvage recovers the maximal legal prefix and confesses.** The
//!   salvage open must land on `replay(acked[..k])` for some `k` — and in
//!   single topology the check is *exact*: the driver records the WAL
//!   high-water lsn after every acknowledged statement (statements may
//!   log zero records — a no-op `DELETE` is acknowledged without touching
//!   the log — so statement index and lsn are not interchangeable), and
//!   the [`SalvageReport`]'s `replayed_through`/`lost` fields must name
//!   `k` precisely under that map. Dropped acknowledged statements
//!   without a matching loss confession, or a quarantined file the
//!   report names that does not exist, are failures. After a lossy
//!   salvage the driver rebases its acknowledged history to the
//!   surviving prefix and plays on.
//!
//! In sharded bit-rot runs each shard owns an independent WAL, so the
//! driver checks the per-shard prefix property instead of exact LSN
//! accounting, requires the aggregated report to admit loss whenever a
//! shard dropped acknowledged work, and halts the schedule when shards
//! land on different prefixes (diverged replicas, as above).
//!
//! # Replication mode
//!
//! [`run_replication_seed`] simulates WAL-shipping replication without
//! sockets: a durable leader over one [`SimFs`], a
//! [`chronicle_db::FollowerDb`] over a second, and the real wire stack in
//! between — [`chronicle_net::Shipper`] events encoded to
//! [`chronicle_net::Message`] frames, pushed through a
//! [`chronicle_simkit::SimPipe`] that re-chunks deliveries at seeded byte
//! boundaries, decoded by the real
//! [`FrameDecoder`](chronicle_net::frame::FrameDecoder), and applied
//! through the follower's ingest path. The seeded driver interleaves
//! leader statements with partial shipping, then injects the three
//! network-era faults: connection cuts (in-flight bytes lost mid-frame),
//! follower kills (power cut under the follower, recovery through the
//! normal path, resume from the applied watermark), and leader kills
//! (power cut under the leader mid-segment-stream).
//!
//! Three properties are checked:
//!
//! * after every follower recovery, each follower shard's state matches
//!   *some prefix* of the acknowledged history (shards may legally sit at
//!   different prefixes mid-stream);
//! * after every leader recovery, the leader lands exactly on the
//!   acknowledged history and the follower is never *ahead* of the
//!   recovered leader's durable frontier — the ship-only-flushed
//!   invariant, observed end-to-end;
//! * at the end, one final uninterrupted catch-up converges the follower
//!   to byte-identical full state with zero replication lag.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use chronicle_db::{
    ChronicleDb, DurabilityOptions, FollowerDb, RecoveryPolicy, SalvageReport, ShardedDb,
};
use chronicle_net::frame::{encode_frame, FrameDecoder};
use chronicle_net::{Message, ShipEvent, Shipper, WalSource};
use chronicle_simkit::{generate, ScheduleConfig, SimFs, SimOp, SimPipe, Vfs, SHORT_READ_MSG};
use chronicle_sql::{parse, Statement};

/// Salt xored into the schedule seed to derive the filesystem RNG seed,
/// so the two deterministic streams never accidentally correlate.
const FS_SEED_SALT: u64 = 0x0f5f_5eed_0d15_c0de;

/// `SIM_TRACE=1` streams every executed op (with the filesystem mutation
/// counter), crash points, reopens, and — on failure — the surviving
/// files with their WAL frames decoded plus the full recovered/oracle
/// digests, all to stderr. Purely diagnostic: reads no RNG and never
/// changes what a run does, so a traced replay is byte-identical to the
/// original.
fn trace_on() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("SIM_TRACE").is_ok())
}

macro_rules! trace {
    ($($t:tt)*) => {
        if trace_on() {
            eprintln!($($t)*);
        }
    };
}

/// Attempts before a reopen loop gives up (each retry first resolves any
/// pending crash, so this bound is never reached on correct code).
const MAX_REOPEN_ATTEMPTS: u32 = 8;

/// A simulation found a correctness violation (or could not recover).
/// `Display` leads with the seed: pasting it into [`run_seed`] replays
/// the failing run deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// The schedule seed that reproduces this failure.
    pub seed: u64,
    /// What went wrong, with the first diverging state line if any.
    pub detail: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation failure [reproduce with seed {}]: {}",
            self.seed, self.detail
        )
    }
}

impl std::error::Error for SimFailure {}

/// What one completed run did (diagnostics for gates and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// The seed the run replayed.
    pub seed: u64,
    /// SQL statements acknowledged (including adopted in-flight ones).
    pub sql_acked: usize,
    /// Power losses suffered (armed crashes plus the final hard cut).
    pub crashes: usize,
    /// Recoveries performed and verified against the oracle.
    pub recoveries: usize,
    /// Explicit checkpoints completed.
    pub checkpoints: usize,
    /// The run stopped early because shards legally landed on different
    /// history prefixes — a mid-broadcast power cut, or a bit-rot salvage
    /// that cost one shard more than another (sharded mode only; the
    /// diverged state itself was verified shard-by-shard).
    pub halted_on_divergence: bool,
    /// Bits flipped into the durable medium (bit-rot mode only).
    pub bit_rot_flips: usize,
    /// Salvage opens whose report was non-trivial (something quarantined,
    /// skipped, or lost).
    pub salvaged_opens: usize,
    /// Acknowledged statements dropped by lossy salvages — every one of
    /// them enumerated by a matching [`SalvageReport`].
    pub acked_lost: usize,
    /// Acknowledged `MOVE GROUP` pseudo-statements (sharded runs only;
    /// single topology rejects every move benignly).
    pub moves: usize,
}

/// Render a [`SimOp::MoveGroup`] as the driver's pseudo-statement. The
/// raw target rides in the text; executors reduce it modulo their shard
/// count, so the acknowledged history replays against any oracle with
/// the same topology.
fn render_move(group: &str, to: u64) -> String {
    format!("MOVE GROUP {group} TO SHARD {to}")
}

/// Parse the pseudo-statement back (`None` for real SQL).
fn parse_move(sql: &str) -> Option<(&str, u64)> {
    let rest = sql.strip_prefix("MOVE GROUP ")?;
    let (group, tail) = rest.split_once(" TO SHARD ")?;
    tail.parse().ok().map(|to| (group, to))
}

/// Run one seeded schedule against a single durable [`ChronicleDb`].
pub fn run_seed(seed: u64, cfg: &ScheduleConfig) -> Result<SimReport, SimFailure> {
    run(seed, cfg, None, false)
}

/// Run one seeded schedule against a [`ShardedDb`] with `shards` shards.
/// Fault plans are cleared before every reopen (shard recovery is
/// parallel, so an armed countdown would trip in nondeterministic thread
/// order); faults strike only while the database is serially executing.
pub fn run_seed_sharded(
    seed: u64,
    shards: usize,
    cfg: &ScheduleConfig,
) -> Result<SimReport, SimFailure> {
    run(seed, cfg, Some(shards), false)
}

/// [`run_seed`] with seeded bit rot after every power cut and
/// [`RecoveryPolicy::Salvage`] recovery (see the module docs).
pub fn run_seed_bit_rot(seed: u64, cfg: &ScheduleConfig) -> Result<SimReport, SimFailure> {
    run(seed, cfg, None, true)
}

/// [`run_seed_sharded`] with seeded bit rot after every power cut and
/// [`RecoveryPolicy::Salvage`] recovery (see the module docs).
pub fn run_seed_bit_rot_sharded(
    seed: u64,
    shards: usize,
    cfg: &ScheduleConfig,
) -> Result<SimReport, SimFailure> {
    run(seed, cfg, Some(shards), true)
}

// ---- driver ---------------------------------------------------------------

/// The system under test: one durable database in either topology.
/// (One instance exists per run, so the size skew between the variants
/// is irrelevant — no boxing.)
#[allow(clippy::large_enum_variant)]
enum Db {
    Single(ChronicleDb),
    Sharded(ShardedDb),
}

impl Db {
    fn execute(&mut self, sql: &str) -> chronicle_types::Result<()> {
        if let Some((group, to)) = parse_move(sql) {
            return match self {
                // Single topology has nowhere to move a group: reject,
                // which the driver treats as benign (not acknowledged).
                Db::Single(_) => Err(chronicle_types::ChronicleError::NotFound {
                    kind: "shard",
                    name: to.to_string(),
                }),
                Db::Sharded(db) => {
                    let n = db.shard_count();
                    db.move_group(group, to as usize % n)
                }
            };
        }
        match self {
            Db::Single(db) => db.execute(sql).map(|_| ()),
            Db::Sharded(db) => db.execute(sql).map(|_| ()),
        }
    }

    fn checkpoint(&mut self) -> chronicle_types::Result<()> {
        match self {
            Db::Single(db) => db.checkpoint().map(|_| ()),
            Db::Sharded(db) => db.checkpoint().map(|_| ()),
        }
    }

    fn digest(&self) -> String {
        match self {
            Db::Single(db) => digest_single(db),
            Db::Sharded(db) => digest_sharded(db),
        }
    }

    /// The salvage report of the most recent open (`Some` iff it ran
    /// under [`RecoveryPolicy::Salvage`]; aggregated across shards).
    fn salvage(&self) -> Option<SalvageReport> {
        match self {
            Db::Single(db) => db.stats().salvage.clone(),
            Db::Sharded(db) => db.stats().salvage,
        }
    }

    /// WAL records written since the most recent open (summed across
    /// shards; only meaningful for exact accounting in single topology).
    fn wal_records(&self) -> u64 {
        match self {
            Db::Single(db) => db.stats().wal_records,
            Db::Sharded(db) => db.stats().wal_records,
        }
    }
}

fn run(
    seed: u64,
    cfg: &ScheduleConfig,
    shards: Option<usize>,
    bit_rot: bool,
) -> Result<SimReport, SimFailure> {
    let schedule = generate(seed, cfg);
    let fs = SimFs::new(seed ^ FS_SEED_SALT);
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let root = PathBuf::from("/sim/db");
    let opts = DurabilityOptions {
        // Small segments force frequent rotation, so schedules exercise
        // the sealed-segment chain, truncation, and gap checks.
        segment_bytes: 1024,
        // Acknowledged ⇒ durable is the invariant the oracle relies on.
        fsync: true,
        auto_checkpoint_records: None,
        keep_checkpoints: 2,
        // Bit rot produces exactly the damage Strict refuses by design;
        // salvage recovery is the subject under test in rot mode.
        recovery: if bit_rot {
            RecoveryPolicy::Salvage
        } else {
            RecoveryPolicy::Strict
        },
    };
    let mut report = SimReport {
        seed,
        ..SimReport::default()
    };
    let mut acked: Vec<String> = Vec::new();
    // Single-topology bit-rot accounting: `lsn_map[i]` is the absolute
    // WAL high-water lsn right after `acked[i]` was acknowledged. Not
    // every statement logs a record (a no-op DELETE is acked with none),
    // so this map — not the statement index — is what `replayed_through`
    // is measured against. `wal_base` rebases the per-open record count
    // to absolute lsns after every recovery.
    let mut lsn_map: Vec<u64> = Vec::new();
    let mut wal_base: u64 = 0;
    let mut db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
    wal_base = db.salvage().map_or(wal_base, |r| r.replayed_through);

    for op in &schedule.ops {
        // Group moves run through the same acknowledged-history machinery
        // as SQL: normalize to the pseudo-statement and fall through.
        let rendered;
        let op = match op {
            SimOp::MoveGroup { group, to } => {
                // Rot runs skip moves: a lossy salvage can drop the move's
                // import or evict record on one side only, and the
                // reconciled aftermath (an open-time evict applied atop a
                // rotted prefix) is not enumerable as per-shard prefixes
                // of the acknowledged history. Placement-under-crash is
                // fully verified by the non-rot sweeps above.
                if bit_rot {
                    continue;
                }
                rendered = SimOp::Sql(render_move(group, *to));
                &rendered
            }
            other => other,
        };
        match op {
            SimOp::MoveGroup { .. } => unreachable!("normalized to pseudo-SQL above"),
            SimOp::Sql(sql) => {
                trace!(
                    "TRACE sql[{}] muts={} {sql}",
                    acked.len(),
                    fs.mutation_count()
                );
                match db.execute(sql) {
                    Ok(()) => {
                        acked.push(sql.clone());
                        if bit_rot && shards.is_none() {
                            lsn_map.push(wal_base + db.wal_records());
                        }
                    }
                    Err(_) if fs.crashed() => {
                        trace!("TRACE crash tripped during sql: {sql}");
                        report.crashes += 1;
                        fs.crash_and_restore();
                        if bit_rot {
                            rot_and_probe(
                                &fs,
                                &root,
                                opts,
                                shards,
                                &acked,
                                Some(sql),
                                seed,
                                &mut report,
                            )?;
                        }
                        db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                        wal_base = db.salvage().map_or(wal_base, |r| r.replayed_through);
                        match check(
                            &db,
                            &fs,
                            &mut acked,
                            &mut lsn_map,
                            Some(sql),
                            shards,
                            seed,
                            bit_rot,
                            &mut report,
                        )? {
                            Verdict::Continue => {}
                            Verdict::Halt => {
                                report.halted_on_divergence = true;
                                finalize(&mut report, &acked);
                                return Ok(report);
                            }
                        }
                    }
                    // A benign semantic rejection: the statement depended
                    // on an object whose creating statement was lost in an
                    // earlier crash (e.g. DROP VIEW of a never-durable
                    // view). The oracle agrees — the statement is simply
                    // not part of the acknowledged history.
                    Err(e) => {
                        trace!("TRACE sql rejected: {e}");
                    }
                }
            }
            SimOp::Checkpoint => {
                trace!("TRACE checkpoint muts={}", fs.mutation_count());
                match db.checkpoint() {
                    Ok(()) => report.checkpoints += 1,
                    Err(_) if fs.crashed() => {
                        // Checkpoints change no logical state: recovery
                        // must reproduce exactly the acknowledged history,
                        // however torn the checkpoint/prune/truncate
                        // sequence was.
                        report.crashes += 1;
                        fs.crash_and_restore();
                        if bit_rot {
                            rot_and_probe(
                                &fs,
                                &root,
                                opts,
                                shards,
                                &acked,
                                None,
                                seed,
                                &mut report,
                            )?;
                        }
                        db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                        wal_base = db.salvage().map_or(wal_base, |r| r.replayed_through);
                        match check(
                            &db,
                            &fs,
                            &mut acked,
                            &mut lsn_map,
                            None,
                            shards,
                            seed,
                            bit_rot,
                            &mut report,
                        )? {
                            Verdict::Continue => {}
                            Verdict::Halt => {
                                report.halted_on_divergence = true;
                                finalize(&mut report, &acked);
                                return Ok(report);
                            }
                        }
                    }
                    Err(e) => {
                        return Err(SimFailure {
                            seed,
                            detail: format!("checkpoint failed on a healthy disk: {e}"),
                        })
                    }
                }
            }
            SimOp::Crash { countdown } => {
                trace!(
                    "TRACE arm crash countdown={countdown} muts={}",
                    fs.mutation_count()
                );
                fs.set_crash_after(*countdown);
            }
            SimOp::Reopen { short_reads } => {
                trace!(
                    "TRACE clean reopen short_reads={short_reads} muts={}",
                    fs.mutation_count()
                );
                drop(db);
                if shards.is_none() {
                    fs.set_short_reads(*short_reads);
                }
                db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
                wal_base = db.salvage().map_or(wal_base, |r| r.replayed_through);
                match check(
                    &db,
                    &fs,
                    &mut acked,
                    &mut lsn_map,
                    None,
                    shards,
                    seed,
                    bit_rot,
                    &mut report,
                )? {
                    Verdict::Continue => {}
                    Verdict::Halt => {
                        report.halted_on_divergence = true;
                        finalize(&mut report, &acked);
                        return Ok(report);
                    }
                }
            }
        }
    }

    // Every schedule ends with a hard power cut — no warning, no flush —
    // and one final verified recovery.
    fs.crash_and_restore();
    report.crashes += 1;
    if bit_rot {
        rot_and_probe(&fs, &root, opts, shards, &acked, None, seed, &mut report)?;
    }
    db = reopen(&fs, &vfs, &root, opts, shards, seed, &mut report)?;
    match check(
        &db,
        &fs,
        &mut acked,
        &mut lsn_map,
        None,
        shards,
        seed,
        bit_rot,
        &mut report,
    )? {
        Verdict::Continue => {}
        Verdict::Halt => report.halted_on_divergence = true,
    }
    finalize(&mut report, &acked);
    Ok(report)
}

/// Close out a run's accounting: the acknowledged-statement total and how
/// many of them were group moves (including in-flight moves adopted by a
/// post-crash verification).
fn finalize(report: &mut SimReport, acked: &[String]) {
    report.sql_acked = acked.len();
    report.moves = acked.iter().filter(|s| parse_move(s).is_some()).count();
}

/// Dispatch to the right post-recovery verifier for this run mode.
#[allow(clippy::too_many_arguments)]
fn check(
    db: &Db,
    fs: &SimFs,
    acked: &mut Vec<String>,
    lsn_map: &mut Vec<u64>,
    in_flight: Option<&str>,
    shards: Option<usize>,
    seed: u64,
    bit_rot: bool,
    report: &mut SimReport,
) -> Result<Verdict, SimFailure> {
    assert_single_owner(db, seed)?;
    if bit_rot {
        verify_salvage(db, fs, acked, lsn_map, in_flight, shards, seed, report)
    } else {
        verify(db, acked, in_flight, shards, seed, report)
    }
}

/// After any sharded recovery, every non-default group must live on
/// exactly one shard: the epoch reconcile in `ShardedDb::open` rolls a
/// half-committed move forward and evicts the losing copy, so dual
/// ownership surviving an open is a placement-protocol bug regardless of
/// whether the digests happen to match.
fn assert_single_owner(db: &Db, seed: u64) -> Result<(), SimFailure> {
    let Db::Sharded(s) = db else { return Ok(()) };
    let mut owners: std::collections::HashMap<String, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, shard) in s.shards().iter().enumerate() {
        for g in shard.catalog().groups() {
            // The derived "default" group legitimately exists on every
            // shard that ever appended outside an explicit group.
            if g.name() != "default" {
                owners.entry(g.name().to_string()).or_default().push(i);
            }
        }
    }
    for (name, held) in owners {
        if held.len() > 1 {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "group `{name}` recovered onto {} shards {held:?}: placement reconcile \
                     left dual ownership behind",
                    held.len()
                ),
            });
        }
    }
    Ok(())
}

/// Bit-rot mode, right after a power cut: decay the durable medium, then
/// prove Strict still fails loudly on a fork of the rotted disk (see the
/// module docs).
#[allow(clippy::too_many_arguments)]
fn rot_and_probe(
    fs: &SimFs,
    root: &std::path::Path,
    opts: DurabilityOptions,
    shards: Option<usize>,
    acked: &[String],
    in_flight: Option<&str>,
    seed: u64,
    report: &mut SimReport,
) -> Result<(), SimFailure> {
    let flips = fs.inject_bit_rot();
    trace!(
        "TRACE bit rot: {flips} bit(s) flipped, muts={}",
        fs.mutation_count()
    );
    report.bit_rot_flips += flips;
    strict_probe(fs, root, opts, shards, acked, in_flight, seed)
}

/// Open (or re-open) the database, riding out injected faults: a crash
/// countdown tripping mid-recovery gets a power cycle and a fresh
/// attempt; a transient short read gets a plain retry. Any other failure
/// is a real recovery bug. Sharded mode clears fault plans first — its
/// parallel per-shard recovery would otherwise consume them in
/// nondeterministic thread order.
fn reopen(
    fs: &SimFs,
    vfs: &Arc<dyn Vfs>,
    root: &std::path::Path,
    opts: DurabilityOptions,
    shards: Option<usize>,
    seed: u64,
    report: &mut SimReport,
) -> Result<Db, SimFailure> {
    if shards.is_some() {
        fs.clear_faults();
    }
    let mut last_err = String::new();
    for _ in 0..MAX_REOPEN_ATTEMPTS {
        if trace_on() {
            trace_dump_disk(fs);
        }
        let attempt = match shards {
            None => ChronicleDb::open_with_vfs(Arc::clone(vfs), root, opts).map(Db::Single),
            Some(n) => ShardedDb::open_with_vfs(Arc::clone(vfs), root, n, opts).map(Db::Sharded),
        };
        match attempt {
            Ok(db) => {
                report.recoveries += 1;
                return Ok(db);
            }
            Err(e) if fs.crashed() => {
                trace!("TRACE crash during recovery: {e}");
                report.crashes += 1;
                fs.crash_and_restore();
                last_err = e.to_string();
            }
            Err(e) if e.to_string().contains(SHORT_READ_MSG) => {
                last_err = e.to_string();
            }
            Err(e) => {
                if trace_on() {
                    trace_dump_disk(fs);
                }
                return Err(SimFailure {
                    seed,
                    detail: format!("recovery failed on a crash-consistent disk: {e}"),
                });
            }
        }
    }
    Err(SimFailure {
        seed,
        detail: format!(
            "recovery did not converge after {MAX_REOPEN_ATTEMPTS} attempts: {last_err}"
        ),
    })
}

/// `SIM_TRACE` diagnostic: print every file currently live on the
/// simulated disk, decoding WAL segments frame-by-frame (lsn and on-disk
/// size per frame, torn tails called out explicitly). Reading what a
/// crash actually left behind is usually the fastest way to understand a
/// recovery failure.
fn trace_dump_disk(fs: &SimFs) {
    for p in fs.live_files() {
        let data = fs.peek(&p).unwrap_or_default();
        let name = p.display().to_string();
        if !name.ends_with(".seg") {
            eprintln!("TRACE file {name} len={}", data.len());
            continue;
        }
        let mut out = format!("TRACE seg {name} len={}", data.len());
        if data.len() < 16 || &data[..8] != b"CHRWAL01" {
            out.push_str(" <bad header>");
            eprintln!("{out}");
            continue;
        }
        let first = u64::from_le_bytes(data[8..16].try_into().unwrap());
        out.push_str(&format!(" first={first} frames=["));
        let mut pos = 16usize;
        while pos + 16 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let lsn = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().unwrap());
            if pos + 8 + len > data.len() {
                out.push_str(&format!(
                    " torn(lsn={lsn},need={},have={})",
                    len,
                    data.len() - pos - 8
                ));
                pos = data.len();
                break;
            }
            out.push_str(&format!(" {lsn}({}B)", 8 + len));
            pos += 8 + len;
        }
        if pos < data.len() {
            out.push_str(&format!(" +{}B trailing", data.len() - pos));
        }
        out.push_str(" ]");
        eprintln!("{out}");
    }
}

enum Verdict {
    /// Recovered state matched a legal history; `acked` was updated if
    /// the in-flight statement turned out durable.
    Continue,
    /// Sharded relation replicas legally diverged mid-broadcast; stop.
    Halt,
}

/// Compare the recovered database against the oracle. Legal outcomes are
/// `replay(acked)` and `replay(acked + [in_flight])`; in sharded mode a
/// broadcast in-flight statement may also land on a per-shard prefix of
/// the two (see the module docs).
fn verify(
    db: &Db,
    acked: &mut Vec<String>,
    in_flight: Option<&str>,
    shards: Option<usize>,
    seed: u64,
    report: &mut SimReport,
) -> Result<Verdict, SimFailure> {
    let got = db.digest();
    let oracle_a = replay(acked, shards, seed)?;
    let digest_a = oracle_a.digest();
    if got == digest_a {
        return Ok(Verdict::Continue);
    }
    let Some(sql) = in_flight else {
        return Err(diverged(seed, "acknowledged history", &got, &digest_a));
    };
    let mut with_in_flight = acked.clone();
    with_in_flight.push(sql.to_string());
    let oracle_b = replay_lenient(&with_in_flight, shards, seed);
    if let Some(b) = &oracle_b {
        if got == b.digest() {
            acked.push(sql.to_string());
            return Ok(Verdict::Continue);
        }
    }
    // A broadcast statement commits shard-by-shard: a power cut mid-way
    // legally applies it to a prefix of shards only.
    if let (Db::Sharded(real), Db::Sharded(a), Some(Db::Sharded(b))) =
        (db, &oracle_a, oracle_b.as_ref())
    {
        if is_broadcast(sql) {
            let n = real.shard_count();
            let per: Vec<(bool, bool)> = (0..n)
                .map(|i| {
                    let g = digest_single(real.shard(i));
                    (
                        g == digest_single(a.shard(i)),
                        g == digest_single(b.shard(i)),
                    )
                })
                .collect();
            let prefix_ok = (0..=n).any(|j| {
                per.iter()
                    .enumerate()
                    .all(|(i, &(ma, mb))| if i < j { mb } else { ma })
            });
            if prefix_ok {
                report.halted_on_divergence = true;
                return Ok(Verdict::Halt);
            }
        }
    }
    let digest_b = oracle_b.map(|b| b.digest()).unwrap_or_default();
    trace!(
        "== RECOVERED ==\n{got}== ORACLE A (acked) ==\n{digest_a}== ORACLE B (acked+in-flight) ==\n{digest_b}"
    );
    let vs = if digest_b.is_empty() {
        digest_a
    } else {
        digest_b
    };
    Err(diverged(
        seed,
        "both legal histories (with and without the in-flight statement)",
        &got,
        &vs,
    ))
}

fn diverged(seed: u64, what: &str, got: &str, expected: &str) -> SimFailure {
    let first_diff = got
        .lines()
        .zip(expected.lines())
        .find(|(g, e)| g != e)
        .map(|(g, e)| format!("first diff: recovered `{g}` vs oracle `{e}`"))
        .unwrap_or_else(|| {
            format!(
                "line counts differ: recovered {} vs oracle {}",
                got.lines().count(),
                expected.lines().count()
            )
        });
    SimFailure {
        seed,
        detail: format!("recovered state diverges from {what}; {first_diff}"),
    }
}

// ---- bit-rot verification -------------------------------------------------

/// Oracle digests for every prefix of the acknowledged history, plus the
/// in-flight extension when that candidate replays cleanly.
struct LegalDigests {
    /// `full[k]` = digest of `replay(acked[..k])`; length `acked.len() + 1`.
    full: Vec<String>,
    /// `per_shard[k][i]` = digest of shard `i` after `replay(acked[..k])`
    /// (sharded runs only; empty vectors in single topology).
    per_shard: Vec<Vec<String>>,
    /// Digest of `replay(acked + [in_flight])`, when it replays.
    ext_full: Option<String>,
    /// Its per-shard digests (sharded runs only).
    ext_per_shard: Option<Vec<String>>,
}

fn legal_digests(
    acked: &[String],
    in_flight: Option<&str>,
    shards: Option<usize>,
    seed: u64,
) -> Result<LegalDigests, SimFailure> {
    let mut db = fresh(shards, seed)?;
    let mut full = vec![db.digest()];
    let mut per_shard = vec![shard_digests(&db)];
    for sql in acked {
        db.execute(sql).map_err(|e| SimFailure {
            seed,
            detail: format!("oracle rejected acknowledged statement `{sql}`: {e}"),
        })?;
        full.push(db.digest());
        per_shard.push(shard_digests(&db));
    }
    // Extending the same oracle in place is exactly replay(acked + [sql]).
    let (ext_full, ext_per_shard) = match in_flight {
        Some(sql) if db.execute(sql).is_ok() => (Some(db.digest()), Some(shard_digests(&db))),
        _ => (None, None),
    };
    Ok(LegalDigests {
        full,
        per_shard,
        ext_full,
        ext_per_shard,
    })
}

fn shard_digests(db: &Db) -> Vec<String> {
    match db {
        Db::Single(_) => Vec::new(),
        Db::Sharded(s) => s.shards().iter().map(digest_single).collect(),
    }
}

/// The prefix `k` of the (possibly extended) acknowledged history that
/// shard `i`'s recovered state matches, preferring the longest plain
/// prefix and falling back to the in-flight extension.
fn shard_prefix_match(g: &str, i: usize, l: usize, legal: &LegalDigests) -> Option<usize> {
    (0..=l)
        .rev()
        .find(|&k| g == legal.per_shard[k][i])
        .or_else(|| {
            legal
                .ext_per_shard
                .as_ref()
                .and_then(|e| (g == e[i]).then_some(l + 1))
        })
}

/// Bit-rot-mode verification: the salvage open must land on *some prefix*
/// of the acknowledged history (possibly extended by the in-flight
/// statement), and its [`SalvageReport`] must name the cut.
///
/// The single-topology check is exact: `lsn_map[i]` carries the WAL
/// high-water lsn observed right after `acked[i]` was acknowledged
/// (statements may log zero records — a no-op DELETE is acknowledged
/// without touching the log — so statement index and lsn are *not*
/// interchangeable), and the report's `replayed_through` pins precisely
/// which acknowledged statements survived — the driver demands the
/// recovered state equal that prefix and `lost` start at exactly
/// `replayed_through + 1`. In sharded mode each shard has its own LSN
/// sequence, so the driver checks the per-shard prefix property instead
/// and halts the schedule when shards land on different prefixes.
#[allow(clippy::too_many_arguments)]
fn verify_salvage(
    db: &Db,
    fs: &SimFs,
    acked: &mut Vec<String>,
    lsn_map: &mut Vec<u64>,
    in_flight: Option<&str>,
    shards: Option<usize>,
    seed: u64,
    report: &mut SimReport,
) -> Result<Verdict, SimFailure> {
    let got = db.digest();
    let legal = legal_digests(acked, in_flight, shards, seed)?;
    let l = acked.len();
    let Some(sr) = db.salvage() else {
        return Err(SimFailure {
            seed,
            detail: "a salvage open produced no salvage report".into(),
        });
    };
    // Quarantine means preserved: every file the report names must exist.
    for path in sr
        .checkpoints_quarantined
        .iter()
        .chain(sr.segments_quarantined.iter().map(|q| &q.path))
    {
        if fs.peek(path).is_none() {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "salvage report names quarantined file {} but nothing is there",
                    path.display()
                ),
            });
        }
    }
    if !sr.is_trivial() {
        report.salvaged_opens += 1;
    }
    trace!("TRACE salvage report: {sr}");

    if shards.is_none() {
        // `lost` must dovetail with `replayed_through`: the first lost
        // lsn is always the one right after the last record replayed.
        if let Some(lost) = sr.lost {
            if lost.first != sr.replayed_through + 1 {
                return Err(SimFailure {
                    seed,
                    detail: format!(
                        "salvage report is inconsistent: replayed through lsn {} but reports \
                         loss starting at lsn {}",
                        sr.replayed_through, lost.first
                    ),
                });
            }
        }
        debug_assert_eq!(
            lsn_map.len(),
            l,
            "lsn_map tracks acked one-for-one in single topology"
        );
        let r = sr.replayed_through;
        let high = lsn_map.last().copied().unwrap_or(0);
        if r > high {
            // More records survived than the acknowledged history ever
            // wrote: the extra tail can only be the in-flight statement's.
            let (Some(sql), Some(ext)) = (in_flight, &legal.ext_full) else {
                return Err(SimFailure {
                    seed,
                    detail: format!(
                        "salvage replayed through lsn {r} but the acknowledged history \
                         wrote only {high} records{}",
                        if in_flight.is_some() {
                            " (and the in-flight candidate does not replay)"
                        } else {
                            " and none was in flight"
                        }
                    ),
                });
            };
            if got != *ext {
                return Err(diverged(
                    seed,
                    "the acknowledged history plus the in-flight statement",
                    &got,
                    ext,
                ));
            }
            acked.push(sql.to_string());
            lsn_map.push(r);
            return Ok(Verdict::Continue);
        }
        // The acknowledged prefix covered by the replay: every statement
        // whose high-water lsn is at or below the cut. Zero-record
        // statements at the boundary ride along with their predecessor,
        // which is digest-exact because they changed no state.
        let k = lsn_map.partition_point(|&x| x <= r);
        if got != legal.full[k] {
            return Err(diverged(
                seed,
                &format!("the {k}-statement prefix the salvage report claims"),
                &got,
                &legal.full[k],
            ));
        }
        if k < l {
            // Acknowledged statements were dropped: the report must say
            // so explicitly — silent loss is the cardinal sin here.
            if sr.lost.is_none() {
                return Err(SimFailure {
                    seed,
                    detail: format!(
                        "{} acknowledged statements were dropped but the salvage report \
                         lists no loss",
                        l - k
                    ),
                });
            }
            trace!(
                "TRACE salvage dropped {} acked statement(s); rebasing to prefix {k}",
                l - k
            );
            report.acked_lost += l - k;
            acked.truncate(k);
            lsn_map.truncate(k);
        }
        return Ok(Verdict::Continue);
    }

    // ---- sharded: per-shard prefix property.
    // Fast paths mirror the non-rot verifier: everything survived, with
    // or without the in-flight statement.
    if got == legal.full[l] {
        return Ok(Verdict::Continue);
    }
    if let (Some(sql), Some(ext)) = (in_flight, &legal.ext_full) {
        if got == *ext {
            acked.push(sql.to_string());
            return Ok(Verdict::Continue);
        }
    }
    let Db::Sharded(real) = db else {
        unreachable!("sharded run holds a sharded database")
    };
    let n = real.shard_count();
    let mut ks = Vec::with_capacity(n);
    for i in 0..n {
        let g = digest_single(real.shard(i));
        let Some(k) = shard_prefix_match(&g, i, l, &legal) else {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "shard {i} recovered to a state matching no prefix of the acknowledged \
                     history ({l} statements)"
                ),
            });
        };
        ks.push(k);
    }
    // Shards landed on different prefixes: rot cost one shard more than
    // another, or a mid-broadcast cut legally diverged the replicas. Any
    // dropped acknowledged work must be confessed; either way the oracle
    // cannot model broadcasts against diverged replicas, so halt.
    let min_k = *ks.iter().min().expect("at least one shard");
    if min_k < l {
        report.acked_lost += l - min_k;
        if !sr.data_lost() {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "shards dropped acknowledged statements (per-shard prefixes {ks:?} of \
                     {l}) but the salvage report admits no loss"
                ),
            });
        }
    }
    trace!("TRACE shards on prefixes {ks:?} of {l}; halting");
    Ok(Verdict::Halt)
}

/// Strict recovery must never invent state: on a fork of the rotted
/// disk, [`RecoveryPolicy::Strict`] either refuses loudly or lands
/// exactly on a legal prefix of the acknowledged history (rot in the
/// final segment's tail is indistinguishable from a clean torn write,
/// which Strict legally repairs in place). Succeeding onto anything else
/// is a failure. The fork keeps the probe from disturbing the real run.
fn strict_probe(
    fs: &SimFs,
    root: &std::path::Path,
    opts: DurabilityOptions,
    shards: Option<usize>,
    acked: &[String],
    in_flight: Option<&str>,
    seed: u64,
) -> Result<(), SimFailure> {
    let forked = fs.fork();
    // The probe is about rot, not scheduled faults — and sharded recovery
    // would consume an armed countdown in nondeterministic thread order.
    forked.clear_faults();
    let strict = DurabilityOptions {
        recovery: RecoveryPolicy::Strict,
        ..opts
    };
    let vfs: Arc<dyn Vfs> = Arc::new(forked);
    let opened = match shards {
        None => ChronicleDb::open_with_vfs(vfs, root, strict).map(Db::Single),
        Some(n) => ShardedDb::open_with_vfs(vfs, root, n, strict).map(Db::Sharded),
    };
    let Ok(db) = opened else {
        return Ok(()); // refused loudly: exactly what Strict is for
    };
    let legal = legal_digests(acked, in_flight, shards, seed)?;
    let l = acked.len();
    let ok = match &db {
        Db::Single(_) => {
            let got = db.digest();
            legal.full.contains(&got) || legal.ext_full.as_deref() == Some(got.as_str())
        }
        Db::Sharded(real) => (0..real.shard_count())
            .all(|i| shard_prefix_match(&digest_single(real.shard(i)), i, l, &legal).is_some()),
    };
    if ok {
        Ok(())
    } else {
        Err(SimFailure {
            seed,
            detail: "strict recovery opened a rotted disk onto a state matching no prefix of \
                     the acknowledged history (it must refuse, or repair only a torn tail)"
                .into(),
        })
    }
}

fn is_broadcast(sql: &str) -> bool {
    matches!(
        parse(sql),
        Ok(Statement::CreateRelation { .. }
            | Statement::InsertRelation { .. }
            | Statement::UpdateRelation { .. }
            | Statement::DeleteRelation { .. })
    )
}

/// The naive oracle: a fresh in-memory database replaying `history`.
/// Every statement in an acknowledged history succeeded against the
/// durable engine, so a replay rejection is itself a correctness signal.
fn replay(history: &[String], shards: Option<usize>, seed: u64) -> Result<Db, SimFailure> {
    let mut db = fresh(shards, seed)?;
    for sql in history {
        db.execute(sql).map_err(|e| SimFailure {
            seed,
            detail: format!("oracle rejected acknowledged statement `{sql}`: {e}"),
        })?;
    }
    Ok(db)
}

/// Oracle replay for a *candidate* history (acked + in-flight): a
/// rejection just means the candidate is not the branch that survived.
fn replay_lenient(history: &[String], shards: Option<usize>, seed: u64) -> Option<Db> {
    let mut db = fresh(shards, seed).ok()?;
    for sql in history {
        db.execute(sql).ok()?;
    }
    Some(db)
}

fn fresh(shards: Option<usize>, seed: u64) -> Result<Db, SimFailure> {
    match shards {
        None => Ok(Db::Single(ChronicleDb::new())),
        Some(n) => ShardedDb::new(n).map(Db::Sharded).map_err(|e| SimFailure {
            seed,
            detail: format!("building oracle: {e}"),
        }),
    }
}

// ---- state digest ---------------------------------------------------------

/// A deterministic text rendering of one database's complete logical
/// state: every persistent-view snapshot byte-for-byte, periodic-view
/// snapshots, relation current versions, chronicle windows and counters,
/// and group watermarks. Two databases are state-equivalent iff their
/// digests are equal; the text form makes the first diverging line
/// reportable.
fn digest_single(db: &ChronicleDb) -> String {
    let mut out = String::new();
    let mut views = db.snapshot_views();
    views.sort();
    for (name, bytes) in views {
        writeln!(out, "view {name} {bytes:?}").expect("string write");
    }
    let mut periodic: Vec<&str> = db.periodic_view_names().collect();
    periodic.sort_unstable();
    for name in periodic {
        let snap = db
            .periodic_view(name)
            .expect("listed periodic view exists")
            .snapshot();
        writeln!(out, "periodic {name} {snap:?}").expect("string write");
    }
    for (name, rel) in db.catalog().relations() {
        let cur = rel.current();
        let mut rows: Vec<String> = cur.to_vec().iter().map(|t| format!("{t:?}")).collect();
        rows.sort_unstable();
        writeln!(out, "relation {name} {rows:?}").expect("string write");
    }
    for c in db.catalog().chronicles() {
        let rows: Vec<String> = c.scan_window().map(|t| format!("{t:?}")).collect();
        writeln!(
            out,
            "chronicle {} last_seq={:?} total={} window={rows:?}",
            c.name(),
            c.last_seq(),
            c.total_appended()
        )
        .expect("string write");
    }
    for g in db.catalog().groups() {
        // Only the watermark is durable group state: a checkpoint's
        // `GroupImage` persists `high_water` and the last chronon, not
        // the full SN→chronon timeline.
        writeln!(
            out,
            "group {} high_water={:?} now={:?}",
            g.name(),
            g.high_water(),
            g.now()
        )
        .expect("string write");
    }
    out
}

fn digest_sharded(db: &ShardedDb) -> String {
    let mut out = String::new();
    for (i, shard) in db.shards().iter().enumerate() {
        writeln!(out, "-- shard {i}").expect("string write");
        out.push_str(&digest_single(shard));
    }
    out
}

// ---- replication simulation -----------------------------------------------

/// Salt for the follower's filesystem seed (distinct medium, distinct
/// fault stream).
const FOLLOWER_FS_SALT: u64 = 0xf0_110e_44ba_d5a1;

/// Salt for the driver's network-event RNG.
const NET_SEED_SALT: u64 = 0x0000_e7ca_11d0_5a17;

/// What one replication run did (diagnostics for gates and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// The seed the run replayed.
    pub seed: u64,
    /// Shard count of both topologies.
    pub shards: usize,
    /// SQL statements acknowledged on the leader.
    pub sql_acked: usize,
    /// Shipper pump cycles driven.
    pub pump_cycles: usize,
    /// Connections dropped with bytes in flight.
    pub connection_cuts: usize,
    /// Power cuts under the follower (each followed by a verified
    /// recovery and a resume from the applied watermark).
    pub follower_kills: usize,
    /// Power cuts under the leader (each followed by a verified recovery
    /// and a follower-not-ahead check).
    pub leader_kills: usize,
    /// WAL bytes that entered the pipe.
    pub bytes_shipped: u64,
    /// Bytes lost in flight to cuts and kills.
    pub bytes_lost_in_flight: u64,
}

/// Driver-decision RNG: splitmix64, so the root crate needs no external
/// randomness (the workspace test RNG lives in a dev-only crate).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One leader→follower shipping session: cursors, in-flight bytes, and
/// the receiver's frame reassembly. A cut throws the whole thing away —
/// exactly what a dropped TCP connection does.
struct Session {
    shipper: Shipper,
    pipe: SimPipe,
    dec: FrameDecoder,
}

impl Session {
    /// (Re)connect: resume from the follower's applied watermark. The
    /// small chunk forces many frames per segment, so cuts land
    /// mid-segment and mid-frame.
    fn connect(follower: &FollowerDb) -> Session {
        trace!("TRACE reconnect applied={:?}", follower.applied_lsns());
        Session {
            shipper: Shipper::new(&follower.applied_lsns(), 48),
            pipe: SimPipe::new(),
            dec: FrameDecoder::new(),
        }
    }
}

/// Run one seeded replication schedule: leader and follower on separate
/// simulated disks, the real wire stack in between, seeded partitions and
/// kills (see the module docs). `shards` sets both topologies.
pub fn run_replication_seed(
    seed: u64,
    shards: usize,
    cfg: &ScheduleConfig,
) -> Result<ReplicationReport, SimFailure> {
    let shards = shards.max(1);
    let schedule = generate(seed, cfg);
    let mut rng = Mix(seed ^ NET_SEED_SALT);
    let opts = DurabilityOptions {
        segment_bytes: 1024,
        fsync: true,
        auto_checkpoint_records: None,
        keep_checkpoints: 2,
        recovery: RecoveryPolicy::Strict,
    };

    let lfs = SimFs::new(seed ^ FS_SEED_SALT);
    let lvfs: Arc<dyn Vfs> = Arc::new(lfs.clone());
    let lroot = PathBuf::from("/sim/leader");
    let mut leader =
        ShardedDb::open_with_vfs(Arc::clone(&lvfs), &lroot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: format!("leader open failed on a fresh disk: {e}"),
            }
        })?;

    let ffs = SimFs::new(seed ^ FS_SEED_SALT ^ FOLLOWER_FS_SALT);
    let fvfs: Arc<dyn Vfs> = Arc::new(ffs.clone());
    let froot = PathBuf::from("/sim/follower");
    let mut follower =
        FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: format!("follower open failed on a fresh disk: {e}"),
            }
        })?;

    let mut session = Session::connect(&follower);
    let mut report = ReplicationReport {
        seed,
        shards,
        ..ReplicationReport::default()
    };
    let mut acked: Vec<String> = Vec::new();

    for op in &schedule.ops {
        // The schedule's checkpoint/crash/reopen meta-ops belong to the
        // single-node protocol; replication runs inject their own faults.
        // Group moves ride along: they log `GroupImport`/`GroupEvict`
        // records into the same WAL streams the shipper tails, so the
        // follower must reproduce the leader's placement too.
        let rendered;
        let sql = match op {
            SimOp::Sql(sql) => sql.as_str(),
            SimOp::MoveGroup { group, to } => {
                rendered = render_move(group, *to);
                rendered.as_str()
            }
            _ => continue,
        };
        let executed = match parse_move(sql) {
            Some((group, to)) => leader.move_group(group, to as usize % shards),
            None => leader.execute(sql).map(|_| ()),
        };
        match executed {
            Ok(()) => acked.push(sql.to_string()),
            // Benign semantic rejection (depends on an object an earlier
            // statement never created); not part of the history.
            Err(_) => continue,
        }

        match rng.below(100) {
            // Ship a little: a few pump cycles, partial delivery. Lag is
            // the normal condition, not an error.
            0..=54 => {
                let cycles = 1 + rng.below(3);
                for _ in 0..cycles {
                    pump_cycle(&leader, &mut session, shards, seed, &mut report)?;
                }
                deliver(&mut session, &mut follower, &mut rng, false, seed)?;
            }
            // Leader runs ahead; nothing moves on the wire.
            55..=69 => {}
            // The connection drops mid-flight. That tears the replica
            // down; reattachment goes through the `Replica::start` path,
            // which reopens the follower from disk — the resume point is
            // re-derived from durable state, never from memory (a
            // mid-rewrite segment legally rolls the watermark back).
            70..=79 => {
                trace!("TRACE fault cut in_flight={}", session.pipe.pending());
                report.bytes_lost_in_flight += session.pipe.cut() as u64;
                report.connection_cuts += 1;
                drop(follower);
                follower = FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!("follower reopen failed after a dropped connection: {e}"),
                    })?;
                session = Session::connect(&follower);
            }
            // Power cut under the follower.
            80..=89 => {
                trace!(
                    "TRACE fault follower-kill in_flight={}",
                    session.pipe.pending()
                );
                report.bytes_lost_in_flight += session.pipe.cut() as u64;
                report.follower_kills += 1;
                drop(follower);
                ffs.crash_and_restore();
                follower = FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!("follower recovery failed after a power cut: {e}"),
                    })?;
                verify_follower_prefix(&follower, &acked, shards, seed)?;
                session = Session::connect(&follower);
            }
            // Power cut under the leader, mid-segment-stream.
            _ => {
                trace!(
                    "TRACE fault leader-kill in_flight={}",
                    session.pipe.pending()
                );
                report.bytes_lost_in_flight += session.pipe.cut() as u64;
                report.leader_kills += 1;
                drop(leader);
                lfs.crash_and_restore();
                leader = ShardedDb::open_with_vfs(Arc::clone(&lvfs), &lroot, shards, opts)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!("leader recovery failed after a power cut: {e}"),
                    })?;
                // Kills strike between statements and every acknowledged
                // record was fsynced, so recovery is exact — and the
                // follower must never have applied a record the recovered
                // leader does not hold (ship-only-flushed, end to end).
                let got = digest_sharded(&leader);
                let oracle = replay(&acked, Some(shards), seed)?.digest();
                if got != oracle {
                    return Err(diverged(
                        seed,
                        "the acknowledged history after leader recovery",
                        &got,
                        &oracle,
                    ));
                }
                // The leader's death also drops the connection, so the
                // follower reattaches through a fresh disk open.
                drop(follower);
                follower = FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!("follower reopen failed after a dropped connection: {e}"),
                    })?;
                for s in 0..shards {
                    let durable =
                        WalSource::last_durable_lsn(&leader, s).map_err(|e| SimFailure {
                            seed,
                            detail: format!("leader wal probe: {e}"),
                        })?;
                    if follower.applied_lsn(s) > durable {
                        return Err(SimFailure {
                            seed,
                            detail: format!(
                                "follower shard {s} applied lsn {} but the recovered leader \
                                 is durable only through {durable}: unflushed bytes were \
                                 shipped",
                                follower.applied_lsn(s)
                            ),
                        });
                    }
                }
                session = Session::connect(&follower);
            }
        }
    }

    // Final uninterrupted catch-up: the follower must converge to
    // byte-identical full state with zero replication lag.
    let mut guard = 0u32;
    loop {
        let caught = pump_cycle(&leader, &mut session, shards, seed, &mut report)?;
        deliver(&mut session, &mut follower, &mut rng, true, seed)?;
        if caught && session.pipe.pending() == 0 {
            break;
        }
        guard += 1;
        if guard > 100_000 {
            return Err(SimFailure {
                seed,
                detail: "final catch-up did not converge".into(),
            });
        }
    }
    let got = digest_follower(&follower);
    let want = digest_sharded(&leader);
    if got != want {
        return Err(diverged(
            seed,
            "the leader's final state after full catch-up",
            &got,
            &want,
        ));
    }
    if follower.replication_lag() != Some(0) {
        return Err(SimFailure {
            seed,
            detail: format!(
                "converged follower still reports lag {:?}",
                follower.replication_lag()
            ),
        });
    }
    report.sql_acked = acked.len();
    Ok(report)
}

/// One leader-side pump: shipper events become wire frames in the pipe,
/// followed by a heartbeat carrying the durable frontier. Returns the
/// shipper's caught-up verdict.
fn pump_cycle(
    leader: &ShardedDb,
    session: &mut Session,
    shards: usize,
    seed: u64,
    report: &mut ReplicationReport,
) -> Result<bool, SimFailure> {
    let mut events = Vec::new();
    let caught = session
        .shipper
        .pump(leader, &mut |e| {
            events.push(e);
            Ok(())
        })
        .map_err(|e| SimFailure {
            seed,
            detail: format!("shipper failed against a live leader: {e}"),
        })?;
    for event in events {
        if trace_on() {
            match &event {
                ShipEvent::Start { shard, first_lsn } => {
                    eprintln!("TRACE ship start shard={shard} seg={first_lsn}")
                }
                ShipEvent::Bytes {
                    shard,
                    first_lsn,
                    offset,
                    bytes,
                } => eprintln!(
                    "TRACE ship bytes shard={shard} seg={first_lsn} off={offset} n={}",
                    bytes.len()
                ),
                ShipEvent::Seal { shard, first_lsn } => {
                    eprintln!("TRACE ship seal shard={shard} seg={first_lsn}")
                }
            }
        }
        let msg = match event {
            ShipEvent::Start { shard, first_lsn } => Message::SegStart {
                shard: shard as u32,
                first_lsn,
                term: leader.term(),
            },
            ShipEvent::Bytes {
                shard,
                first_lsn,
                offset,
                bytes,
            } => {
                report.bytes_shipped += bytes.len() as u64;
                Message::SegBytes {
                    shard: shard as u32,
                    first_lsn,
                    offset,
                    bytes,
                }
            }
            ShipEvent::Seal { shard, first_lsn } => Message::SegSeal {
                shard: shard as u32,
                first_lsn,
            },
        };
        session.pipe.send(&encode_frame(&msg.encode()));
    }
    let mut durable = Vec::with_capacity(shards);
    for s in 0..shards {
        durable.push(
            WalSource::last_durable_lsn(leader, s).map_err(|e| SimFailure {
                seed,
                detail: format!("leader wal probe: {e}"),
            })?,
        );
    }
    session
        .pipe
        .send(&encode_frame(&Message::Heartbeat { durable }.encode()));
    report.pump_cycles += 1;
    Ok(caught)
}

/// Drain the pipe into the follower. With `all` false the RNG re-chunks
/// deliveries and may leave a suffix in flight (to be lost if the next
/// event is a cut); with `all` true everything queued is applied. A
/// partitioned pipe delivers nothing (the bytes stay queued, not lost).
fn deliver(
    session: &mut Session,
    follower: &mut FollowerDb,
    rng: &mut Mix,
    all: bool,
    seed: u64,
) -> Result<(), SimFailure> {
    if session.pipe.is_partitioned() {
        return Ok(());
    }
    while session.pipe.pending() > 0 {
        if !all && rng.below(5) == 0 {
            return Ok(()); // leave the rest in flight
        }
        let max = if all {
            session.pipe.pending()
        } else {
            1 + rng.below(session.pipe.pending() as u64) as usize
        };
        let bytes = session.pipe.deliver(max);
        session.dec.feed(&bytes);
        loop {
            let payload = session.dec.next_frame().map_err(|e| SimFailure {
                seed,
                detail: format!("follower rejected a shipped frame: {e}"),
            })?;
            let Some(payload) = payload else { break };
            let msg = Message::decode(&payload).map_err(|e| SimFailure {
                seed,
                detail: format!("follower rejected a shipped message: {e}"),
            })?;
            apply_shipped(follower, msg, seed)?;
        }
    }
    Ok(())
}

fn apply_shipped(follower: &mut FollowerDb, msg: Message, seed: u64) -> Result<(), SimFailure> {
    let applied = match msg {
        Message::SegStart {
            shard,
            first_lsn,
            term,
        } => follower
            .check_leader_term(term)
            .and_then(|()| follower.begin_segment(shard as usize, first_lsn)),
        Message::SegBytes {
            shard,
            first_lsn: _,
            offset,
            bytes,
        } => follower.ingest(shard as usize, offset, &bytes).map(|_| ()),
        Message::SegSeal { shard, first_lsn } => follower.seal_segment(shard as usize, first_lsn),
        Message::Heartbeat { durable } => {
            for (s, lsn) in durable.into_iter().enumerate() {
                follower.note_leader_durable(s, lsn);
            }
            Ok(())
        }
        other => {
            return Err(SimFailure {
                seed,
                detail: format!("unexpected shipping message {other:?}"),
            })
        }
    };
    applied.map_err(|e| SimFailure {
        seed,
        detail: format!("follower refused the shipped stream: {e}"),
    })
}

/// After a follower recovery, every shard must sit on *some prefix* of
/// the acknowledged history (shards advance independently, so prefixes
/// may differ across shards mid-stream).
fn verify_follower_prefix(
    follower: &FollowerDb,
    acked: &[String],
    shards: usize,
    seed: u64,
) -> Result<(), SimFailure> {
    let legal = legal_digests(acked, None, Some(shards), seed)?;
    let l = acked.len();
    for i in 0..shards {
        let g = digest_single(follower.shard(i));
        if shard_prefix_match(&g, i, l, &legal).is_none() {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "follower shard {i} recovered to a state matching no prefix of the \
                     acknowledged history ({l} statements)"
                ),
            });
        }
    }
    Ok(())
}

fn digest_follower(f: &FollowerDb) -> String {
    let mut out = String::new();
    for i in 0..f.shard_count() {
        writeln!(out, "-- shard {i}").expect("string write");
        out.push_str(&digest_single(f.shard(i)));
    }
    out
}

// ---- failover simulation --------------------------------------------------

/// Salt folded (scaled by the promotion ordinal) into each post-promotion
/// fresh follower's filesystem seed, so every incarnation draws an
/// independent fault stream.
const PROMOTION_FS_SALT: u64 = 0x00fa_1107_ead0_0bad;

/// Stamped sessions driven by the failover simulation.
const FAILOVER_CLIENTS: u64 = 3;

/// What one failover run did (diagnostics for gates and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// The seed the run replayed.
    pub seed: u64,
    /// Shard count of every topology in the run.
    pub shards: usize,
    /// Stamped statements acknowledged semi-synchronously (leader durable
    /// *and* follower coverage observed).
    pub stamped_acked: usize,
    /// Leader kills, each followed by a fenced follower promotion.
    pub promotions: usize,
    /// Stale-term streams offered to a promoted lineage's follower — each
    /// must be refused with a typed fencing error.
    pub fencing_probes: usize,
    /// Retries of already-acknowledged stamps (simulated lost acks) — each
    /// must be answered from the dedupe cache without changing state.
    pub dedupe_retries: usize,
    /// Network partitions injected (bytes held, not lost).
    pub partitions: usize,
    /// Heartbeat frames delivered twice (benign retransmits).
    pub heartbeat_duplicates: usize,
    /// Connections dropped with bytes in flight.
    pub connection_cuts: usize,
    /// Power cuts under the follower.
    pub follower_kills: usize,
    /// Shipper pump cycles driven.
    pub pump_cycles: usize,
    /// WAL bytes that entered the pipe.
    pub bytes_shipped: u64,
    /// Bytes lost in flight to cuts and leader deaths.
    pub bytes_lost_in_flight: u64,
}

/// One stamped client session: at most one statement in flight, retried
/// with the same `(session, seq)` stamp until acknowledged.
struct SimClient {
    session: u64,
    seq: u64,
    /// Issued but not yet semi-sync acknowledged: `(seq, sql)`.
    pending: Option<(u64, String)>,
    /// Highest acknowledged seq (0 = none yet).
    acked_seq: u64,
    /// The most recently acknowledged statement, kept for lost-ack
    /// retry probes.
    last_acked: Option<(u64, String)>,
}

/// The live topology of a failover run: current leader, current follower
/// (with its own simulated disk), and the shipping session between them.
struct FailoverNodes {
    leader: ShardedDb,
    follower: FollowerDb,
    session: Session,
    ffs: SimFs,
    fvfs: Arc<dyn Vfs>,
    froot: PathBuf,
}

/// Run one seeded failover schedule: a durable leader, a semi-synchronous
/// follower, stamped client sessions with at most one statement in
/// flight each, and seeded partitions, heartbeat duplication, connection
/// cuts, follower power cuts, and leader deaths — each leader death
/// followed by a fenced promotion of the follower and client redirect.
///
/// Three properties are checked:
///
/// * **Acked statements survive.** A statement is acknowledged only when
///   the leader holds it durably *and* the follower's replayed session
///   table covers its stamp; at every promotion the new leader must
///   cover every acknowledged stamp.
/// * **No statement applies twice.** Retried stamps — lost-ack probes
///   and post-promotion redirects of surviving statements — must be
///   answered from the dedupe cache with byte-identical state before and
///   after; and the final leader state must equal a never-crashed oracle
///   replaying the surviving lineage exactly once per statement.
/// * **Stale terms are fenced.** After every promotion, a stream
///   carrying the deposed term is offered to the new lineage's follower
///   and must be refused with a typed [`ChronicleError::Fenced`] error.
///
/// `cfg.ops` sets the number of event rounds. At least one promotion and
/// one lost-ack retry probe run per seed (forced if the dice never roll
/// them), so the `skip_fencing` and `skip_session_dedupe` mutation
/// checks trip on *any* seed.
pub fn run_failover_seed(
    seed: u64,
    shards: usize,
    cfg: &ScheduleConfig,
) -> Result<FailoverReport, SimFailure> {
    let shards = shards.max(1);
    let mut rng = Mix(seed ^ NET_SEED_SALT);
    let opts = DurabilityOptions {
        segment_bytes: 1024,
        fsync: true,
        auto_checkpoint_records: None,
        keep_checkpoints: 2,
        recovery: RecoveryPolicy::Strict,
    };

    let lfs = SimFs::new(seed ^ FS_SEED_SALT);
    let lvfs: Arc<dyn Vfs> = Arc::new(lfs.clone());
    let lroot = PathBuf::from("/sim/leader");
    let leader =
        ShardedDb::open_with_vfs(Arc::clone(&lvfs), &lroot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: format!("leader open failed on a fresh disk: {e}"),
            }
        })?;

    let ffs = SimFs::new(seed ^ FS_SEED_SALT ^ FOLLOWER_FS_SALT);
    let fvfs: Arc<dyn Vfs> = Arc::new(ffs.clone());
    let froot = PathBuf::from("/sim/follower");
    let follower =
        FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: format!("follower open failed on a fresh disk: {e}"),
            }
        })?;

    let session = Session::connect(&follower);
    let mut nodes = FailoverNodes {
        leader,
        follower,
        session,
        ffs,
        fvfs,
        froot,
    };
    let mut report = FailoverReport {
        seed,
        shards,
        ..FailoverReport::default()
    };
    // Wire counters ride in a ReplicationReport so `pump_cycle` is shared
    // with the replication driver; folded into the report at the end.
    let mut ship = ReplicationReport::default();
    let mut clients: Vec<SimClient> = (1..=FAILOVER_CLIENTS)
        .map(|session| SimClient {
            session,
            seq: 0,
            pending: None,
            acked_seq: 0,
            last_acked: None,
        })
        .collect();
    // The surviving lineage, in first-apply order: the oracle's input. A
    // pending statement that dies with a deposed leader is pruned and
    // re-pushed when its retry freshly applies on the successor.
    let mut lineage: Vec<String> = Vec::new();

    // Prelude: per-session DDL (own group, chronicle, and counting view,
    // so every session's appends route independently and stay
    // per-session monotone in the SEQ column), fully shipped before any
    // fault fires.
    for c in &clients {
        let k = c.session;
        for sql in [
            format!("CREATE GROUP g{k}"),
            format!("CREATE CHRONICLE c{k} (sn SEQ, x INT) IN GROUP g{k}"),
            format!("CREATE VIEW v{k} AS SELECT x, COUNT(*) AS cnt FROM c{k} GROUP BY x"),
        ] {
            nodes.leader.execute(&sql).map_err(|e| SimFailure {
                seed,
                detail: format!("prelude statement `{sql}` rejected: {e}"),
            })?;
            lineage.push(sql);
        }
    }
    catch_up(&mut nodes, shards, &mut rng, seed, &mut ship)?;

    let rounds = cfg.ops.max(10);
    for _ in 0..rounds {
        // Every idle session issues a fresh stamped statement (sn = the
        // stamp's seq, so the SEQ column stays monotone per chronicle).
        for c in clients.iter_mut() {
            if c.pending.is_none() {
                issue(&mut nodes.leader, c, &mut lineage, &mut rng, seed)?;
            }
        }
        match rng.below(100) {
            // Ship a little: lag is the normal condition.
            0..=44 => {
                let cycles = 1 + rng.below(3);
                for _ in 0..cycles {
                    pump_cycle(&nodes.leader, &mut nodes.session, shards, seed, &mut ship)?;
                }
                deliver(
                    &mut nodes.session,
                    &mut nodes.follower,
                    &mut rng,
                    false,
                    seed,
                )?;
            }
            // The link stalls: bytes queue but nothing arrives.
            45..=54 => {
                if !nodes.session.pipe.is_partitioned() {
                    trace!("TRACE fault partition");
                    nodes.session.pipe.partition();
                    report.partitions += 1;
                }
            }
            // The partition heals; queued bytes flow again.
            55..=64 => {
                if nodes.session.pipe.is_partitioned() {
                    trace!("TRACE heal partition");
                    nodes.session.pipe.heal();
                }
                deliver(
                    &mut nodes.session,
                    &mut nodes.follower,
                    &mut rng,
                    false,
                    seed,
                )?;
            }
            // A retransmit duplicates the freshest heartbeat frame (the
            // last frame every pump cycle sends). Heartbeats carry
            // monotone durable frontiers, so the duplicate must be
            // absorbed without effect.
            65..=72 => {
                pump_cycle(&nodes.leader, &mut nodes.session, shards, seed, &mut ship)?;
                nodes.session.pipe.duplicate_last();
                report.heartbeat_duplicates += 1;
                deliver(
                    &mut nodes.session,
                    &mut nodes.follower,
                    &mut rng,
                    false,
                    seed,
                )?;
            }
            // A lost ack: some session retries a statement the leader
            // already acknowledged. The dedupe cache must answer it
            // without changing any state.
            73..=79 => {
                let pick = rng.below(FAILOVER_CLIENTS) as usize;
                if retry_acked(&mut nodes.leader, &clients[pick], seed)? {
                    report.dedupe_retries += 1;
                }
            }
            // The connection drops mid-flight; the follower reattaches
            // through a reopen from disk (no power cut).
            80..=87 => {
                trace!("TRACE fault cut in_flight={}", nodes.session.pipe.pending());
                report.bytes_lost_in_flight += nodes.session.pipe.cut() as u64;
                report.connection_cuts += 1;
                nodes = reattach_follower(nodes, false, shards, opts, seed)?;
            }
            // Power cut under the follower. The leader is alive, so after
            // the verified recovery the follower is caught straight back
            // up — an acknowledged stamp is never left uncovered while
            // the only durable copy sits on a node that could die next.
            88..=93 => {
                trace!(
                    "TRACE fault follower-kill in_flight={}",
                    nodes.session.pipe.pending()
                );
                report.bytes_lost_in_flight += nodes.session.pipe.cut() as u64;
                report.follower_kills += 1;
                nodes = reattach_follower(nodes, true, shards, opts, seed)?;
                verify_follower_prefix(&nodes.follower, &lineage, shards, seed)?;
                catch_up(&mut nodes, shards, &mut rng, seed, &mut ship)?;
            }
            // The leader dies for good: fenced promotion, client redirect.
            _ => {
                nodes = promote_and_redirect(
                    nodes,
                    &mut clients,
                    &mut lineage,
                    shards,
                    opts,
                    &mut rng,
                    seed,
                    &mut report,
                    &mut ship,
                )?;
            }
        }
        ack_sweep(&nodes.follower, &mut clients, &mut report);
    }

    // Every run proves fencing at least once: force a final failover if
    // the dice never rolled one.
    if report.promotions == 0 {
        nodes = promote_and_redirect(
            nodes,
            &mut clients,
            &mut lineage,
            shards,
            opts,
            &mut rng,
            seed,
            &mut report,
            &mut ship,
        )?;
    }

    // Final drain: ship everything, acknowledge everything. Every pending
    // statement is applied on the current leader (promotion re-applies
    // the casualties), so full catch-up must cover every stamp.
    catch_up(&mut nodes, shards, &mut rng, seed, &mut ship)?;
    ack_sweep(&nodes.follower, &mut clients, &mut report);
    for c in &clients {
        if let Some((seq, sql)) = &c.pending {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "session {} statement seq {seq} (`{sql}`) never reached the follower \
                     after full catch-up",
                    c.session
                ),
            });
        }
    }

    // Every run proves the dedupe cache at least once: a guaranteed
    // lost-ack retry of an acknowledged statement.
    let probe = clients
        .iter()
        .find(|c| c.last_acked.is_some())
        .ok_or_else(|| SimFailure {
            seed,
            detail: "no statement was ever acknowledged; the run proved nothing".into(),
        })?;
    if retry_acked(&mut nodes.leader, probe, seed)? {
        report.dedupe_retries += 1;
    }

    // The survivors, exactly once each: leader equals the never-crashed
    // oracle over the surviving lineage, and the follower converges to
    // the leader byte-for-byte with zero lag.
    let got = digest_sharded(&nodes.leader);
    let oracle = replay(&lineage, Some(shards), seed)?.digest();
    if got != oracle {
        return Err(diverged(
            seed,
            "the surviving lineage after the final drain",
            &got,
            &oracle,
        ));
    }
    catch_up(&mut nodes, shards, &mut rng, seed, &mut ship)?;
    let fgot = digest_follower(&nodes.follower);
    if fgot != got {
        return Err(diverged(
            seed,
            "the leader's final state after full catch-up",
            &fgot,
            &got,
        ));
    }
    if nodes.follower.replication_lag() != Some(0) {
        return Err(SimFailure {
            seed,
            detail: format!(
                "converged follower still reports lag {:?}",
                nodes.follower.replication_lag()
            ),
        });
    }

    report.pump_cycles = ship.pump_cycles;
    report.bytes_shipped = ship.bytes_shipped;
    report.bytes_lost_in_flight += ship.bytes_lost_in_flight;
    Ok(report)
}

/// Issue one fresh stamped statement for `c` on the leader and record it
/// in the lineage. The leader applies it durably (fsync on), but it is
/// *not* acknowledged until the follower covers the stamp.
fn issue(
    leader: &mut ShardedDb,
    c: &mut SimClient,
    lineage: &mut Vec<String>,
    rng: &mut Mix,
    seed: u64,
) -> Result<(), SimFailure> {
    c.seq += 1;
    let sql = format!(
        "APPEND INTO c{} VALUES ({}, {})",
        c.session,
        c.seq,
        rng.below(50)
    );
    leader
        .execute_stamped(&sql, c.session, c.seq)
        .map_err(|e| SimFailure {
            seed,
            detail: format!("leader rejected a fresh stamped append `{sql}`: {e}"),
        })?;
    lineage.push(sql.clone());
    c.pending = Some((c.seq, sql));
    trace!("TRACE issue session={} seq={} pending", c.session, c.seq);
    Ok(())
}

/// Acknowledge every pending statement whose stamp the follower now
/// covers — the semi-synchronous ack point.
fn ack_sweep(follower: &FollowerDb, clients: &mut [SimClient], report: &mut FailoverReport) {
    for c in clients.iter_mut() {
        if let Some((seq, _)) = c.pending {
            if follower.session_last_seq(c.session) >= Some(seq) {
                let (seq, sql) = c.pending.take().expect("just matched");
                trace!("TRACE ack session={} seq={}", c.session, seq);
                c.acked_seq = seq;
                c.last_acked = Some((seq, sql));
                report.stamped_acked += 1;
            }
        }
    }
}

/// Replay a lost-ack retry: re-execute the client's *newest* statement
/// with its original stamp (the dedupe table is bounded to one entry per
/// session, so only the newest stamp is retryable — exactly what a
/// one-in-flight client can ever retry). The cache must answer it from
/// the recorded outcome — state byte-identical before and after. Returns
/// whether a retry ran (a session that never issued has nothing to
/// retry).
fn retry_acked(leader: &mut ShardedDb, c: &SimClient, seed: u64) -> Result<bool, SimFailure> {
    let newest = c.pending.as_ref().or(c.last_acked.as_ref());
    let Some((seq, sql)) = newest else {
        return Ok(false);
    };
    let before = digest_sharded(leader);
    leader
        .execute_stamped(sql, c.session, *seq)
        .map_err(|e| SimFailure {
            seed,
            detail: format!(
                "retry of acknowledged statement `{sql}` (session {}, seq {seq}) was \
                 rejected instead of answered from the dedupe cache: {e}",
                c.session
            ),
        })?;
    if digest_sharded(leader) != before {
        return Err(SimFailure {
            seed,
            detail: format!(
                "retry of acknowledged statement `{sql}` (session {}, seq {seq}) was \
                 applied twice: state changed under a duplicate stamp",
                c.session
            ),
        });
    }
    Ok(true)
}

/// Tear the follower down and reopen it from its disk — a dropped
/// connection (`crash` false) or a power cut (`crash` true, unsynced
/// bytes seeded away first). The current handles are released before the
/// reopen: the ingest owns the WAL writers recovery is about to read.
fn reattach_follower(
    nodes: FailoverNodes,
    crash: bool,
    shards: usize,
    opts: DurabilityOptions,
    seed: u64,
) -> Result<FailoverNodes, SimFailure> {
    let FailoverNodes {
        leader,
        follower,
        session,
        ffs,
        fvfs,
        froot,
    } = nodes;
    drop(follower);
    drop(session);
    if crash {
        ffs.crash_and_restore();
    }
    let follower =
        FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: if crash {
                    format!("follower recovery failed after a power cut: {e}")
                } else {
                    format!("follower reopen failed after a dropped connection: {e}")
                },
            }
        })?;
    let session = Session::connect(&follower);
    Ok(FailoverNodes {
        leader,
        follower,
        session,
        ffs,
        fvfs,
        froot,
    })
}

/// Uninterrupted catch-up: heal any partition, then pump and deliver
/// until the shipper reports caught-up and the pipe is dry.
fn catch_up(
    nodes: &mut FailoverNodes,
    shards: usize,
    rng: &mut Mix,
    seed: u64,
    ship: &mut ReplicationReport,
) -> Result<(), SimFailure> {
    nodes.session.pipe.heal();
    let mut guard = 0u32;
    loop {
        let caught = pump_cycle(&nodes.leader, &mut nodes.session, shards, seed, ship)?;
        deliver(&mut nodes.session, &mut nodes.follower, rng, true, seed)?;
        if caught && nodes.session.pipe.pending() == 0 {
            return Ok(());
        }
        guard += 1;
        if guard > 100_000 {
            return Err(SimFailure {
                seed,
                detail: "catch-up did not converge".into(),
            });
        }
    }
}

/// The leader dies permanently: cut the wire, promote the follower under
/// a fenced new term, verify no acknowledged statement was lost and the
/// survivors match the oracle, redirect every client (retries of
/// surviving statements answer from the dedupe cache; casualties freshly
/// re-apply), attach a fresh follower to the new lineage, and prove the
/// deposed term is fenced.
#[allow(clippy::too_many_arguments)]
fn promote_and_redirect(
    nodes: FailoverNodes,
    clients: &mut [SimClient],
    lineage: &mut Vec<String>,
    shards: usize,
    opts: DurabilityOptions,
    rng: &mut Mix,
    seed: u64,
    report: &mut FailoverReport,
    ship: &mut ReplicationReport,
) -> Result<FailoverNodes, SimFailure> {
    use chronicle_types::ChronicleError;

    let FailoverNodes {
        leader,
        follower,
        mut session,
        ..
    } = nodes;
    trace!(
        "TRACE fault leader-death in_flight={} promoting",
        session.pipe.pending()
    );
    report.bytes_lost_in_flight += session.pipe.cut() as u64;
    // The deposed leader and its disk are abandoned for good.
    drop(leader);
    drop(session);

    let mut leader = follower.promote().map_err(|e| SimFailure {
        seed,
        detail: format!("promotion failed: {e}"),
    })?;
    trace!("TRACE promoted term={}", leader.term());

    // Acked statements survive: the promoted leader must cover every
    // acknowledged stamp.
    for c in clients.iter() {
        if c.acked_seq > 0 && leader.session_last_seq(c.session) < Some(c.acked_seq) {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "promotion lost an acknowledged statement: session {} was acked through \
                     seq {} but the promoted leader covers only {:?}",
                    c.session,
                    c.acked_seq,
                    leader.session_last_seq(c.session)
                ),
            });
        }
    }

    // Pending statements that never reached the follower died with the
    // deposed leader: prune them from the lineage (their retries below
    // re-apply them as fresh statements of the new lineage).
    for c in clients.iter() {
        if let Some((seq, sql)) = &c.pending {
            if leader.session_last_seq(c.session) < Some(*seq) {
                trace!("TRACE promotion drops session={} seq={}", c.session, seq);
                lineage.retain(|s| s != sql);
            }
        }
    }

    // The promoted leader is exactly the surviving lineage, once each.
    let got = digest_sharded(&leader);
    let oracle = replay(lineage, Some(shards), seed)?.digest();
    if got != oracle {
        return Err(diverged(
            seed,
            "the surviving lineage after promotion",
            &got,
            &oracle,
        ));
    }

    // Client redirect: every un-acked statement is retried against the
    // new leader with its original stamp. Survivors must be answered
    // from the replicated dedupe cache; casualties freshly apply.
    for c in clients.iter_mut() {
        if let Some((seq, sql)) = c.pending.clone() {
            if leader.session_last_seq(c.session) >= Some(seq) {
                let before = digest_sharded(&leader);
                leader
                    .execute_stamped(&sql, c.session, seq)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!(
                            "post-promotion retry of surviving `{sql}` was rejected: {e}"
                        ),
                    })?;
                if digest_sharded(&leader) != before {
                    return Err(SimFailure {
                        seed,
                        detail: format!(
                            "post-promotion retry of surviving `{sql}` (session {}, seq \
                             {seq}) was applied twice",
                            c.session
                        ),
                    });
                }
            } else {
                leader
                    .execute_stamped(&sql, c.session, seq)
                    .map_err(|e| SimFailure {
                        seed,
                        detail: format!("post-promotion retry of lost `{sql}` was rejected: {e}"),
                    })?;
                if leader.session_last_seq(c.session) != Some(seq) {
                    return Err(SimFailure {
                        seed,
                        detail: format!(
                            "post-promotion retry of lost `{sql}` did not advance session {} \
                             to seq {seq}",
                            c.session
                        ),
                    });
                }
                lineage.push(sql);
            }
        }
    }

    // A fresh follower attaches to the new lineage on its own disk and
    // replays everything — including the promotion's Term record.
    let n = (report.promotions + 1) as u64;
    let ffs =
        SimFs::new(seed ^ FS_SEED_SALT ^ FOLLOWER_FS_SALT ^ PROMOTION_FS_SALT.wrapping_mul(n));
    let fvfs: Arc<dyn Vfs> = Arc::new(ffs.clone());
    let froot = PathBuf::from(format!("/sim/follower{n}"));
    let follower =
        FollowerDb::open_with_vfs(Arc::clone(&fvfs), &froot, shards, opts).map_err(|e| {
            SimFailure {
                seed,
                detail: format!("fresh follower open failed after promotion: {e}"),
            }
        })?;
    let session = Session::connect(&follower);
    let mut nodes = FailoverNodes {
        leader,
        follower,
        session,
        ffs,
        fvfs,
        froot,
    };
    catch_up(&mut nodes, shards, rng, seed, ship)?;
    if nodes.follower.term() != nodes.leader.term() {
        return Err(SimFailure {
            seed,
            detail: format!(
                "caught-up follower replayed term {} but the promoted leader serves term {}",
                nodes.follower.term(),
                nodes.leader.term()
            ),
        });
    }

    // The zombie probe: a stream carrying the deposed term must be
    // refused by the new lineage with a typed fencing error.
    report.fencing_probes += 1;
    let stale = nodes.leader.term() - 1;
    match nodes.follower.check_leader_term(stale) {
        Err(ChronicleError::Fenced { .. }) => {}
        other => {
            return Err(SimFailure {
                seed,
                detail: format!(
                    "a deposed leader's stream (term {stale}) was not fenced by the \
                     promoted lineage (term {}): got {other:?}",
                    nodes.leader.term()
                ),
            });
        }
    }

    report.promotions += 1;
    ack_sweep(&nodes.follower, clients, report);
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ScheduleConfig {
        ScheduleConfig {
            ops: 60,
            ..ScheduleConfig::default()
        }
    }

    #[test]
    fn single_seed_runs_clean() {
        let report = run_seed(1, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
        assert!(report.recoveries >= 1, "final hard cut always recovers");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_seed(77, &quick_cfg());
        let b = run_seed(77, &quick_cfg());
        assert_eq!(a, b, "a run is a pure function of its seed");
    }

    #[test]
    fn sharded_seed_runs_clean() {
        let report = run_seed_sharded(5, 2, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
    }

    #[test]
    fn bit_rot_seed_runs_clean() {
        let report = run_seed_bit_rot(3, &quick_cfg()).unwrap();
        assert!(report.bit_rot_flips > 0, "every cut decays the medium");
        assert!(report.recoveries >= 1);
    }

    #[test]
    fn bit_rot_same_seed_same_report() {
        let a = run_seed_bit_rot(11, &quick_cfg());
        let b = run_seed_bit_rot(11, &quick_cfg());
        assert_eq!(a, b, "rot is part of the deterministic replay");
    }

    #[test]
    fn bit_rot_sharded_seed_runs_clean() {
        let report = run_seed_bit_rot_sharded(7, 2, &quick_cfg()).unwrap();
        assert!(report.bit_rot_flips > 0);
    }

    #[test]
    fn replication_seed_runs_clean() {
        let report = run_replication_seed(1, 1, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
        assert!(report.pump_cycles > 0);
        assert!(report.bytes_shipped > 0);
    }

    #[test]
    fn replication_sharded_seed_runs_clean() {
        let report = run_replication_seed(9, 2, &quick_cfg()).unwrap();
        assert!(report.sql_acked > 0);
        assert_eq!(report.shards, 2);
    }

    #[test]
    fn replication_same_seed_same_report() {
        let a = run_replication_seed(33, 2, &quick_cfg());
        let b = run_replication_seed(33, 2, &quick_cfg());
        assert_eq!(a, b, "shipping faults replay from the seed alone");
    }

    #[test]
    fn replication_seeds_exercise_every_fault() {
        // Across a handful of seeds, each fault class must fire at least
        // once — otherwise the sweep only pretends to cover them.
        let mut cuts = 0;
        let mut fkills = 0;
        let mut lkills = 0;
        for seed in 0..8 {
            let r = run_replication_seed(seed, 2, &quick_cfg()).unwrap();
            cuts += r.connection_cuts;
            fkills += r.follower_kills;
            lkills += r.leader_kills;
        }
        assert!(cuts > 0, "no connection cuts across seeds");
        assert!(fkills > 0, "no follower kills across seeds");
        assert!(lkills > 0, "no leader kills across seeds");
    }

    #[test]
    fn sharded_seeds_apply_group_moves() {
        // The schedule generator emits MoveGroup at ~2% of body rolls, so
        // a dozen seeds must acknowledge at least one move — otherwise the
        // placement machinery is silently unexercised.
        let mut moves = 0;
        for seed in 0..12 {
            moves += run_seed_sharded(seed, 3, &quick_cfg()).unwrap().moves;
        }
        assert!(moves > 0, "no group move acknowledged across seeds");
    }

    #[test]
    fn single_topology_rejects_moves() {
        for seed in 0..6 {
            let r = run_seed(seed, &quick_cfg()).unwrap();
            assert_eq!(r.moves, 0, "single topology must not acknowledge moves");
        }
    }

    #[test]
    fn failover_seed_runs_clean() {
        let report = run_failover_seed(1, 2, &quick_cfg()).unwrap();
        assert!(report.stamped_acked > 0);
        assert!(report.promotions >= 1, "every run proves a promotion");
        assert_eq!(report.fencing_probes, report.promotions);
        assert!(report.dedupe_retries >= 1, "every run proves the cache");
    }

    #[test]
    fn failover_single_shard_runs_clean() {
        let report = run_failover_seed(2, 1, &quick_cfg()).unwrap();
        assert!(report.stamped_acked > 0);
        assert!(report.promotions >= 1);
    }

    #[test]
    fn failover_same_seed_same_report() {
        let a = run_failover_seed(21, 2, &quick_cfg());
        let b = run_failover_seed(21, 2, &quick_cfg());
        assert_eq!(a, b, "failover faults replay from the seed alone");
    }

    #[test]
    fn failover_seeds_exercise_every_fault() {
        let mut partitions = 0;
        let mut dups = 0;
        let mut cuts = 0;
        let mut fkills = 0;
        let mut promotions = 0;
        for seed in 0..8 {
            let r = run_failover_seed(seed, 2, &quick_cfg()).unwrap();
            partitions += r.partitions;
            dups += r.heartbeat_duplicates;
            cuts += r.connection_cuts;
            fkills += r.follower_kills;
            promotions += r.promotions;
        }
        assert!(partitions > 0, "no partitions across seeds");
        assert!(dups > 0, "no duplicated heartbeats across seeds");
        assert!(cuts > 0, "no connection cuts across seeds");
        assert!(fkills > 0, "no follower kills across seeds");
        assert!(promotions >= 8, "every seed promotes at least once");
    }

    #[test]
    fn failure_prints_reproducing_seed() {
        let f = SimFailure {
            seed: 424242,
            detail: "x".into(),
        };
        assert!(f.to_string().contains("424242"));
    }
}
