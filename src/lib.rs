//! # chronicle
//!
//! A complete Rust implementation of the **chronicle data model** from
//! H. V. Jagadish, I. S. Mumick, A. Silberschatz,
//! *View Maintenance Issues for the Chronicle Data Model*, PODS 1995.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! * [`types`] — values, tuples, schemas, sequence numbers, errors,
//! * [`store`] — relations, indexes, temporal versioning, chronicles,
//!   chronicle groups,
//! * [`algebra`] — chronicle algebra (CA/CA₁/CA⋈), summarized chronicle
//!   algebra (SCA), validation, IM-complexity classification, the delta
//!   propagation engine, and a full relational-algebra oracle,
//! * [`views`] — persistent views, the maintenance engine and affected-view
//!   router, calendars and periodic views, sliding-window optimization, and
//!   tiered batch-to-incremental computations,
//! * [`sql`] — the declarative SQL-like view-definition language,
//! * [`db`] — the [`db::ChronicleDb`] facade tying the quadruple
//!   (C, R, L, V) together, plus baselines and a concurrent append pipeline,
//! * [`durability`] — segmented write-ahead log, view checkpointing, and
//!   crash recovery backing [`db::ChronicleDb::open`],
//! * [`net`] — the wire protocol: a leader [`net::Server`] serving SQL
//!   over TCP, WAL log shipping, and follower [`net::Replica`]s serving
//!   read-only views,
//! * [`workload`] — seeded synthetic workload generators.
//!
//! ## Quick start
//!
//! ```
//! use chronicle::prelude::*;
//!
//! let mut db = ChronicleDb::new();
//! db.execute(
//!     "CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)",
//! ).unwrap();
//! db.execute(
//!     "CREATE VIEW total_minutes AS \
//!      SELECT caller, SUM(minutes) AS mins FROM calls GROUP BY caller",
//! ).unwrap();
//! db.execute("APPEND INTO calls VALUES (1, 555, 12.5)").unwrap();
//! db.execute("APPEND INTO calls VALUES (2, 555, 2.5)").unwrap();
//! let rows = db.query_view("total_minutes").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```
//!
//! For a database that survives restarts, open it at a path instead of
//! `ChronicleDb::new()`:
//!
//! ```no_run
//! use chronicle::prelude::*;
//!
//! let mut db = ChronicleDb::open("/var/lib/myapp/chronicle")?;
//! // … appends are logged; checkpoint() persists the views and truncates
//! // the log. Reopening the same path recovers exactly the state every
//! // acknowledged operation produced.
//! db.checkpoint()?;
//! # Ok::<(), ChronicleError>(())
//! ```

pub use chronicle_algebra as algebra;
pub use chronicle_db as db;
pub use chronicle_durability as durability;
pub use chronicle_net as net;
pub use chronicle_simkit as simkit;
pub use chronicle_sql as sql;
pub use chronicle_store as store;
pub use chronicle_types as types;
pub use chronicle_views as views;
pub use chronicle_workload as workload;

pub mod sim;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use chronicle_algebra::{
        AggFunc, CaExpr, ImClass, LanguageFragment, Predicate, ScaExpr, Summarize,
    };
    pub use chronicle_db::{
        AppendOutcome, ChronicleDb, DurabilityOptions, RecoveryPolicy, SalvageReport, ScrubReport,
    };
    pub use chronicle_store::{Catalog, Chronicle, ChronicleGroup, Relation};
    pub use chronicle_types::{
        AttrType, Attribute, ChronicleError, ChronicleId, Chronon, GroupId, RelationId, Schema,
        SeqNo, Tuple, TupleBuilder, Value, ViewId,
    };
    pub use chronicle_views::{Calendar, Interval, PersistentView, TierSchedule};
}
