//! Deterministic complexity-shape assertions across crates, using the
//! delta engine's work counters (never wall time).

use chronicle::algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle::algebra::{
    AggFunc, AggSpec, CaExpr, CmpOp, ImClass, LanguageFragment, Predicate, RelationRef, ScaExpr,
    WorkCounter,
};
use chronicle::prelude::*;
use chronicle::store::{Catalog, Retention};

fn schema() -> Schema {
    Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("k", AttrType::Int),
            Attribute::new("v", AttrType::Float),
        ],
        "sn",
    )
    .unwrap()
}

fn setup(rel_size: i64) -> (Catalog, ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let c = cat
        .create_chronicle("c", g, schema(), Retention::None)
        .unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("k", AttrType::Int),
            Attribute::new("w", AttrType::Float),
        ],
        &["k"],
    )
    .unwrap();
    let r = cat.create_relation("r", rs.clone()).unwrap();
    for i in 0..rel_size {
        cat.relation_insert(r, g, Tuple::new(vec![Value::Int(i), Value::Float(1.0)]))
            .unwrap();
    }
    (cat, c, RelationRef::new(r, rs, "r"))
}

fn one_tuple_batch(c: ChronicleId, seq: u64) -> DeltaBatch {
    DeltaBatch {
        chronicle: c,
        seq: SeqNo(seq),
        tuples: vec![Tuple::new(vec![
            Value::Seq(SeqNo(seq)),
            Value::Int(7),
            Value::Float(1.0),
        ])],
    }
}

fn work_of(cat: &Catalog, view: &ScaExpr, c: ChronicleId) -> u64 {
    let engine = DeltaEngine::new(cat);
    let mut w = WorkCounter::default();
    engine
        .delta_sca(view, &one_tuple_batch(c, 1), &mut w)
        .unwrap();
    w.total()
}

#[test]
fn sca1_work_independent_of_relation_and_chronicle_size() {
    let mut works = Vec::new();
    for rel_size in [0i64, 10, 10_000] {
        let (cat, c, _) = setup(rel_size);
        let view = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["k"],
            vec![AggSpec::new(AggFunc::Sum(2), "s")],
        )
        .unwrap();
        assert_eq!(view.im_class(), ImClass::Constant);
        works.push(work_of(&cat, &view, c));
    }
    assert!(works.windows(2).all(|w| w[0] == w[1]), "{works:?}");

    // And independent of how many appends have happened (|C| grows, work
    // per append does not).
    let (cat, c, _) = setup(0);
    let view = ScaExpr::group_agg(
        CaExpr::chronicle(cat.chronicle(c)),
        &["k"],
        vec![AggSpec::new(AggFunc::Sum(2), "s")],
    )
    .unwrap();
    let engine = DeltaEngine::new(&cat);
    let mut first = None;
    for i in 1..=10_000u64 {
        let mut w = WorkCounter::default();
        engine
            .delta_sca(&view, &one_tuple_batch(c, i), &mut w)
            .unwrap();
        match first {
            None => first = Some(w.total()),
            Some(f) => assert_eq!(w.total(), f, "work changed at append {i}"),
        }
    }
}

#[test]
fn key_join_probes_constant_product_scans_linear() {
    let mut probe_counts = Vec::new();
    let mut scan_counts = Vec::new();
    for rel_size in [10i64, 100, 1_000, 10_000] {
        let (cat, c, rel) = setup(rel_size);
        let keyed = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c))
                .join_rel_key(rel.clone(), &["k"])
                .unwrap(),
            &["k"],
            vec![AggSpec::new(AggFunc::Sum(2), "s")],
        )
        .unwrap();
        assert_eq!(keyed.fragment(), LanguageFragment::CaKey);
        let product = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)).product(rel).unwrap(),
            &["k"],
            vec![AggSpec::new(AggFunc::Sum(2), "s")],
        )
        .unwrap();
        assert_eq!(product.fragment(), LanguageFragment::Ca);
        let engine = DeltaEngine::new(&cat);
        let mut wk = WorkCounter::default();
        engine
            .delta_sca(&keyed, &one_tuple_batch(c, 1), &mut wk)
            .unwrap();
        let mut wp = WorkCounter::default();
        engine
            .delta_sca(&product, &one_tuple_batch(c, 1), &mut wp)
            .unwrap();
        probe_counts.push(wk.index_probes);
        scan_counts.push(wp.rel_tuples_scanned);
    }
    assert!(
        probe_counts.windows(2).all(|w| w[0] == w[1]),
        "key join probes must not grow with |R|: {probe_counts:?}"
    );
    assert_eq!(scan_counts, vec![10, 100, 1_000, 10_000]);
}

#[test]
fn delta_size_matches_theorem_4_2_formula() {
    // j chained products over a relation of size R produce R^j delta tuples
    // per single-tuple append.
    let r_size = 5i64;
    for j in 0..4u32 {
        let (cat, c, rel) = setup(r_size);
        let mut expr = CaExpr::chronicle(cat.chronicle(c));
        for _ in 0..j {
            expr = expr.product(rel.clone()).unwrap();
        }
        let engine = DeltaEngine::new(&cat);
        let mut w = WorkCounter::default();
        let delta = engine
            .delta_ca(&expr, &one_tuple_batch(c, 1), &mut w)
            .unwrap();
        assert_eq!(delta.len() as f64, (r_size as f64).powi(j as i32));
        assert_eq!(expr.cost_model().joins, j);
    }
}

#[test]
fn view_apply_work_linear_in_batch_size() {
    let (cat, c, _) = setup(0);
    let expr = ScaExpr::group_agg(
        CaExpr::chronicle(cat.chronicle(c)),
        &["k"],
        vec![AggSpec::new(AggFunc::Sum(2), "s")],
    )
    .unwrap();
    let mut m = chronicle::views::Maintainer::new();
    m.register("v", expr).unwrap();
    let mut works = Vec::new();
    for (i, t) in [1usize, 10, 100].into_iter().enumerate() {
        let tuples: Vec<Tuple> = (0..t)
            .map(|k| {
                Tuple::new(vec![
                    Value::Seq(SeqNo(i as u64 + 1)),
                    Value::Int(k as i64 + 1_000_000), // brand-new groups each time
                    Value::Float(1.0),
                ])
            })
            .collect();
        let ev = chronicle::views::AppendEvent {
            chronicle: c,
            seq: SeqNo(i as u64 + 1),
            chronon: Chronon(i as i64),
            tuples,
        };
        let report = m.on_append(&cat, &ev).unwrap();
        works.push(report.total_work.total() as f64 / t as f64);
    }
    // Per-tuple work is constant => total is linear in t.
    let max = works.iter().cloned().fold(0.0, f64::max);
    let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 1.5, "per-tuple work should be flat: {works:?}");
}

#[test]
fn theorem_4_3_all_rejections_have_reasons() {
    let (cat, c, _) = setup(1);
    let base = || CaExpr::chronicle(cat.chronicle(c));

    // (1) SN-dropping projection inside CA.
    let err = base().project(&["k", "v"]).unwrap_err();
    assert!(matches!(
        err,
        ChronicleError::NotInLanguage { language: "CA", .. }
    ));

    // (2) SN-free grouping inside CA.
    let err = base()
        .group_by_seq(&["k"], vec![AggSpec::new(AggFunc::Sum(2), "s")])
        .unwrap_err();
    assert!(matches!(
        err,
        ChronicleError::NotInLanguage { language: "CA", .. }
    ));

    // (3) chronicle × chronicle.
    let err = base().product_chronicles(base()).unwrap_err();
    assert!(err.to_string().contains("polynomial in |C|"));

    // (4) non-equi SN join.
    let err = base().join_seq_theta(base(), CmpOp::Le).unwrap_err();
    assert!(err.to_string().contains("Theorem 4.3"));

    // And the SCA summarization mirrors: SN must be dropped there.
    let err = ScaExpr::project(base(), &["sn", "k"]).unwrap_err();
    assert!(matches!(
        err,
        ChronicleError::NotInLanguage {
            language: "SCA",
            ..
        }
    ));
    let err = ScaExpr::group_agg(base(), &["sn"], vec![AggSpec::new(AggFunc::CountStar, "n")])
        .unwrap_err();
    assert!(matches!(
        err,
        ChronicleError::NotInLanguage {
            language: "SCA",
            ..
        }
    ));
}

#[test]
fn im_class_ladder_is_strict() {
    assert!(ImClass::Constant < ImClass::LogR);
    assert!(ImClass::LogR < ImClass::PolyR);
    assert!(ImClass::PolyR < ImClass::PolyC);
    assert_eq!(LanguageFragment::Ca1.im_class(), ImClass::Constant);
    assert_eq!(LanguageFragment::CaKey.im_class(), ImClass::LogR);
    assert_eq!(LanguageFragment::Ca.im_class(), ImClass::PolyR);
}

#[test]
fn maintenance_never_reads_the_chronicle() {
    // With Retention::None, anything that touched chronicle storage would
    // error; maintain thousands of appends over a rich view to prove the
    // path is storage-free.
    let (cat, c, rel) = setup(100);
    let base = CaExpr::chronicle(cat.chronicle(c));
    let p = Predicate::attr_cmp_const(base.schema(), "v", CmpOp::Ge, Value::Float(0.0)).unwrap();
    let expr = ScaExpr::group_agg(
        base.clone()
            .select(p)
            .unwrap()
            .union(base)
            .unwrap()
            .join_rel_key(rel, &["k"])
            .unwrap(),
        &["k"],
        vec![
            AggSpec::new(AggFunc::Sum(2), "s"),
            AggSpec::new(AggFunc::Min(2), "lo"),
            AggSpec::new(AggFunc::Max(2), "hi"),
        ],
    )
    .unwrap();
    let mut m = chronicle::views::Maintainer::new();
    m.register("v", expr).unwrap();
    for i in 1..=5_000u64 {
        let ev = chronicle::views::AppendEvent {
            chronicle: c,
            seq: SeqNo(i),
            chronon: Chronon(i as i64),
            tuples: vec![Tuple::new(vec![
                Value::Seq(SeqNo(i)),
                Value::Int((i % 100) as i64),
                Value::Float(0.5),
            ])],
        };
        m.on_append(&cat, &ev).unwrap();
    }
    assert_eq!(m.view_by_name("v").unwrap().len(), 100);
}
