//! Cross-crate end-to-end scenarios driven entirely through the SQL
//! front-end, checked against the oracle evaluator.

use chronicle::algebra::eval::{canon, eval_sca};
use chronicle::prelude::*;

#[test]
fn cellular_scenario_full_stack() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, callee INT, minutes FLOAT) RETAIN ALL")
        .unwrap();
    db.execute("CREATE RELATION customers (acct INT, plan STRING, PRIMARY KEY (acct))")
        .unwrap();
    db.execute("INSERT INTO customers VALUES (1, 'gold'), (2, 'basic'), (3, 'gold')")
        .unwrap();
    db.execute(
        "CREATE VIEW per_caller AS SELECT caller, SUM(minutes) AS m, COUNT(*) AS n \
         FROM calls GROUP BY caller",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW gold_usage AS SELECT caller, SUM(minutes) AS m FROM calls \
         JOIN customers ON caller = acct WHERE plan = 'gold' GROUP BY caller",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW long_calls AS SELECT caller, COUNT(*) AS n FROM calls \
         WHERE minutes > 10.0 GROUP BY caller",
    )
    .unwrap();

    for i in 0..200i64 {
        let caller = i % 3 + 1;
        let minutes = (i % 23) as f64;
        db.execute(&format!(
            "APPEND INTO calls AT {i} VALUES ({caller}, 9999, {minutes:.1})"
        ))
        .unwrap();
        // Mid-stream plan change (proactive).
        if i == 100 {
            db.execute("UPDATE customers SET plan = 'basic' WHERE acct = 1")
                .unwrap();
        }
    }

    // Every view equals its from-scratch oracle evaluation (which uses the
    // exact temporal-join semantics over the stored chronicle).
    for view in ["per_caller", "gold_usage", "long_calls"] {
        let incremental = canon(db.query_view(view).unwrap());
        let expr = db.maintainer().view_by_name(view).unwrap().expr();
        let oracle = canon(eval_sca(db.catalog(), expr).unwrap());
        assert_eq!(incremental, oracle, "view `{view}` diverged from oracle");
    }

    // Spot check: caller 1's gold usage only counts minutes before the
    // plan change at i == 100.
    let gold1 = db
        .query_view_key("gold_usage", &[Value::Int(1)])
        .unwrap()
        .unwrap();
    let all1 = db
        .query_view_key("per_caller", &[Value::Int(1)])
        .unwrap()
        .unwrap();
    assert!(gold1.get(1).as_float().unwrap() < all1.get(1).as_float().unwrap());
}

#[test]
fn view_classification_surfaces_through_sql() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION r (k INT, w FLOAT, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE RELATION keyless (k INT, w FLOAT)")
        .unwrap();

    db.execute("CREATE VIEW v1 AS SELECT k, SUM(v) AS s FROM c GROUP BY k")
        .unwrap();
    db.execute("CREATE VIEW v2 AS SELECT k, SUM(v) AS s FROM c JOIN r ON k = k GROUP BY k")
        .unwrap();
    db.execute("CREATE VIEW v3 AS SELECT k, SUM(v) AS s FROM c CROSS JOIN keyless GROUP BY k")
        .unwrap();

    let class = |name: &str| {
        db.maintainer()
            .view_by_name(name)
            .unwrap()
            .expr()
            .im_class()
            .paper_name()
    };
    assert_eq!(class("v1"), "IM-Constant");
    assert_eq!(class("v2"), "IM-log(R)");
    assert_eq!(class("v3"), "IM-R^k");
}

#[test]
fn projection_views_maintain_set_semantics() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT) RETAIN ALL")
        .unwrap();
    db.execute("CREATE VIEW distinct_k AS SELECT k FROM c")
        .unwrap();
    for i in 0..50i64 {
        db.execute(&format!("APPEND INTO c AT {i} VALUES ({}, 1.0)", i % 7))
            .unwrap();
    }
    let rows = db.query_view("distinct_k").unwrap();
    assert_eq!(rows.len(), 7);
    let expr = db.maintainer().view_by_name("distinct_k").unwrap().expr();
    assert_eq!(canon(rows), canon(eval_sca(db.catalog(), expr).unwrap()));
}

#[test]
fn multi_chronicle_group_union_view() {
    // Two chronicles in one group; a view over their union maintained from
    // both append streams.
    let mut db = ChronicleDb::new();
    db.execute("CREATE GROUP traffic").unwrap();
    db.execute(
        "CREATE CHRONICLE calls (sn SEQ, acct INT, units FLOAT) IN GROUP traffic RETAIN ALL",
    )
    .unwrap();
    db.execute(
        "CREATE CHRONICLE texts (sn SEQ, acct INT, units FLOAT) IN GROUP traffic RETAIN ALL",
    )
    .unwrap();
    // The SQL layer has single-FROM views; build the union via the API.
    let calls = db.catalog().chronicle_id("calls").unwrap();
    let texts = db.catalog().chronicle_id("texts").unwrap();
    let expr = chronicle::algebra::ScaExpr::group_agg(
        chronicle::algebra::CaExpr::chronicle(db.catalog().chronicle(calls))
            .union(chronicle::algebra::CaExpr::chronicle(
                db.catalog().chronicle(texts),
            ))
            .unwrap(),
        &["acct"],
        vec![chronicle::algebra::AggSpec::new(
            chronicle::algebra::AggFunc::Sum(2),
            "units",
        )],
    )
    .unwrap();
    db.create_view("all_units", expr).unwrap();

    db.execute("APPEND INTO calls AT 1 VALUES (7, 2.0)")
        .unwrap();
    db.execute("APPEND INTO texts AT 2 VALUES (7, 0.5)")
        .unwrap();
    db.execute("APPEND INTO calls AT 3 VALUES (8, 1.0)")
        .unwrap();

    let row = db
        .query_view_key("all_units", &[Value::Int(7)])
        .unwrap()
        .unwrap();
    assert_eq!(row.get(1), &Value::Float(2.5));
    // Group-level monotonicity: the union view's oracle agrees.
    let expr = db.maintainer().view_by_name("all_units").unwrap().expr();
    assert_eq!(
        canon(db.query_view("all_units").unwrap()),
        canon(eval_sca(db.catalog(), expr).unwrap())
    );
}

#[test]
fn unstored_chronicle_supports_views_but_not_scans() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap(); // RETAIN NONE
    db.execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap();
    for i in 0..100i64 {
        db.execute(&format!("APPEND INTO c AT {i} VALUES (1, 1.0)"))
            .unwrap();
    }
    assert_eq!(
        db.query_view_key("s", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(100.0)
    );
    // The oracle CANNOT run: the chronicle was never stored. That is the
    // model's whole point.
    let expr = db.maintainer().view_by_name("s").unwrap().expr();
    assert!(matches!(
        eval_sca(db.catalog(), expr).unwrap_err(),
        ChronicleError::ChronicleNotStored { .. }
    ));
}
