//! Property-based oracle equivalence: for randomly generated SCA views and
//! randomly generated append/update histories, incremental maintenance
//! produces exactly the same relation as from-scratch evaluation with full
//! temporal-join semantics.
//!
//! This is the strongest correctness statement in the test suite: it
//! covers σ/Π/∪/−/⋈SN/GROUPBY-SN, both summarization forms, key joins and
//! products against a relation that is being proactively updated mid-run.

use chronicle_testkit::prop::{
    boxed, floats, from_fn, ints, map, pair, triple, vec_of, weighted, Gen,
};
use chronicle_testkit::{prop_assert, prop_assert_eq, prop_test, Rng};

use chronicle::algebra::eval::{canon, eval_sca};
use chronicle::algebra::{AggFunc, AggSpec, CaExpr, CmpOp, Predicate, RelationRef, ScaExpr};
use chronicle::db::ChronicleDb;
use chronicle::prelude::*;

/// A compact description of a generated view, turned into a real `ScaExpr`
/// against the live catalog.
#[derive(Debug, Clone)]
struct ViewSpec {
    /// 0 = calls only, 1 = union, 2 = diff(all, selected), 3 = joinSN.
    shape: u8,
    select_threshold: Option<f64>,
    rel_op: u8, // 0 = none, 1 = key join, 2 = product
    summarize_group: bool,
    agg: u8, // 0 sum, 1 count, 2 min, 3 max, 4 avg
}

#[derive(Debug, Clone)]
enum Op {
    /// Append (caller, minutes) to calls (plus mirrored texts tuple for
    /// multi-chronicle shapes).
    Append {
        caller: i64,
        minutes: f64,
        batch2: bool,
    },
    /// Proactively update the rate of `acct`.
    UpdateRate { acct: i64, rate: f64 },
}

fn view_gen() -> impl Gen<Value = ViewSpec> {
    from_fn(
        |rng| ViewSpec {
            shape: rng.gen_range(0..4u8),
            select_threshold: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0.0..8.0f64))
            } else {
                None
            },
            rel_op: rng.gen_range(0..3u8),
            summarize_group: rng.gen_bool(0.5),
            agg: rng.gen_range(0..5u8),
        },
        // Shrink one knob at a time toward the plainest view.
        |v| {
            let mut out = Vec::new();
            if v.shape != 0 {
                out.push(ViewSpec {
                    shape: 0,
                    ..v.clone()
                });
            }
            if v.select_threshold.is_some() {
                out.push(ViewSpec {
                    select_threshold: None,
                    ..v.clone()
                });
            }
            if v.rel_op != 0 {
                out.push(ViewSpec {
                    rel_op: 0,
                    ..v.clone()
                });
            }
            if v.summarize_group {
                out.push(ViewSpec {
                    summarize_group: false,
                    ..v.clone()
                });
            }
            if v.agg != 0 {
                out.push(ViewSpec {
                    agg: 0,
                    ..v.clone()
                });
            }
            out
        },
    )
}

fn op_gen() -> impl Gen<Value = Op> {
    weighted(vec![
        (
            4,
            boxed(map(
                triple(
                    ints(0..6i64),
                    floats(0.0..10.0),
                    chronicle_testkit::prop::bools(),
                ),
                |(caller, minutes, batch2)| Op::Append {
                    caller,
                    minutes,
                    batch2,
                },
            )),
        ),
        (
            1,
            boxed(map(
                pair(ints(0..6i64), floats(0.0..1.0)),
                |(acct, rate)| Op::UpdateRate { acct, rate },
            )),
        ),
    ])
}

fn build_db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE GROUP g").unwrap();
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP g RETAIN ALL")
        .unwrap();
    db.execute("CREATE CHRONICLE texts (sn SEQ, caller INT, minutes FLOAT) IN GROUP g RETAIN ALL")
        .unwrap();
    db.execute("CREATE RELATION rates (acct INT, rate FLOAT, PRIMARY KEY (acct))")
        .unwrap();
    for a in 0..6i64 {
        db.execute(&format!("INSERT INTO rates VALUES ({a}, 0.5)"))
            .unwrap();
    }
    db
}

fn build_expr(db: &ChronicleDb, spec: &ViewSpec) -> ScaExpr {
    let calls = db.catalog().chronicle_id("calls").unwrap();
    let texts = db.catalog().chronicle_id("texts").unwrap();
    let rates = db.catalog().relation_id("rates").unwrap();
    let calls_e = CaExpr::chronicle(db.catalog().chronicle(calls));
    let texts_e = CaExpr::chronicle(db.catalog().chronicle(texts));
    let schema = calls_e.schema().clone();

    let selected = |e: CaExpr, thr: f64| {
        let p =
            Predicate::attr_cmp_const(&schema, "minutes", CmpOp::Gt, Value::Float(thr)).unwrap();
        e.select(p).unwrap()
    };

    let mut expr = match spec.shape {
        0 => calls_e.clone(),
        1 => calls_e.clone().union(texts_e.clone()).unwrap(),
        2 => calls_e
            .clone()
            .diff(selected(texts_e.clone(), 5.0))
            .unwrap(),
        // SN self-join of two selections: the paper's "two operands derive
        // distinct tuples with the same sequence number" situation.
        _ => selected(calls_e.clone(), 2.0)
            .join_seq(selected(calls_e.clone(), 6.0))
            .unwrap(),
    };
    if let Some(thr) = spec.select_threshold {
        let p = Predicate::attr_cmp_const(expr.schema(), "minutes", CmpOp::Le, Value::Float(thr))
            .unwrap();
        expr = expr.select(p).unwrap();
    }
    let rel_schema = db.catalog().relation(rates).current().schema().clone();
    let rel = RelationRef::new(rates, rel_schema, "rates");
    expr = match spec.rel_op {
        1 => expr.join_rel_key(rel, &["caller"]).unwrap(),
        2 => expr.product(rel).unwrap(),
        _ => expr,
    };
    // Aggregate over the relation's `rate` column when the view joins a
    // relation, so the implicit temporal join's *values* (not just its
    // multiplicities) flow into the aggregates.
    let agg_attr = if spec.rel_op != 0 {
        expr.schema().position("rate").unwrap()
    } else {
        expr.schema().position("minutes").unwrap()
    };
    let agg = match spec.agg {
        0 => AggFunc::Sum(agg_attr),
        1 => AggFunc::CountStar,
        2 => AggFunc::Min(agg_attr),
        3 => AggFunc::Max(agg_attr),
        _ => AggFunc::Avg(agg_attr),
    };
    if spec.summarize_group {
        ScaExpr::group_agg(expr, &["caller"], vec![AggSpec::new(agg, "a")]).unwrap()
    } else {
        // Projection summarization over the caller column.
        ScaExpr::project(expr, &["caller"]).unwrap()
    }
}

/// Apply one generated op to the database; returns the updated chronon
/// clock.
fn apply_op(db: &mut ChronicleDb, i: usize, op: &Op, mut t: i64) -> i64 {
    match op {
        Op::Append {
            caller,
            minutes,
            batch2,
        } => {
            t += 1;
            // Round minutes to multiples of 0.5, which are exactly
            // representable: float sums are then order-independent
            // and the oracle comparison is exact.
            let m = (minutes * 2.0).round() / 2.0;
            let rows: Vec<Vec<Value>> = if *batch2 {
                vec![
                    vec![Value::Int(*caller), Value::Float(m)],
                    vec![Value::Int((*caller + 1) % 6), Value::Float(m + 0.5)],
                ]
            } else {
                vec![vec![Value::Int(*caller), Value::Float(m)]]
            };
            // Alternate target chronicle so joins/unions see data on
            // both sides.
            let target = if i % 3 == 2 { "texts" } else { "calls" };
            db.append(target, Chronon(t), &rows).unwrap();
        }
        Op::UpdateRate { acct, rate } => {
            let r = (rate * 2.0).round() / 2.0;
            db.execute(&format!(
                "UPDATE rates SET rate = {r:.1} WHERE acct = {acct}"
            ))
            .unwrap();
        }
    }
    t
}

prop_test! {
    fn incremental_equals_oracle(cases = 64, seed = 0x0AC1E;
        spec in view_gen(),
        ops in vec_of(op_gen(), 1..40),
        check_at in ints(0..40usize),
    ) {
        let mut db = build_db();
        let expr = build_expr(&db, &spec);
        db.create_view("v", expr).unwrap();

        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            t = apply_op(&mut db, i, op, t);
            if i == check_at {
                let inc = canon(db.query_view("v").unwrap());
                let oracle = canon(
                    eval_sca(db.catalog(), db.maintainer().view_by_name("v").unwrap().expr())
                        .unwrap(),
                );
                prop_assert_eq!(inc, oracle, "divergence mid-history at op {}", i);
            }
        }
        let inc = canon(db.query_view("v").unwrap());
        let oracle = canon(
            eval_sca(db.catalog(), db.maintainer().view_by_name("v").unwrap().expr()).unwrap(),
        );
        prop_assert_eq!(inc, oracle, "divergence at end of history");
    }
}

prop_test! {
    /// Monotonicity (Theorem 4.1): before summarization, a chronicle view
    /// only ever grows, and only with the new sequence number.
    fn ca_views_are_monotonic(cases = 64, seed = 0x501D;
        ops in vec_of(op_gen(), 1..25),
    ) {
        let mut db = build_db();
        let calls = db.catalog().chronicle_id("calls").unwrap();
        let texts = db.catalog().chronicle_id("texts").unwrap();
        let expr = CaExpr::chronicle(db.catalog().chronicle(calls))
            .union(CaExpr::chronicle(db.catalog().chronicle(texts)))
            .unwrap();
        let mut prev: Vec<Tuple> = Vec::new();
        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            if let Op::Append { caller, minutes, .. } = op {
                t += 1;
                let m = (minutes * 2.0).round() / 2.0;
                let target = if i % 2 == 0 { "calls" } else { "texts" };
                db.append(target, Chronon(t), &[vec![Value::Int(*caller), Value::Float(m)]])
                    .unwrap();
                let now = canon(chronicle::algebra::eval::eval_ca(db.catalog(), &expr).unwrap());
                // Every previous tuple is still present.
                for old in &prev {
                    prop_assert!(now.contains(old), "tuple retracted: {}", old);
                }
                // New tuples carry the newest sequence number.
                let hw = db.catalog().group(db.catalog().group_id("g").unwrap()).high_water();
                for tup in &now {
                    if !prev.contains(tup) {
                        prop_assert_eq!(expr.seq_of(tup).unwrap(), hw);
                    }
                }
                prev = now;
            }
        }
    }
}

prop_test! {
    /// A deliberately broken "oracle" — it claims every view stays empty —
    /// which the harness must refute and then shrink: this proves failure
    /// detection and shrinking work end-to-end against the real database,
    /// not just against toy integer properties.
    #[should_panic(expected = "property failed")]
    fn broken_oracle_is_refuted_and_shrunk(cases = 64, seed = 0xBAD0;
        ops in vec_of(op_gen(), 1..40),
    ) {
        let mut db = build_db();
        let calls = db.catalog().chronicle_id("calls").unwrap();
        let expr = ScaExpr::project(
            CaExpr::chronicle(db.catalog().chronicle(calls)),
            &["caller"],
        )
        .unwrap();
        db.create_view("v", expr).unwrap();
        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            t = apply_op(&mut db, i, op, t);
        }
        // False claim: appends never reach the view.
        prop_assert!(
            db.query_view("v").unwrap().is_empty(),
            "view has {} rows",
            db.query_view("v").unwrap().len()
        );
    }
}
