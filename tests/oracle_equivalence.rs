//! Property-based oracle equivalence: for randomly generated SCA views and
//! randomly generated append/update histories, incremental maintenance
//! produces exactly the same relation as from-scratch evaluation with full
//! temporal-join semantics.
//!
//! This is the strongest correctness statement in the test suite: it
//! covers σ/Π/∪/−/⋈SN/GROUPBY-SN, both summarization forms, key joins and
//! products against a relation that is being proactively updated mid-run.

use chronicle_testkit::prop::{
    boxed, floats, from_fn, ints, map, pair, triple, vec_of, weighted, Gen,
};
use chronicle_testkit::{prop_assert, prop_assert_eq, prop_test, Rng, TempDir, Zipf};

use chronicle::algebra::eval::{canon, eval_sca, seq_to_int};
use chronicle::algebra::{
    Accumulator, AggFunc, AggSpec, CaExpr, CmpOp, Predicate, RelationRef, ScaExpr,
};
use chronicle::db::{ChronicleDb, ShardedDb};
use chronicle::prelude::*;
use chronicle::views::{BatchMode, RelationView, SlidingWindow};

/// A compact description of a generated view, turned into a real `ScaExpr`
/// against the live catalog.
#[derive(Debug, Clone)]
struct ViewSpec {
    /// 0 = calls only, 1 = union, 2 = diff(all, selected), 3 = joinSN.
    shape: u8,
    select_threshold: Option<f64>,
    rel_op: u8, // 0 = none, 1 = key join, 2 = product
    summarize_group: bool,
    agg: u8, // 0 sum, 1 count, 2 min, 3 max, 4 avg
}

#[derive(Debug, Clone)]
enum Op {
    /// Append (caller, minutes) to calls (plus mirrored texts tuple for
    /// multi-chronicle shapes).
    Append {
        caller: i64,
        minutes: f64,
        batch2: bool,
    },
    /// Proactively update the rate of `acct`.
    UpdateRate { acct: i64, rate: f64 },
}

fn view_gen() -> impl Gen<Value = ViewSpec> {
    from_fn(
        |rng| ViewSpec {
            shape: rng.gen_range(0..4u8),
            select_threshold: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0.0..8.0f64))
            } else {
                None
            },
            rel_op: rng.gen_range(0..3u8),
            summarize_group: rng.gen_bool(0.5),
            agg: rng.gen_range(0..5u8),
        },
        // Shrink one knob at a time toward the plainest view.
        |v| {
            let mut out = Vec::new();
            if v.shape != 0 {
                out.push(ViewSpec {
                    shape: 0,
                    ..v.clone()
                });
            }
            if v.select_threshold.is_some() {
                out.push(ViewSpec {
                    select_threshold: None,
                    ..v.clone()
                });
            }
            if v.rel_op != 0 {
                out.push(ViewSpec {
                    rel_op: 0,
                    ..v.clone()
                });
            }
            if v.summarize_group {
                out.push(ViewSpec {
                    summarize_group: false,
                    ..v.clone()
                });
            }
            if v.agg != 0 {
                out.push(ViewSpec {
                    agg: 0,
                    ..v.clone()
                });
            }
            out
        },
    )
}

fn op_gen() -> impl Gen<Value = Op> {
    weighted(vec![
        (
            4,
            boxed(map(
                triple(
                    ints(0..6i64),
                    floats(0.0..10.0),
                    chronicle_testkit::prop::bools(),
                ),
                |(caller, minutes, batch2)| Op::Append {
                    caller,
                    minutes,
                    batch2,
                },
            )),
        ),
        (
            1,
            boxed(map(
                pair(ints(0..6i64), floats(0.0..1.0)),
                |(acct, rate)| Op::UpdateRate { acct, rate },
            )),
        ),
    ])
}

fn build_db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE GROUP g").unwrap();
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP g RETAIN ALL")
        .unwrap();
    db.execute("CREATE CHRONICLE texts (sn SEQ, caller INT, minutes FLOAT) IN GROUP g RETAIN ALL")
        .unwrap();
    db.execute("CREATE RELATION rates (acct INT, rate FLOAT, PRIMARY KEY (acct))")
        .unwrap();
    for a in 0..6i64 {
        db.execute(&format!("INSERT INTO rates VALUES ({a}, 0.5)"))
            .unwrap();
    }
    db
}

fn build_expr(db: &ChronicleDb, spec: &ViewSpec) -> ScaExpr {
    let calls = db.catalog().chronicle_id("calls").unwrap();
    let texts = db.catalog().chronicle_id("texts").unwrap();
    let rates = db.catalog().relation_id("rates").unwrap();
    let calls_e = CaExpr::chronicle(db.catalog().chronicle(calls));
    let texts_e = CaExpr::chronicle(db.catalog().chronicle(texts));
    let schema = calls_e.schema().clone();

    let selected = |e: CaExpr, thr: f64| {
        let p =
            Predicate::attr_cmp_const(&schema, "minutes", CmpOp::Gt, Value::Float(thr)).unwrap();
        e.select(p).unwrap()
    };

    let mut expr = match spec.shape {
        0 => calls_e.clone(),
        1 => calls_e.clone().union(texts_e.clone()).unwrap(),
        2 => calls_e
            .clone()
            .diff(selected(texts_e.clone(), 5.0))
            .unwrap(),
        // SN self-join of two selections: the paper's "two operands derive
        // distinct tuples with the same sequence number" situation.
        _ => selected(calls_e.clone(), 2.0)
            .join_seq(selected(calls_e.clone(), 6.0))
            .unwrap(),
    };
    if let Some(thr) = spec.select_threshold {
        let p = Predicate::attr_cmp_const(expr.schema(), "minutes", CmpOp::Le, Value::Float(thr))
            .unwrap();
        expr = expr.select(p).unwrap();
    }
    let rel_schema = db.catalog().relation(rates).current().schema().clone();
    let rel = RelationRef::new(rates, rel_schema, "rates");
    expr = match spec.rel_op {
        1 => expr.join_rel_key(rel, &["caller"]).unwrap(),
        2 => expr.product(rel).unwrap(),
        _ => expr,
    };
    // Aggregate over the relation's `rate` column when the view joins a
    // relation, so the implicit temporal join's *values* (not just its
    // multiplicities) flow into the aggregates.
    let agg_attr = if spec.rel_op != 0 {
        expr.schema().position("rate").unwrap()
    } else {
        expr.schema().position("minutes").unwrap()
    };
    let agg = match spec.agg {
        0 => AggFunc::Sum(agg_attr),
        1 => AggFunc::CountStar,
        2 => AggFunc::Min(agg_attr),
        3 => AggFunc::Max(agg_attr),
        _ => AggFunc::Avg(agg_attr),
    };
    if spec.summarize_group {
        ScaExpr::group_agg(expr, &["caller"], vec![AggSpec::new(agg, "a")]).unwrap()
    } else {
        // Projection summarization over the caller column.
        ScaExpr::project(expr, &["caller"]).unwrap()
    }
}

/// Apply one generated op to the database; returns the updated chronon
/// clock.
fn apply_op(db: &mut ChronicleDb, i: usize, op: &Op, mut t: i64) -> i64 {
    match op {
        Op::Append {
            caller,
            minutes,
            batch2,
        } => {
            t += 1;
            // Round minutes to multiples of 0.5, which are exactly
            // representable: float sums are then order-independent
            // and the oracle comparison is exact.
            let m = (minutes * 2.0).round() / 2.0;
            let rows: Vec<Vec<Value>> = if *batch2 {
                vec![
                    vec![Value::Int(*caller), Value::Float(m)],
                    vec![Value::Int((*caller + 1) % 6), Value::Float(m + 0.5)],
                ]
            } else {
                vec![vec![Value::Int(*caller), Value::Float(m)]]
            };
            // Alternate target chronicle so joins/unions see data on
            // both sides.
            let target = if i % 3 == 2 { "texts" } else { "calls" };
            db.append(target, Chronon(t), &rows).unwrap();
        }
        Op::UpdateRate { acct, rate } => {
            let r = (rate * 2.0).round() / 2.0;
            db.execute(&format!(
                "UPDATE rates SET rate = {r:.1} WHERE acct = {acct}"
            ))
            .unwrap();
        }
    }
    t
}

prop_test! {
    fn incremental_equals_oracle(cases = 64, seed = 0x0AC1E;
        spec in view_gen(),
        ops in vec_of(op_gen(), 1..40),
        check_at in ints(0..40usize),
    ) {
        let mut db = build_db();
        let expr = build_expr(&db, &spec);
        db.create_view("v", expr).unwrap();

        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            t = apply_op(&mut db, i, op, t);
            if i == check_at {
                let inc = canon(db.query_view("v").unwrap());
                let oracle = canon(
                    eval_sca(db.catalog(), db.maintainer().view_by_name("v").unwrap().expr())
                        .unwrap(),
                );
                prop_assert_eq!(inc, oracle, "divergence mid-history at op {}", i);
            }
        }
        let inc = canon(db.query_view("v").unwrap());
        let oracle = canon(
            eval_sca(db.catalog(), db.maintainer().view_by_name("v").unwrap().expr()).unwrap(),
        );
        prop_assert_eq!(inc, oracle, "divergence at end of history");
    }
}

prop_test! {
    /// Monotonicity (Theorem 4.1): before summarization, a chronicle view
    /// only ever grows, and only with the new sequence number.
    fn ca_views_are_monotonic(cases = 64, seed = 0x501D;
        ops in vec_of(op_gen(), 1..25),
    ) {
        let mut db = build_db();
        let calls = db.catalog().chronicle_id("calls").unwrap();
        let texts = db.catalog().chronicle_id("texts").unwrap();
        let expr = CaExpr::chronicle(db.catalog().chronicle(calls))
            .union(CaExpr::chronicle(db.catalog().chronicle(texts)))
            .unwrap();
        let mut prev: Vec<Tuple> = Vec::new();
        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            if let Op::Append { caller, minutes, .. } = op {
                t += 1;
                let m = (minutes * 2.0).round() / 2.0;
                let target = if i % 2 == 0 { "calls" } else { "texts" };
                db.append(target, Chronon(t), &[vec![Value::Int(*caller), Value::Float(m)]])
                    .unwrap();
                let now = canon(chronicle::algebra::eval::eval_ca(db.catalog(), &expr).unwrap());
                // Every previous tuple is still present.
                for old in &prev {
                    prop_assert!(now.contains(old), "tuple retracted: {}", old);
                }
                // New tuples carry the newest sequence number.
                let hw = db.catalog().group(db.catalog().group_id("g").unwrap()).high_water();
                for tup in &now {
                    if !prev.contains(tup) {
                        prop_assert_eq!(expr.seq_of(tup).unwrap(), hw);
                    }
                }
                prev = now;
            }
        }
    }
}

// ===================================================================
// Z-set differential suite: signed deltas (inserts, updates, deletes)
// through relation-backed views, interleaved with chronicle appends and
// sliding-window advances, checked against full recomputation after
// every single operation.
// ===================================================================

/// One operation of a mixed DML schedule.
#[derive(Debug, Clone)]
enum Dml {
    /// Insert-or-update `acct` (an update arrives at the views as a
    /// `−old +new` Z-set pair).
    Upsert { acct: i64, region: i64, amount: f64 },
    /// Delete `acct` if present (a `−1` delta); a no-op otherwise.
    Delete { acct: i64 },
    /// Append one trade `advance` ticks after the previous one — crossing
    /// a bucket boundary advances the sliding window, retiring buckets as
    /// negative-weight deltas.
    Trade {
        acct: i64,
        amount: f64,
        advance: i64,
    },
}

fn dml_gen() -> impl Gen<Value = Dml> {
    weighted(vec![
        (
            3,
            boxed(map(
                triple(ints(0..8i64), ints(0..4i64), floats(0.0..10.0)),
                |(acct, region, amount)| Dml::Upsert {
                    acct,
                    region,
                    amount,
                },
            )),
        ),
        (2, boxed(map(ints(0..8i64), |acct| Dml::Delete { acct }))),
        (
            4,
            boxed(map(
                triple(ints(0..4i64), floats(0.0..10.0), ints(0..7i64)),
                |(acct, amount, advance)| Dml::Trade {
                    acct,
                    amount,
                    advance,
                },
            )),
        ),
    ])
}

/// DDL for the differential suite: one chronicle with a chronicle view,
/// one keyed relation with three relation-backed views — a group
/// aggregate, a pure projection (set semantics: the consolidation
/// teeth), and a conjunctive-WHERE aggregate (a stacked-σ `RelQuery`).
fn zset_ddl() -> Vec<&'static str> {
    vec![
        "CREATE CHRONICLE trades (sn SEQ, acct INT, amount FLOAT) RETAIN ALL",
        "CREATE RELATION accts (acct INT, region INT, amount FLOAT, PRIMARY KEY (acct))",
        "CREATE VIEW by_region AS SELECT region, SUM(amount) AS s, COUNT(*) AS n \
         FROM accts GROUP BY region",
        "CREATE VIEW regions AS SELECT region FROM accts",
        "CREATE VIEW rich AS SELECT region, AVG(amount) AS m FROM accts \
         WHERE amount > 4.0 AND region < 3 GROUP BY region",
        "CREATE VIEW volume AS SELECT acct, SUM(amount) AS v FROM trades GROUP BY acct",
    ]
}

fn build_zset_db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    for stmt in zset_ddl() {
        db.execute(stmt).unwrap();
    }
    db
}

/// Round to a multiple of 0.5: exactly representable, so float sums and
/// retractions are exact and the oracle comparison is equality.
fn half(x: f64) -> f64 {
    (x * 2.0).round() / 2.0
}

/// Render one op as the SQL statement(s) to execute, consulting
/// `reference` for key existence (so the same statements replay
/// identically on a second engine). Returns the SQL and the new clock.
fn dml_sql(reference: &ChronicleDb, op: &Dml, now: i64) -> (String, i64) {
    match op {
        Dml::Upsert {
            acct,
            region,
            amount,
        } => {
            let a = half(*amount);
            let rid = reference.catalog().relation_id("accts").unwrap();
            let exists = reference
                .catalog()
                .relation(rid)
                .current()
                .get_by_key(&[Value::Int(*acct)])
                .is_some();
            let sql = if exists {
                format!("UPDATE accts SET region = {region}, amount = {a:.1} WHERE acct = {acct}")
            } else {
                format!("INSERT INTO accts VALUES ({acct}, {region}, {a:.1})")
            };
            (sql, now)
        }
        Dml::Delete { acct } => (format!("DELETE FROM accts WHERE acct = {acct}"), now),
        Dml::Trade {
            acct,
            amount,
            advance,
        } => {
            let a = half(*amount);
            let t = now + advance;
            (
                format!("APPEND INTO trades AT {t} VALUES ({acct}, {a:.1})"),
                t,
            )
        }
    }
}

/// Every relation-backed view must equal a from-scratch `RelQuery::eval`
/// over the live relation, and the chronicle view its SCA oracle.
macro_rules! assert_views_match_oracle {
    ($db:expr) => {{
        let db = &$db;
        let rid = db.catalog().relation_id("accts").unwrap();
        for name in ["by_region", "regions", "rich"] {
            let v = db.maintainer().rel_view_by_name(name).unwrap();
            let inc = canon(v.rows());
            let oracle = canon(
                v.query()
                    .eval(db.catalog().relation(rid).current())
                    .unwrap(),
            );
            prop_assert_eq!(inc, oracle, "relation view `{}` diverged", name);
        }
        let inc = canon(db.query_view("volume").unwrap());
        let oracle = canon(
            eval_sca(
                db.catalog(),
                db.maintainer().view_by_name("volume").unwrap().expr(),
            )
            .unwrap(),
        );
        prop_assert_eq!(inc, oracle, "chronicle view `volume` diverged");
    }};
}

/// Sliding-window parameters shared by the incremental window and its
/// naive oracle: 4 buckets × 5 ticks, keyed on the account.
const WIN_BUCKETS: i64 = 4;
const WIN_TICKS: i64 = 5;

fn win_aggs() -> Vec<AggFunc> {
    vec![
        AggFunc::Sum(1),
        AggFunc::CountStar,
        AggFunc::Avg(1),
        AggFunc::Max(1),
    ]
}

/// Naive window recomputation: fold every logged in-window tuple for
/// `key` through fresh accumulators — no buckets, no running totals, no
/// unmerge. This is the recomputation the retirement deltas must match.
fn naive_window(log: &[(i64, Tuple)], key: i64, now: i64) -> Vec<Value> {
    let cur = now.div_euclid(WIN_TICKS);
    let oldest = cur - WIN_BUCKETS + 1;
    let mut accs: Vec<Accumulator> = win_aggs().iter().map(|&f| Accumulator::new(f)).collect();
    for (at, t) in log {
        let b = at.div_euclid(WIN_TICKS);
        if t.get(0) != &Value::Int(key) || b < oldest || b > cur {
            continue;
        }
        for a in accs.iter_mut() {
            a.update(t).unwrap();
        }
    }
    accs.iter().map(|a| seq_to_int(a.finalize())).collect()
}

prop_test! {
    /// The headline differential property: replay a seeded schedule of
    /// relation inserts/updates/deletes, chronicle appends, and window
    /// advances; after **every** operation the incremental state (signed
    /// Z-set deltas through the views, negative-delta bucket retirement
    /// in the window) must equal full recomputation.
    fn zset_deltas_equal_recomputation(cases = 256, seed = 0x25E7D1FF;
        ops in vec_of(dml_gen(), 1..48),
    ) {
        let mut db = build_zset_db();
        let mut win = SlidingWindow::new(
            Chronon(0),
            WIN_BUCKETS as usize,
            WIN_TICKS,
            vec![0],
            win_aggs(),
        )
        .unwrap();
        let mut log: Vec<(i64, Tuple)> = Vec::new();
        let mut now = 0i64;
        for op in &ops {
            let (sql, t) = dml_sql(&db, op, now);
            now = t;
            db.execute(&sql).unwrap();
            if let Dml::Trade { acct, amount, .. } = op {
                let row = Tuple::new(vec![Value::Int(*acct), Value::Float(half(*amount))]);
                win.insert(Chronon(now), &row).unwrap();
                log.push((now, row));
                for key in 0..4i64 {
                    prop_assert_eq!(
                        win.query(&[Value::Int(key)], Chronon(now)).unwrap(),
                        naive_window(&log, key, now),
                        "window diverged for key {} at chronon {}",
                        key,
                        now
                    );
                }
            }
            assert_views_match_oracle!(db);
        }
    }
}

/// Shard count for the sharded differential test; `SHARDS=n` overrides
/// (verify.sh runs the suite at `SHARDS=4`).
fn shard_count() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

prop_test! {
    /// The same mixed DML schedules against a hash-sharded engine:
    /// relation views pin to one shard and relation DML broadcasts, so
    /// sharded view snapshots must be byte-identical to the serial
    /// single-engine reference.
    fn sharded_zset_dml_matches_single_engine(cases = 160, seed = 0x54A2DED;
        ops in vec_of(dml_gen(), 1..40),
    ) {
        let mut reference = build_zset_db();
        let mut sharded = ShardedDb::new(shard_count()).unwrap();
        for stmt in zset_ddl() {
            sharded.execute(stmt).unwrap();
        }
        let mut now = 0i64;
        for op in &ops {
            let (sql, t) = dml_sql(&reference, op, now);
            now = t;
            reference.execute(&sql).unwrap();
            sharded.execute(&sql).unwrap();
        }
        let mut expect = reference.snapshot_views();
        expect.sort();
        prop_assert_eq!(sharded.snapshot_views(), expect);
    }
}

// =================================================================
// Skewed-mix differential family: Zipf(θ)-distributed schedules over
// many chronicle groups, executed against a sharded engine whose
// placement is churned mid-history by explicit group moves and online
// heavy-light rebalances, compared per-op against the serial
// single-engine oracle. Placement is execution-only (Theorem 4.1 makes
// the group a self-contained maintenance unit), so every view snapshot
// must stay byte-identical to the reference no matter where groups
// land. A failing case prints its reproducing seed via the prop_test
// harness.
// =================================================================

/// Groups in the skewed family; rank 0 is the Zipf head ("celebrity"
/// group) and receives most appends, so rebalances have real rate skew
/// to classify against.
const SKEW_GROUPS: usize = 6;

/// The classic web/telecom skew exponent (matches experiment E18).
const SKEW_THETA: f64 = 1.1;

#[derive(Debug, Clone)]
enum SkewOp {
    /// Append to the chronicle of a Zipf-ranked group.
    Append { group: usize, k: i64, v: f64 },
    /// Insert-or-update a Zipf-ranked account in the broadcast relation.
    Upsert { acct: i64, amount: f64 },
    /// Delete a Zipf-ranked account if present.
    Delete { acct: i64 },
    /// Explicitly relocate one group (raw target, reduced mod shards).
    Move { group: usize, to: usize },
    /// Run the online heavy-light classifier over the live append rates.
    Rebalance,
}

fn skew_op_gen() -> impl Gen<Value = SkewOp> {
    let group_zipf = Zipf::new(SKEW_GROUPS, SKEW_THETA);
    let acct_zipf = Zipf::new(8, SKEW_THETA);
    let no_shrink = |_: &SkewOp| Vec::new();
    let g1 = group_zipf.clone();
    let a1 = acct_zipf.clone();
    let a2 = acct_zipf;
    weighted(vec![
        (
            8,
            boxed(from_fn(
                move |rng| SkewOp::Append {
                    group: g1.sample(rng),
                    k: rng.gen_range(0..6u64) as i64,
                    v: half(rng.gen_range(0..40u64) as f64 / 4.0),
                },
                no_shrink,
            )),
        ),
        (
            2,
            boxed(from_fn(
                move |rng| SkewOp::Upsert {
                    acct: a1.sample(rng) as i64,
                    amount: half(rng.gen_range(0..40u64) as f64 / 4.0),
                },
                no_shrink,
            )),
        ),
        (
            1,
            boxed(from_fn(
                move |rng| SkewOp::Delete {
                    acct: a2.sample(rng) as i64,
                },
                no_shrink,
            )),
        ),
        (
            2,
            boxed(from_fn(
                move |rng| SkewOp::Move {
                    group: rng.gen_range(0..SKEW_GROUPS as u64) as usize,
                    to: rng.gen_range(0..8u64) as usize,
                },
                no_shrink,
            )),
        ),
        (1, boxed(from_fn(|_| SkewOp::Rebalance, no_shrink))),
    ])
}

/// DDL for the skewed family: one chronicle + aggregate view per group,
/// a broadcast keyed relation with an aggregate view, and a join view
/// over the head group's chronicle so relocation must carry join state.
fn skew_ddl() -> Vec<String> {
    let mut ddl = Vec::new();
    for g in 0..SKEW_GROUPS {
        ddl.push(format!("CREATE GROUP zg{g}"));
        ddl.push(format!(
            "CREATE CHRONICLE zc{g} (sn SEQ, k INT, v FLOAT) IN GROUP zg{g} RETAIN ALL"
        ));
        ddl.push(format!(
            "CREATE VIEW zv{g} AS SELECT k, SUM(v) AS s FROM zc{g} GROUP BY k"
        ));
    }
    ddl.push("CREATE RELATION zr (acct INT, amount FLOAT, PRIMARY KEY (acct))".into());
    ddl.push("CREATE VIEW zr_total AS SELECT acct, SUM(amount) AS s FROM zr GROUP BY acct".into());
    ddl.push(
        "CREATE VIEW zjoin AS SELECT k, COUNT(*) AS n FROM zc0 JOIN zr ON k = acct GROUP BY k"
            .into(),
    );
    ddl
}

prop_test! {
    /// Per-op equivalence under placement churn: after **every** op —
    /// including each move and each rebalance — the sharded engine's
    /// complete view state must be byte-identical to the single-engine
    /// oracle's. 400 seeded cases; `SHARDS=n` overrides the topology.
    fn skewed_mix_heavy_light_matches_single_engine(cases = 400, seed = 0x5EED_21BF;
        ops in vec_of(skew_op_gen(), 1..24),
    ) {
        let shards = shard_count();
        let mut reference = ChronicleDb::new();
        let mut sharded = ShardedDb::new(shards).unwrap();
        for stmt in skew_ddl() {
            reference.execute(&stmt).unwrap();
            sharded.execute(&stmt).unwrap();
        }
        let mut now = 0i64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                SkewOp::Append { group, k, v } => {
                    now += 1;
                    let sql = format!("APPEND INTO zc{group} AT {now} VALUES ({k}, {v:.2})");
                    reference.execute(&sql).unwrap();
                    sharded.execute(&sql).unwrap();
                }
                SkewOp::Upsert { acct, amount } => {
                    let rid = reference.catalog().relation_id("zr").unwrap();
                    let exists = reference
                        .catalog()
                        .relation(rid)
                        .current()
                        .get_by_key(&[Value::Int(*acct)])
                        .is_some();
                    let sql = if exists {
                        format!("UPDATE zr SET amount = {amount:.2} WHERE acct = {acct}")
                    } else {
                        format!("INSERT INTO zr VALUES ({acct}, {amount:.2})")
                    };
                    reference.execute(&sql).unwrap();
                    sharded.execute(&sql).unwrap();
                }
                SkewOp::Delete { acct } => {
                    let sql = format!("DELETE FROM zr WHERE acct = {acct}");
                    reference.execute(&sql).unwrap();
                    sharded.execute(&sql).unwrap();
                }
                // Placement ops touch only the sharded engine: they must
                // be invisible to logical state by construction.
                SkewOp::Move { group, to } => {
                    sharded
                        .move_group(&format!("zg{group}"), to % shards)
                        .unwrap();
                }
                SkewOp::Rebalance => {
                    sharded.rebalance().unwrap();
                }
            }
            let mut expect = reference.snapshot_views();
            expect.sort();
            prop_assert_eq!(
                sharded.snapshot_views(),
                expect,
                "sharded view state diverged from the oracle at op {} ({:?})",
                i,
                op
            );
        }
    }
}

// =================================================================
// Deterministic Z-set regression pins (PR-3 semantics + consolidation
// teeth for the `CHRONICLE_MUTATE=skip_consolidation` mutation check).
// =================================================================

/// A `+1/−1` pair on the same tuple must leave **no** residue in view
/// state: not a zero-multiplicity projected row, not a zero-live group,
/// and not a byte of difference in view snapshots. Under
/// `CHRONICLE_MUTATE=skip_consolidation` the zero-weight entries survive
/// and this test fails — verify.sh runs exactly that mutation and
/// requires the failure.
#[test]
fn plus_minus_pair_leaves_no_residue() {
    let mut db = build_zset_db();
    db.execute("INSERT INTO accts VALUES (1, 2, 6.0)").unwrap();
    db.execute("DELETE FROM accts WHERE acct = 1").unwrap();

    for name in ["by_region", "regions", "rich"] {
        let v = db.maintainer().rel_view_by_name(name).unwrap();
        assert!(
            v.rows().is_empty(),
            "view `{name}` kept residue after +1/−1: {:?}",
            v.rows()
        );
        assert!(v.is_empty(), "view `{name}` state not empty after +1/−1");
    }
    assert_eq!(
        db.maintainer()
            .rel_view_by_name("regions")
            .unwrap()
            .multiplicity(&Tuple::new(vec![Value::Int(2)])),
        None,
        "zero-weight multiplicity entry must be consolidated away"
    );
    // The snapshot bytes carry no residue entries either: restoring the
    // checkpoint payload of each view yields an empty state.
    for name in ["by_region", "regions", "rich"] {
        let v = db.maintainer().rel_view_by_name(name).unwrap();
        let restored =
            RelationView::restore(v.id(), name, v.query().clone(), &v.snapshot()).unwrap();
        assert!(
            restored.is_empty(),
            "snapshot of `{name}` restored to a non-empty state after +1/−1"
        );
    }
}

/// The durable variant: after an insert/delete pair, a checkpoint and a
/// restart must come back with empty relation views — checkpoints carry
/// no zero-weight residue either.
#[test]
fn plus_minus_pair_leaves_no_residue_in_checkpoints() {
    let tmp = TempDir::new("zset-residue");
    {
        let mut db = ChronicleDb::open(tmp.path()).unwrap();
        for stmt in zset_ddl() {
            db.execute(stmt).unwrap();
        }
        db.execute("INSERT INTO accts VALUES (1, 2, 6.0)").unwrap();
        db.execute("UPDATE accts SET amount = 7.5 WHERE acct = 1")
            .unwrap();
        db.execute("DELETE FROM accts WHERE acct = 1").unwrap();
        db.checkpoint().unwrap();
    }
    let db = ChronicleDb::open(tmp.path()).unwrap();
    for name in ["by_region", "regions", "rich"] {
        assert!(
            db.query_view(name).unwrap().is_empty(),
            "recovered view `{name}` kept +1/−1 residue through a checkpoint"
        );
        assert!(db.maintainer().rel_view_by_name(name).unwrap().is_empty());
    }
}

/// PR-3 pin: appends strictly before the window anchor land in negative
/// bucket indices and a later-then-earlier insert is rejected with the
/// signed `NonMonotonicBucket` error — not wrapped to 2^64−k.
#[test]
fn before_anchor_appends_keep_signed_bucket_indices() {
    let mut win =
        SlidingWindow::new(Chronon(100), 3, 10, vec![0], vec![AggFunc::CountStar]).unwrap();
    // Entirely before the anchor: bucket −3. Legal on its own.
    win.insert(Chronon(75), &Tuple::new(vec![Value::Int(1), Value::Int(1)]))
        .unwrap();
    // Forward to bucket 2…
    win.insert(
        Chronon(120),
        &Tuple::new(vec![Value::Int(1), Value::Int(1)]),
    )
    .unwrap();
    // …then back before the anchor: must fail with both indices signed.
    let err = win
        .insert(Chronon(95), &Tuple::new(vec![Value::Int(1), Value::Int(1)]))
        .unwrap_err();
    match err {
        ChronicleError::NonMonotonicBucket { newest, attempted } => {
            assert_eq!(newest, 2);
            assert_eq!(attempted, -1, "pre-anchor bucket must stay signed");
        }
        other => panic!("expected NonMonotonicBucket, got {other}"),
    }
}

// =================================================================
// Batch-vs-tuple differential oracle: the vectorized columnar kernels
// must be observationally identical to the per-tuple interpreter —
// byte-identical view snapshots, identical restored state after a
// checkpointed restart, and bit-identical work-counter shapes.
// =================================================================

prop_test! {
    /// Replay the same generated view and append/update schedule on two
    /// engines — one forced onto the scalar interpreter, one vectorizing
    /// every batch it can — and demand byte-identical view snapshots
    /// after **every** operation plus identical critical-path work
    /// counters at the end.
    fn vectorized_batches_match_scalar_interpreter(cases = 96, seed = 0xC01BA7C4;
        spec in view_gen(),
        ops in vec_of(op_gen(), 1..32),
    ) {
        let mut vec_db = build_db();
        let mut sca_db = build_db();
        sca_db.set_batch_mode(BatchMode::Scalar);
        let vec_expr = build_expr(&vec_db, &spec);
        let sca_expr = build_expr(&sca_db, &spec);
        vec_db.create_view("v", vec_expr).unwrap();
        sca_db.create_view("v", sca_expr).unwrap();
        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            let after = apply_op(&mut vec_db, i, op, t);
            apply_op(&mut sca_db, i, op, t);
            t = after;
            prop_assert_eq!(
                vec_db.snapshot_views(),
                sca_db.snapshot_views(),
                "vectorized and scalar view state diverged at op {}",
                i
            );
        }
        prop_assert_eq!(
            vec_db.stats().work,
            sca_db.stats().work,
            "work-counter shape diverged between the kernel and the interpreter"
        );
    }
}

prop_test! {
    /// The sharded variant: the same mixed DML schedule on two sharded
    /// engines, scalar vs vectorized (verify.sh reruns this at SHARDS=4).
    fn sharded_vectorized_matches_scalar_shards(cases = 96, seed = 0x5CA1AB1E;
        ops in vec_of(dml_gen(), 1..32),
    ) {
        let mut reference = build_zset_db();
        let mut vec_db = ShardedDb::new(shard_count()).unwrap();
        let mut sca_db = ShardedDb::new(shard_count()).unwrap();
        sca_db.set_batch_mode(BatchMode::Scalar);
        for stmt in zset_ddl() {
            vec_db.execute(stmt).unwrap();
            sca_db.execute(stmt).unwrap();
        }
        let mut now = 0i64;
        for op in &ops {
            let (sql, t) = dml_sql(&reference, op, now);
            now = t;
            reference.execute(&sql).unwrap();
            vec_db.execute(&sql).unwrap();
            sca_db.execute(&sql).unwrap();
        }
        prop_assert_eq!(vec_db.snapshot_views(), sca_db.snapshot_views());
        prop_assert_eq!(vec_db.stats().work, sca_db.stats().work);
    }
}

/// Durable variant: identical batched histories on a vectorized and a
/// forced-scalar engine must leave byte-identical files on disk (WAL and
/// checkpoint alike) and restore to byte-identical view state.
#[test]
fn vectorized_and_scalar_checkpoints_are_byte_identical() {
    let run = |scalar: bool| {
        let tmp = TempDir::new(if scalar { "batch-sca" } else { "batch-vec" });
        {
            let mut db = ChronicleDb::open(tmp.path()).unwrap();
            if scalar {
                db.set_batch_mode(BatchMode::Scalar);
            }
            for stmt in zset_ddl() {
                db.execute(stmt).unwrap();
            }
            for s in 1..=6i64 {
                let rows: Vec<Vec<Value>> = (0..24)
                    .map(|i| vec![Value::Int(i % 5), Value::Float(s as f64 + i as f64 / 2.0)])
                    .collect();
                db.append("trades", Chronon(s), &rows).unwrap();
            }
            db.checkpoint().unwrap();
        }
        // Collect every durable artifact, keyed by path relative to the
        // database root.
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        let mut stack = vec![tmp.path().to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    let rel = p.strip_prefix(tmp.path()).unwrap();
                    files.push((rel.display().to_string(), std::fs::read(&p).unwrap()));
                }
            }
        }
        files.sort();
        let db = ChronicleDb::open(tmp.path()).unwrap();
        (files, db.snapshot_views())
    };
    let (vec_files, vec_views) = run(false);
    let (sca_files, sca_views) = run(true);
    assert_eq!(
        vec_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        sca_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "durable file sets differ"
    );
    for ((name, v), (_, s)) in vec_files.iter().zip(&sca_files) {
        assert_eq!(v, s, "durable artifact `{name}` differs between modes");
    }
    assert_eq!(vec_views, sca_views, "restored view state differs");
}

/// The mutation gate: with the kernels enabled, a vectorizable view over
/// a multi-row batch **must** take the columnar path. Under
/// `CHRONICLE_MUTATE=scalar_fallback` the counter stays zero and this
/// test fails — verify.sh runs exactly that mutation and requires the
/// failure.
#[test]
fn vectorized_path_is_exercised() {
    let mut db = build_db();
    let calls = db.catalog().chronicle_id("calls").unwrap();
    let expr = ScaExpr::group_agg(
        CaExpr::chronicle(db.catalog().chronicle(calls)),
        &["caller"],
        vec![AggSpec::new(AggFunc::Sum(2), "total")],
    )
    .unwrap();
    db.create_view("v", expr).unwrap();
    let rows: Vec<Vec<Value>> = (0..16)
        .map(|i| vec![Value::Int(i % 4), Value::Float(i as f64)])
        .collect();
    db.append("calls", Chronon(1), &rows).unwrap();
    assert!(
        db.stats().vectorized_views > 0,
        "multi-row append over a σ/Π/γ view never reached the vectorized kernels"
    );
}

prop_test! {
    /// A deliberately broken "oracle" — it claims every view stays empty —
    /// which the harness must refute and then shrink: this proves failure
    /// detection and shrinking work end-to-end against the real database,
    /// not just against toy integer properties.
    #[should_panic(expected = "property failed")]
    fn broken_oracle_is_refuted_and_shrunk(cases = 64, seed = 0xBAD0;
        ops in vec_of(op_gen(), 1..40),
    ) {
        let mut db = build_db();
        let calls = db.catalog().chronicle_id("calls").unwrap();
        let expr = ScaExpr::project(
            CaExpr::chronicle(db.catalog().chronicle(calls)),
            &["caller"],
        )
        .unwrap();
        db.create_view("v", expr).unwrap();
        let mut t = 0i64;
        for (i, op) in ops.iter().enumerate() {
            t = apply_op(&mut db, i, op, t);
        }
        // False claim: appends never reach the view.
        prop_assert!(
            db.query_view("v").unwrap().is_empty(),
            "view has {} rows",
            db.query_view("v").unwrap().len()
        );
    }
}
