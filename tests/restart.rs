//! Restart persistence: persistent views are the only durable state of a
//! chronicle system (the chronicle itself is not stored), so snapshotting
//! the views plus replaying the DDL must fully reconstruct the system.

use chronicle::prelude::*;
use chronicle::workload::AtmGen;

const DDL: &[&str] = &[
    "CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)",
    "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b, COUNT(*) AS n FROM atm GROUP BY acct",
    "CREATE VIEW extremes AS SELECT acct, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean FROM atm GROUP BY acct",
    "CREATE VIEW seen_accts AS SELECT acct FROM atm",
];

fn fresh() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    for stmt in DDL {
        db.execute(stmt).unwrap();
    }
    db
}

#[test]
fn snapshot_restore_reconstructs_all_views() {
    // Phase 1: run a workload.
    let mut db = fresh();
    let mut gen = AtmGen::new(11, 50);
    for i in 0..1_000usize {
        let row = gen.next_row();
        db.append(
            "atm",
            Chronon(i as i64),
            &[vec![row[0].clone(), row[1].clone()]],
        )
        .unwrap();
    }
    let snapshots = db.snapshot_views();
    assert_eq!(snapshots.len(), 3);
    let before: Vec<(String, Vec<Tuple>)> = ["balances", "extremes", "seen_accts"]
        .iter()
        .map(|v| (v.to_string(), db.query_view(v).unwrap()))
        .collect();

    // Phase 2: "restart" — new process: replay DDL, restore snapshots.
    let mut db2 = fresh();
    for (name, bytes) in &snapshots {
        db2.restore_view(name, bytes).unwrap();
    }
    for (name, rows) in &before {
        assert_eq!(
            &db2.query_view(name).unwrap(),
            rows,
            "view `{name}` differs after restart"
        );
    }

    // Phase 3: both instances continue identically on the same suffix.
    let suffix: Vec<Vec<Value>> = (0..50)
        .map(|_| {
            let row = gen.next_row();
            vec![row[0].clone(), row[1].clone()]
        })
        .collect();
    for (i, row) in suffix.iter().enumerate() {
        db.append("atm", Chronon(1_000 + i as i64), &[row.clone()])
            .unwrap();
        db2.append("atm", Chronon(i as i64), &[row.clone()])
            .unwrap();
    }
    for name in ["balances", "extremes", "seen_accts"] {
        assert_eq!(
            db.query_view(name).unwrap(),
            db2.query_view(name).unwrap(),
            "view `{name}` diverged after restart + continued ingest"
        );
    }
}

#[test]
fn restore_rejects_mismatched_views() {
    let mut db = fresh();
    db.execute("APPEND INTO atm VALUES (1, 5.0)").unwrap();
    let snapshots = db.snapshot_views();
    let balances = &snapshots.iter().find(|(n, _)| n == "balances").unwrap().1;

    let mut db2 = fresh();
    // Wrong view (projection vs group-agg).
    assert!(db2.restore_view("seen_accts", balances).is_err());
    // Wrong aggregate list (extremes has 3 aggregates, balances 2).
    assert!(db2.restore_view("extremes", balances).is_err());
    // Unknown view.
    assert!(db2.restore_view("ghost", balances).is_err());
    // Corrupted payload.
    let mut bad = balances.clone();
    let last = bad.len() - 1;
    bad.truncate(last);
    assert!(db2.restore_view("balances", &bad).is_err());
    // And the right one works.
    db2.restore_view("balances", balances).unwrap();
    assert_eq!(
        db2.query_view_key("balances", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(5.0)
    );
}

#[test]
fn snapshots_are_compact() {
    // The snapshot is proportional to |V| (the view), not to the stream:
    // 100k appends over 10 accounts must produce a tiny snapshot.
    let mut db = fresh();
    let mut gen = AtmGen::new(3, 10);
    for i in 0..20_000usize {
        let row = gen.next_row();
        db.append(
            "atm",
            Chronon(i as i64),
            &[vec![row[0].clone(), row[1].clone()]],
        )
        .unwrap();
    }
    let snapshots = db.snapshot_views();
    let total: usize = snapshots.iter().map(|(_, b)| b.len()).sum();
    assert!(
        total < 4096,
        "snapshot of 10-account views should be tiny, got {total} bytes"
    );
}
