//! Restart persistence: persistent views are the only durable state of a
//! chronicle system (the chronicle itself is not stored). Most of this
//! suite exercises the durability subsystem — `ChronicleDb::open` at a
//! path, crash (drop without checkpoint), reopen, and byte-identical view
//! state — plus one regression case for the legacy manual
//! snapshot/restore path.

use chronicle::prelude::*;
use chronicle::workload::AtmGen;
use chronicle_testkit::TempDir;

const DDL: &[&str] = &[
    "CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)",
    "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b, COUNT(*) AS n FROM atm GROUP BY acct",
    "CREATE VIEW extremes AS SELECT acct, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS mean FROM atm GROUP BY acct",
    "CREATE VIEW seen_accts AS SELECT acct FROM atm",
];

fn apply_ddl(db: &mut ChronicleDb) {
    for stmt in DDL {
        db.execute(stmt).unwrap();
    }
}

fn fresh() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    apply_ddl(&mut db);
    db
}

/// Drive `n` deterministic appends into both databases.
fn ingest(dbs: &mut [&mut ChronicleDb], seed: u64, n: usize, base_chronon: i64) {
    let mut gen = AtmGen::new(seed, 50);
    for i in 0..n {
        let row = gen.next_row();
        let vals = vec![row[0].clone(), row[1].clone()];
        for db in dbs.iter_mut() {
            db.append(
                "atm",
                Chronon(base_chronon + i as i64),
                std::slice::from_ref(&vals),
            )
            .unwrap();
        }
    }
}

#[test]
fn durable_crash_reopen_without_checkpoint() {
    let tmp = TempDir::new("chronicle-restart");
    let mut oracle = fresh();
    {
        let mut db = ChronicleDb::open(tmp.path()).unwrap();
        apply_ddl(&mut db);
        ingest(&mut [&mut db, &mut oracle], 11, 500, 0);
        // No checkpoint, no clean shutdown: `db` is dropped here — the
        // crash. Everything acknowledged is already in the WAL.
    }
    let db = ChronicleDb::open(tmp.path()).unwrap();
    assert_eq!(db.stats().recovery_checkpoint_lsn, None);
    assert!(db.stats().recovery_replayed_records >= 500);
    // Byte-identical view state versus the never-crashed oracle.
    assert_eq!(db.snapshot_views(), oracle.snapshot_views());
    for v in ["balances", "extremes", "seen_accts"] {
        assert_eq!(db.query_view(v).unwrap(), oracle.query_view(v).unwrap());
    }
}

#[test]
fn checkpoint_then_crash_replays_only_tail() {
    let tmp = TempDir::new("chronicle-restart");
    let mut oracle = fresh();
    {
        let mut db = ChronicleDb::open(tmp.path()).unwrap();
        apply_ddl(&mut db);
        ingest(&mut [&mut db, &mut oracle], 7, 1_000, 0);
        let lsn = db.checkpoint().unwrap();
        assert!(lsn > 0);
        assert_eq!(db.stats().checkpoints, 1);
        ingest(&mut [&mut db, &mut oracle], 8, 50, 1_000);
    }
    let db = ChronicleDb::open(tmp.path()).unwrap();
    assert!(db.stats().recovery_checkpoint_lsn.is_some());
    // Only the 50 post-checkpoint appends replay, not the 1000 before.
    assert_eq!(db.stats().recovery_replayed_records, 50);
    assert_eq!(db.snapshot_views(), oracle.snapshot_views());
}

#[test]
fn reopened_db_continues_identically() {
    let tmp = TempDir::new("chronicle-restart");
    let mut oracle = fresh();
    {
        let mut db = ChronicleDb::open(tmp.path()).unwrap();
        apply_ddl(&mut db);
        ingest(&mut [&mut db, &mut oracle], 3, 400, 0);
        db.checkpoint().unwrap();
        ingest(&mut [&mut db, &mut oracle], 4, 30, 400);
    }
    // Reopen and keep ingesting the same suffix on both sides: sequence
    // numbers, watermarks and views must all continue in lock-step.
    let mut db = ChronicleDb::open(tmp.path()).unwrap();
    ingest(&mut [&mut db, &mut oracle], 5, 200, 430);
    assert_eq!(db.snapshot_views(), oracle.snapshot_views());
    let c = db
        .catalog()
        .chronicle(db.catalog().chronicle_id("atm").unwrap());
    let oc = oracle
        .catalog()
        .chronicle(oracle.catalog().chronicle_id("atm").unwrap());
    assert_eq!(c.total_appended(), oc.total_appended());
    assert_eq!(c.last_seq(), oc.last_seq());
}

#[test]
fn relations_and_periodic_views_survive_reopen() {
    let tmp = TempDir::new("chronicle-restart");
    let stmts = [
        "CREATE CHRONICLE calls (sn SEQ, acct INT, minutes FLOAT)",
        "CREATE RELATION customers (acct INT, name STRING, PRIMARY KEY (acct))",
        "CREATE PERIODIC VIEW weekly AS SELECT acct, SUM(minutes) AS m FROM calls GROUP BY acct \
         OVER CALENDAR EVERY 7",
        "INSERT INTO customers VALUES (1, 'alice'), (2, 'bob')",
        "UPDATE customers SET name = 'alicia' WHERE acct = 1",
        "DELETE FROM customers WHERE acct = 2",
        "APPEND INTO calls AT 3 VALUES (1, 10.0)",
        "APPEND INTO calls AT 9 VALUES (1, 2.5)",
    ];
    {
        let mut db = ChronicleDb::open(tmp.path()).unwrap();
        for s in &stmts {
            db.execute(s).unwrap();
        }
        db.checkpoint().unwrap();
        db.execute("APPEND INTO calls AT 16 VALUES (1, 4.0)")
            .unwrap();
    }
    let mut oracle = ChronicleDb::new();
    for s in &stmts {
        oracle.execute(s).unwrap();
    }
    oracle
        .execute("APPEND INTO calls AT 16 VALUES (1, 4.0)")
        .unwrap();

    let db = ChronicleDb::open(tmp.path()).unwrap();
    // Relation contents (including the temporal log) survive.
    let rid = db.catalog().relation_id("customers").unwrap();
    let orid = oracle.catalog().relation_id("customers").unwrap();
    assert_eq!(
        db.catalog().relation(rid).current().to_vec(),
        oracle.catalog().relation(orid).current().to_vec()
    );
    assert_eq!(
        db.catalog().relation(rid).log(),
        oracle.catalog().relation(orid).log()
    );
    // Periodic intervals: same live/closed population and same answers.
    let p = db.periodic_view("weekly").unwrap();
    let op = oracle.periodic_view("weekly").unwrap();
    assert_eq!(p.counts(), op.counts());
    for idx in 0..3 {
        assert_eq!(
            p.query(idx, &[Value::Int(1)]),
            op.query(idx, &[Value::Int(1)])
        );
    }
}

#[test]
fn durable_footprint_stays_small_after_checkpoint() {
    // Durable state is O(|V| + tail), never O(|C|): 20k appends over 10
    // accounts followed by a checkpoint must leave only a tiny footprint.
    let tmp = TempDir::new("chronicle-restart");
    let mut db = ChronicleDb::open(tmp.path()).unwrap();
    apply_ddl(&mut db);
    let mut gen = AtmGen::new(3, 10);
    for i in 0..20_000usize {
        let row = gen.next_row();
        db.append(
            "atm",
            Chronon(i as i64),
            &[vec![row[0].clone(), row[1].clone()]],
        )
        .unwrap();
    }
    let before = dir_bytes(tmp.path());
    db.checkpoint().unwrap();
    let after = dir_bytes(tmp.path());
    assert!(
        after < 16 * 1024,
        "post-checkpoint footprint should be view-sized, got {after} bytes"
    );
    assert!(after < before / 10, "checkpoint must truncate the log");
}

#[test]
fn programmatic_view_ddl_requires_sql_when_durable() {
    let tmp = TempDir::new("chronicle-restart");
    let mut db = ChronicleDb::open(tmp.path()).unwrap();
    apply_ddl(&mut db);
    // A pre-parsed statement carries no SQL text to log, so recovery could
    // not rebuild the view → rejected on a durable database.
    let stmt = chronicle::sql::parse(
        "CREATE VIEW totals AS SELECT acct, SUM(amount) AS s FROM atm GROUP BY acct",
    )
    .unwrap();
    assert!(matches!(
        db.execute_stmt(stmt).unwrap_err(),
        ChronicleError::Durability { .. }
    ));
    // The SQL path works and survives a reopen.
    db.execute("CREATE VIEW totals AS SELECT acct, SUM(amount) AS s FROM atm GROUP BY acct")
        .unwrap();
    db.execute("APPEND INTO atm VALUES (9, 1.5)").unwrap();
    drop(db);
    let db = ChronicleDb::open(tmp.path()).unwrap();
    assert_eq!(
        db.query_view_key("totals", &[Value::Int(9)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(1.5)
    );
}

fn dir_bytes(path: &std::path::Path) -> u64 {
    let mut total = 0;
    for entry in std::fs::read_dir(path).unwrap() {
        let entry = entry.unwrap();
        let meta = entry.metadata().unwrap();
        if meta.is_dir() {
            total += dir_bytes(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

// ---- legacy manual snapshot/restore path (regression) ---------------------

#[test]
fn snapshot_restore_reconstructs_all_views() {
    // Phase 1: run a workload.
    let mut db = fresh();
    let mut gen = AtmGen::new(11, 50);
    for i in 0..1_000usize {
        let row = gen.next_row();
        db.append(
            "atm",
            Chronon(i as i64),
            &[vec![row[0].clone(), row[1].clone()]],
        )
        .unwrap();
    }
    let snapshots = db.snapshot_views();
    assert_eq!(snapshots.len(), 3);
    let before: Vec<(String, Vec<Tuple>)> = ["balances", "extremes", "seen_accts"]
        .iter()
        .map(|v| (v.to_string(), db.query_view(v).unwrap()))
        .collect();

    // Phase 2: "restart" — new process: replay DDL, restore snapshots.
    let mut db2 = fresh();
    for (name, bytes) in &snapshots {
        db2.restore_view(name, bytes).unwrap();
    }
    for (name, rows) in &before {
        assert_eq!(
            &db2.query_view(name).unwrap(),
            rows,
            "view `{name}` differs after restart"
        );
    }

    // Phase 3: both instances continue identically on the same suffix.
    let suffix: Vec<Vec<Value>> = (0..50)
        .map(|_| {
            let row = gen.next_row();
            vec![row[0].clone(), row[1].clone()]
        })
        .collect();
    for (i, row) in suffix.iter().enumerate() {
        db.append("atm", Chronon(1_000 + i as i64), std::slice::from_ref(row))
            .unwrap();
        db2.append("atm", Chronon(i as i64), std::slice::from_ref(row))
            .unwrap();
    }
    for name in ["balances", "extremes", "seen_accts"] {
        assert_eq!(
            db.query_view(name).unwrap(),
            db2.query_view(name).unwrap(),
            "view `{name}` diverged after restart + continued ingest"
        );
    }
}
