//! Integration tests for §5.1: periodic views, calendars, expiration, and
//! the equivalence of the cyclic-buffer optimization with the general
//! periodic-view machinery.

use chronicle_testkit::prop::{ints, pair, triple, vec_of};
use chronicle_testkit::{prop_assert_eq, prop_test};

use chronicle::algebra::{AggFunc, AggSpec, CaExpr, ScaExpr};
use chronicle::prelude::*;
use chronicle::views::SlidingWindow;

fn trade_db(retain_all: bool) -> ChronicleDb {
    let mut db = ChronicleDb::new();
    let retain = if retain_all { "RETAIN ALL" } else { "" };
    db.execute(&format!(
        "CREATE CHRONICLE trades (sn SEQ, symbol STRING, shares INT) {retain}"
    ))
    .unwrap();
    db
}

#[test]
fn monthly_billing_statements() {
    let mut db = trade_db(false);
    db.execute(
        "CREATE PERIODIC VIEW monthly AS SELECT symbol, SUM(shares) AS vol \
         FROM trades GROUP BY symbol OVER CALENDAR EVERY 30",
    )
    .unwrap();
    // Month 0: days 0..29, month 1: days 30..59.
    db.execute("APPEND INTO trades AT 3 VALUES ('T', 100)")
        .unwrap();
    db.execute("APPEND INTO trades AT 29 VALUES ('T', 50)")
        .unwrap();
    db.execute("APPEND INTO trades AT 30 VALUES ('T', 7)")
        .unwrap();
    db.execute("APPEND INTO trades AT 59 VALUES ('IBM', 1)")
        .unwrap();

    let set = db.periodic_view("monthly").unwrap();
    assert_eq!(
        set.query(0, &[Value::str("T")]).unwrap().get(1),
        &Value::Int(150)
    );
    assert_eq!(
        set.query(1, &[Value::str("T")]).unwrap().get(1),
        &Value::Int(7)
    );
    assert_eq!(
        set.query(1, &[Value::str("IBM")]).unwrap().get(1),
        &Value::Int(1)
    );
    let (live, closed, expired) = set.counts();
    assert_eq!((live, closed, expired), (1, 1, 0));
}

#[test]
fn expiry_bounds_space_for_infinite_calendars() {
    let mut db = trade_db(false);
    db.execute(
        "CREATE PERIODIC VIEW m AS SELECT symbol, COUNT(*) AS n \
         FROM trades GROUP BY symbol OVER CALENDAR EVERY 10 EXPIRE AFTER 10",
    )
    .unwrap();
    for day in 0..500i64 {
        db.execute(&format!("APPEND INTO trades AT {day} VALUES ('T', 1)"))
            .unwrap();
    }
    let (live, closed, expired) = db.periodic_view("m").unwrap().counts();
    assert_eq!(live, 1);
    assert!(
        closed <= 2,
        "expiry keeps closed views bounded, got {closed}"
    );
    assert!(expired >= 45);
}

#[test]
fn single_interval_calendar_is_a_plain_selected_view() {
    // "When the calendar D has only one interval, the periodic view
    // corresponds to a single view defined using an extra selection."
    let mut db = trade_db(false);
    let trades = db.catalog().chronicle_id("trades").unwrap();
    let expr = ScaExpr::group_agg(
        CaExpr::chronicle(db.catalog().chronicle(trades)),
        &["symbol"],
        vec![AggSpec::new(AggFunc::Sum(2), "vol")],
    )
    .unwrap();
    db.create_periodic_view(
        "q1",
        expr,
        Calendar::single(Interval::new(Chronon(10), Chronon(20)).unwrap()),
        None,
    )
    .unwrap();
    for day in 0..30i64 {
        db.execute(&format!("APPEND INTO trades AT {day} VALUES ('T', 1)"))
            .unwrap();
    }
    let set = db.periodic_view("q1").unwrap();
    // Only days 10..19 counted.
    assert_eq!(
        set.query(0, &[Value::str("T")]).unwrap().get(1),
        &Value::Int(10)
    );
    assert!(set.query(1, &[Value::str("T")]).is_none());
}

prop_test! {
    /// The §5.1 cyclic buffer computes exactly what the general
    /// periodic-view family computes for every overlapping window, for
    /// arbitrary trade streams.
    fn cyclic_buffer_equals_periodic_views(cases = 32, seed = 0xC1C11C;
        trades in vec_of(triple(ints(0..3usize), ints(1..100i64), ints(0..4i64)), 1..60),
        width in ints(2..6i64),
    ) {
        let symbols = ["T", "IBM", "GE"];
        let mut db = trade_db(false);
        let trades_id = db.catalog().chronicle_id("trades").unwrap();
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(db.catalog().chronicle(trades_id)),
            &["symbol"],
            vec![
                AggSpec::new(AggFunc::Sum(2), "vol"),
                AggSpec::new(AggFunc::Max(2), "biggest"),
            ],
        )
        .unwrap();
        db.create_periodic_view(
            "win",
            expr,
            Calendar::sliding(Chronon(0), width, 1).unwrap(),
            None,
        )
        .unwrap();
        let mut cyclic = SlidingWindow::new(
            Chronon(0),
            width as usize,
            1,
            vec![0],
            vec![AggFunc::Sum(1), AggFunc::Max(1)],
        )
        .unwrap();

        // Trades arrive with non-decreasing day offsets.
        let mut day = 0i64;
        for (sym, shares, advance) in &trades {
            day += advance;
            let symbol = symbols[*sym];
            db.execute(&format!(
                "APPEND INTO trades AT {day} VALUES ('{symbol}', {shares})"
            ))
            .unwrap();
            cyclic
                .insert(Chronon(day), &Tuple::new(vec![Value::str(symbol), Value::Int(*shares)]))
                .unwrap();
        }

        // The window ending today started (width-1) days ago.
        let idx = (day - (width - 1)).max(0) as u64;
        let set = db.periodic_view("win").unwrap();
        for symbol in symbols {
            let key = [Value::str(symbol)];
            let cyc = cyclic.query(&key, Chronon(day)).unwrap();
            match set.query(idx, &key) {
                Some(row) => {
                    prop_assert_eq!(&cyc[0], row.get(1), "SUM mismatch for {}", symbol);
                    prop_assert_eq!(&cyc[1], row.get(2), "MAX mismatch for {}", symbol);
                }
                None => {
                    prop_assert_eq!(&cyc[0], &Value::Null, "{} traded?", symbol);
                }
            }
        }
    }
}

prop_test! {
    /// Periodic views over a monthly calendar partition the lifetime view:
    /// the per-month sums add up to the lifetime sum.
    fn monthly_views_partition_lifetime(cases = 32, seed = 0x30DA45;
        trades in vec_of(pair(ints(1..100i64), ints(0..5i64)), 1..50),
    ) {
        let mut db = trade_db(false);
        db.execute(
            "CREATE VIEW lifetime AS SELECT symbol, SUM(shares) AS vol FROM trades GROUP BY symbol",
        )
        .unwrap();
        db.execute(
            "CREATE PERIODIC VIEW monthly AS SELECT symbol, SUM(shares) AS vol \
             FROM trades GROUP BY symbol OVER CALENDAR EVERY 7",
        )
        .unwrap();
        let mut day = 0i64;
        for (shares, advance) in &trades {
            day += advance;
            db.execute(&format!("APPEND INTO trades AT {day} VALUES ('T', {shares})"))
                .unwrap();
        }
        let lifetime = db
            .query_view_key("lifetime", &[Value::str("T")])
            .unwrap()
            .and_then(|r| r.get(1).as_int())
            .unwrap_or(0);
        let set = db.periodic_view("monthly").unwrap();
        let mut monthly_total = 0i64;
        for (_, state) in set.live_views().chain(set.closed_views()) {
            if let Some(row) = state.view.get(&[Value::str("T")]) {
                monthly_total += row.get(1).as_int().unwrap_or(0);
            }
        }
        prop_assert_eq!(monthly_total, lifetime);
    }
}
