//! Concurrency: the append pipeline serializes maintenance correctly under
//! many producers, preserving sequence-number monotonicity and exact view
//! contents.

use std::collections::HashMap;

use chronicle::db::pipeline::Pipeline;
use chronicle::prelude::*;
use chronicle::workload::AtmGen;

fn banking() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT) RETAIN ALL")
        .unwrap();
    db.execute(
        "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b, COUNT(*) AS n \
         FROM atm GROUP BY acct",
    )
    .unwrap();
    db
}

#[test]
fn eight_producers_exact_balances() {
    let pipeline = Pipeline::start(banking(), 256);
    let mut joins = Vec::new();
    for p in 0..8u64 {
        let h = pipeline.handle();
        joins.push(std::thread::spawn(move || {
            let mut gen = AtmGen::new(p, 16);
            let mut local: HashMap<i64, (f64, i64)> = HashMap::new();
            for i in 0..200usize {
                let row = gen.next_row();
                let acct = row[0].as_int().unwrap();
                let amount = row[1].as_float().unwrap();
                let e = local.entry(acct).or_insert((0.0, 0));
                e.0 += amount;
                e.1 += 1;
                // A fixed chronon: wall-clock ties across ATMs are legal;
                // monotonicity is per group, and equal chronons satisfy it.
                let _ = i;
                h.append(
                    "atm",
                    Chronon(0),
                    vec![vec![row[0].clone(), row[1].clone()]],
                )
                .unwrap();
            }
            local
        }));
    }
    // Merge every producer's local expectations.
    let mut expected: HashMap<i64, (f64, i64)> = HashMap::new();
    for j in joins {
        for (acct, (amt, n)) in j.join().unwrap() {
            let e = expected.entry(acct).or_insert((0.0, 0));
            e.0 += amt;
            e.1 += n;
        }
    }
    let db = pipeline.shutdown();
    assert_eq!(db.stats().appends, 1_600);
    for (acct, (amt, n)) in expected {
        let row = db
            .query_view_key("balances", &[Value::Int(acct)])
            .unwrap()
            .unwrap_or_else(|| panic!("account {acct} missing"));
        assert!(
            (row.get(1).as_float().unwrap() - amt).abs() < 1e-6,
            "balance mismatch for {acct}"
        );
        assert_eq!(row.get(2).as_int().unwrap(), n, "count mismatch for {acct}");
    }
    // Sequence numbers were allocated without gaps or duplicates.
    let atm = db.catalog().chronicle_id("atm").unwrap();
    let mut seqs: Vec<u64> = db
        .catalog()
        .chronicle(atm)
        .scan_all()
        .unwrap()
        .map(|t| t.seq_at(0).unwrap().0)
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=1_600).collect::<Vec<u64>>());
}

#[test]
fn queries_during_ingest_see_consistent_prefixes() {
    // A reader polling view rows mid-ingest must always see a sum and count
    // that correspond to SOME prefix of the append sequence: with all
    // deposits of +1, balance == txn count at every instant, and both are
    // non-decreasing over time.
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
        .unwrap();
    db.execute(
        "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b, COUNT(*) AS n \
         FROM atm GROUP BY acct",
    )
    .unwrap();
    let pipeline = Pipeline::start(db, 64);
    let writer = {
        let h = pipeline.handle();
        std::thread::spawn(move || {
            for i in 0..500usize {
                h.append(
                    "atm",
                    Chronon(i as i64),
                    vec![vec![Value::Int(1), Value::Float(1.0)]],
                )
                .unwrap();
            }
        })
    };
    let reader = {
        let h = pipeline.handle();
        std::thread::spawn(move || {
            let mut last_n = 0i64;
            for _ in 0..100 {
                if let Some(row) = h.query("balances", vec![Value::Int(1)]).unwrap() {
                    let b = row.get(1).as_float().unwrap();
                    let n = row.get(2).as_int().unwrap();
                    assert_eq!(b, n as f64, "sum and count must move together");
                    assert!(n >= last_n, "view went backwards");
                    last_n = n;
                }
                std::thread::yield_now();
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let db = pipeline.shutdown();
    let row = db
        .query_view_key("balances", &[Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(row.get(1).as_float().unwrap(), 500.0);
    assert_eq!(row.get(2).as_int().unwrap(), 500);
}

#[test]
fn pipeline_backpressure_does_not_deadlock() {
    // Capacity 1 forces producers to block on the channel; everything still
    // drains.
    let pipeline = Pipeline::start(banking(), 1);
    let mut joins = Vec::new();
    for _ in 0..4 {
        let h = pipeline.handle();
        joins.push(std::thread::spawn(move || {
            for _ in 0..50usize {
                h.append_nowait(
                    "atm",
                    Chronon(0),
                    vec![vec![Value::Int(1), Value::Float(1.0)]],
                )
                .unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let db = pipeline.shutdown();
    assert_eq!(db.stats().appends, 200);
}

#[test]
fn errors_propagate_to_the_right_producer() {
    let pipeline = Pipeline::start(banking(), 16);
    let good = pipeline.handle();
    let bad = pipeline.handle();
    let g = std::thread::spawn(move || {
        for i in 0..50usize {
            good.append(
                "atm",
                Chronon(i as i64),
                vec![vec![Value::Int(1), Value::Float(1.0)]],
            )
            .unwrap();
        }
    });
    let b = std::thread::spawn(move || {
        let mut errs = 0;
        for _ in 0..50usize {
            if bad
                .append(
                    "ghost",
                    Chronon(0),
                    vec![vec![Value::Int(1), Value::Float(1.0)]],
                )
                .is_err()
            {
                errs += 1;
            }
        }
        errs
    });
    g.join().unwrap();
    assert_eq!(b.join().unwrap(), 50, "every bad append got its error");
    let db = pipeline.shutdown();
    assert_eq!(db.stats().appends, 50, "only good appends counted");
}
