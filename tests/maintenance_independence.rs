//! Theorem 4.1 as a deterministic regression test against the public
//! database API: the maintenance work charged for an append of `u` tuples
//! depends only on `u` (and the view set), never on how many tuples the
//! chronicle has already accumulated. Wall time is too noisy to assert
//! this; the database's own work counters ([`chronicle::db::ChronicleDb::stats`])
//! are exact, so the comparison is equality, not a tolerance.

use chronicle::algebra::WorkCounter;
use chronicle::db::pipeline::ShardedPipeline;
use chronicle::db::{ChronicleDb, ShardedDb};
use chronicle::prelude::*;
use chronicle_testkit::prop::{floats, ints, pair, vec_of};
use chronicle_testkit::{prop_assert_eq, prop_test, Rng, SeedableRng, SmallRng, Zipf};

fn build_db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION rates (acct INT, rate FLOAT, PRIMARY KEY (acct))")
        .unwrap();
    for a in 0..8i64 {
        db.execute(&format!("INSERT INTO rates VALUES ({a}, 0.5)"))
            .unwrap();
    }
    // One CA1 view (constant work per tuple) and one CAkey view (index
    // probes, O(log |R|) per tuple) — both classes must be |C|-independent.
    db.execute(
        "CREATE VIEW spend AS SELECT caller, SUM(minutes) AS total \
         FROM calls GROUP BY caller",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW billed AS SELECT caller, SUM(rate) AS r \
         FROM calls JOIN rates ON caller = acct GROUP BY caller",
    )
    .unwrap();
    db
}

/// Append one batch of `u` rows and return exactly the maintenance work it
/// was charged.
fn work_of_append(db: &mut ChronicleDb, u: usize, t: &mut i64) -> WorkCounter {
    let before = db.stats().work;
    *t += 1;
    let rows: Vec<Vec<Value>> = (0..u)
        .map(|i| vec![Value::Int((i % 8) as i64), Value::Float(1.5)])
        .collect();
    db.append("calls", Chronon(*t), &rows).unwrap();
    let after = db.stats().work;
    WorkCounter {
        tuples_out: after.tuples_out - before.tuples_out,
        tuples_in: after.tuples_in - before.tuples_in,
        index_probes: after.index_probes - before.index_probes,
        rel_tuples_scanned: after.rel_tuples_scanned - before.rel_tuples_scanned,
    }
}

/// Sweep u = 1..=64, returning the work counter charged for each batch size.
fn sweep(db: &mut ChronicleDb, t: &mut i64) -> Vec<WorkCounter> {
    (1..=64).map(|u| work_of_append(db, u, t)).collect()
}

#[test]
fn per_append_work_is_independent_of_chronicle_size() {
    let mut db = build_db();
    let mut t = 0i64;

    // Epoch 1: the chronicle is nearly empty.
    let early = sweep(&mut db, &mut t);

    // Grow |C| by two orders of magnitude beyond everything the sweep
    // appended (the group keys recur, so view sizes stay fixed while the
    // chronicle's history grows).
    for _ in 0..2_000 {
        t += 1;
        db.append(
            "calls",
            Chronon(t),
            &[vec![Value::Int(3), Value::Float(0.5)]],
        )
        .unwrap();
    }

    // Epoch 2: same sweep against the much larger chronicle.
    let late = sweep(&mut db, &mut t);

    // Theorem 4.1: identical work, counter by counter, for every u.
    for (u, (e, l)) in early.iter().zip(&late).enumerate() {
        assert_eq!(
            e,
            l,
            "maintenance work for a {}-tuple append changed as |C| grew",
            u + 1
        );
    }

    // And the chronicle really did grow between the epochs.
    assert_eq!(db.stats().appends, 64 + 2_000 + 64);
    assert!(db.stats().tuples_appended > 2_000);
}

#[test]
fn per_append_work_is_linear_in_batch_size() {
    let mut db = build_db();
    let mut t = 0i64;
    let works = sweep(&mut db, &mut t);

    // Batch rows cycle through 8 group keys, so work has a per-distinct-
    // group component that saturates at u = 8; past that point Work(u)
    // must be *exactly* linear: Work(u+1) - Work(u) is one fixed per-tuple
    // cost. Any |C|- or history-dependent term would break the
    // progression.
    let base = works[7].total(); // u = 8
    let slope = works[8].total() - base; // u = 9 minus u = 8
    assert!(slope > 0, "appending more tuples must cost more work");
    for (i, w) in works.iter().enumerate().skip(7) {
        assert_eq!(
            w.total(),
            base + slope * (i as u64 - 7),
            "work for u = {} off the linear progression",
            i + 1
        );
    }
    // Below saturation the curve is still monotone.
    for pair in works[..8].windows(2) {
        assert!(pair[0].total() < pair[1].total());
    }
}

/// DDL with relation-backed views: the retraction-bearing counterpart of
/// [`build_db`]. Chronicle views and relation views coexist; relation
/// DML drives signed Z-set deltas through the relation views only.
fn build_retraction_db() -> ChronicleDb {
    let mut db = build_db();
    db.execute("CREATE RELATION accts (acct INT, region INT, amount FLOAT, PRIMARY KEY (acct))")
        .unwrap();
    db.execute(
        "CREATE VIEW by_region AS SELECT region, SUM(amount) AS s, COUNT(*) AS n \
         FROM accts GROUP BY region",
    )
    .unwrap();
    db.execute("CREATE VIEW region_set AS SELECT region FROM accts")
        .unwrap();
    db
}

/// Run `f` and return exactly the maintenance work it was charged.
fn work_of(db: &mut ChronicleDb, f: impl FnOnce(&mut ChronicleDb)) -> WorkCounter {
    let before = db.stats().work;
    f(db);
    let after = db.stats().work;
    WorkCounter {
        tuples_out: after.tuples_out - before.tuples_out,
        tuples_in: after.tuples_in - before.tuples_in,
        index_probes: after.index_probes - before.index_probes,
        rel_tuples_scanned: after.rel_tuples_scanned - before.rel_tuples_scanned,
    }
}

/// One retraction-bearing DML round over keys 0..8: insert, update
/// (`−old +new`), and delete every key, recording the work of each
/// statement. The relation ends the round exactly as it started (empty),
/// so rounds are directly comparable.
fn retraction_round(db: &mut ChronicleDb) -> Vec<WorkCounter> {
    let mut works = Vec::new();
    for k in 0..8i64 {
        works.push(work_of(db, |db| {
            db.execute(&format!("INSERT INTO accts VALUES ({k}, {}, 2.5)", k % 3))
                .unwrap();
        }));
    }
    for k in 0..8i64 {
        works.push(work_of(db, |db| {
            db.execute(&format!(
                "UPDATE accts SET region = {}, amount = 4.0 WHERE acct = {k}",
                (k + 1) % 3
            ))
            .unwrap();
        }));
    }
    for k in 0..8i64 {
        works.push(work_of(db, |db| {
            db.execute(&format!("DELETE FROM accts WHERE acct = {k}"))
                .unwrap();
        }));
    }
    works
}

#[test]
fn retraction_work_is_independent_of_chronicle_size() {
    let mut db = build_retraction_db();
    let mut t = 0i64;

    // Epoch 1: the chronicle is nearly empty.
    let early = retraction_round(&mut db);

    // Grow |C| by three orders of magnitude. Relation views are not
    // routed appends, so this must not change what relation DML costs —
    // Theorem 4.1's |C|-independence extends to signed deltas.
    for _ in 0..2_000 {
        t += 1;
        db.append(
            "calls",
            Chronon(t),
            &[vec![Value::Int(3), Value::Float(0.5)]],
        )
        .unwrap();
    }

    // Epoch 2: the identical DML round against the much larger chronicle.
    let late = retraction_round(&mut db);
    for (i, (e, l)) in early.iter().zip(&late).enumerate() {
        assert_eq!(
            e, l,
            "retraction-bearing statement {i} was charged different work after |C| grew"
        );
    }
    assert_eq!(db.stats().relation_changes, 2 * 24);
}

#[test]
fn insert_and_delete_charge_identical_work() {
    // A `+1` and its `−1` are the same delta up to sign, and work is
    // charged per |weight| — so inserting a tuple and deleting it must
    // produce counter-for-counter identical work. An update is the
    // consolidated `−old +new` pair: exactly twice the tuple traffic when
    // the group key moves (two groups probed, two signed tuples folded).
    let mut db = build_retraction_db();
    let ins = work_of(&mut db, |db| {
        db.execute("INSERT INTO accts VALUES (1, 0, 2.5)").unwrap();
    });
    let upd = work_of(&mut db, |db| {
        db.execute("UPDATE accts SET region = 1, amount = 4.0 WHERE acct = 1")
            .unwrap();
    });
    let del = work_of(&mut db, |db| {
        db.execute("DELETE FROM accts WHERE acct = 1").unwrap();
    });
    assert_eq!(ins, del, "+1 and −1 deltas must cost the same work");
    assert_eq!(
        upd.tuples_in,
        ins.tuples_in + del.tuples_in,
        "an update is one −old +new pair"
    );
    assert!(ins.tuples_in > 0, "the delta actually reached the views");
}

#[test]
fn retraction_work_does_not_grow_with_view_history() {
    // The dual of |C|-independence: per-change work must not grow with
    // how many deltas the *view* has already absorbed, either. Drive many
    // rounds and compare the first against the last.
    let mut db = build_retraction_db();
    let first = retraction_round(&mut db);
    for _ in 0..50 {
        retraction_round(&mut db);
    }
    let last = retraction_round(&mut db);
    assert_eq!(first, last, "work drifted as the view absorbed deltas");
}

/// The work-shape gate for heavy-light placement: moving a group between
/// shards (or letting the online classifier rebalance the whole table)
/// must be *execution-only*. Theorem 4.1 makes the group a closed
/// maintenance unit, so the maintenance work charged for a statement
/// cannot depend on which shard hosts its group. Two sharded engines run
/// a byte-identical Zipf-skewed append schedule; one keeps the static
/// FNV hash placement, the other is churned with explicit moves and
/// online rebalances between statements. The per-statement aggregate
/// work deltas (summed across shards) must match counter for counter.
#[test]
fn placement_is_execution_only_for_maintenance_work() {
    let shards = shard_count();
    let mut stay = ShardedDb::new(shards).unwrap();
    let mut churn = ShardedDb::new(shards).unwrap();
    for stmt in sharded_prop_ddl() {
        stay.execute(&stmt).unwrap();
        churn.execute(&stmt).unwrap();
    }

    let work_of_stmt = |db: &mut ShardedDb, sql: &str| -> WorkCounter {
        let before = db.stats().work;
        db.execute(sql).unwrap();
        let after = db.stats().work;
        WorkCounter {
            tuples_out: after.tuples_out - before.tuples_out,
            tuples_in: after.tuples_in - before.tuples_in,
            index_probes: after.index_probes - before.index_probes,
            rel_tuples_scanned: after.rel_tuples_scanned - before.rel_tuples_scanned,
        }
    };

    let mut rng = SmallRng::seed_from_u64(0x9a7e_5eed);
    let zipf = Zipf::new(GROUPS as usize, 1.1);
    let mut moves = 0usize;
    for i in 0..240i64 {
        let g = zipf.sample(&mut rng);
        let acct = rng.gen_range(0..6u64);
        let amount = (rng.gen_range(0..20u64) as f64) / 2.0;
        let sql = format!("APPEND INTO c{g} AT {} VALUES ({acct}, {amount:.1})", i + 1);
        let w_stay = work_of_stmt(&mut stay, &sql);
        let w_churn = work_of_stmt(&mut churn, &sql);
        assert_eq!(
            w_stay, w_churn,
            "statement {i} ({sql}) was charged different maintenance work \
             under heavy-light placement than under static hashing"
        );

        // Churn placement between statements: explicit moves on a cycle
        // plus periodic online rebalances driven by the live Zipf rates.
        if i % 24 == 11 {
            churn
                .move_group(&format!("g{}", g % GROUPS as usize), (g + 1) % shards)
                .unwrap();
            moves += 1;
        }
        if i % 60 == 35 {
            moves += churn.rebalance().unwrap().len();
        }
    }
    assert!(
        moves >= 10,
        "the churned engine must actually relocate groups (got {moves})"
    );
    // Placement churn is also invisible to logical state.
    let mut expect = stay.snapshot_views();
    expect.sort();
    let mut got = churn.snapshot_views();
    got.sort();
    assert_eq!(got, expect, "placement churn leaked into view state");
}

/// Number of chronicle groups in the sharded-equivalence property test.
const GROUPS: i64 = 4;

/// Shard count for the sharded-equivalence property test; `SHARDS=n`
/// overrides (verify.sh runs the suite with `SHARDS=4`).
fn shard_count() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// DDL shared by the sharded and single-threaded runs: `GROUPS` chronicle
/// groups, one chronicle each, and two views per group (an unguarded SUM
/// and a guarded one, so maintenance exercises both selection paths).
fn sharded_prop_ddl() -> Vec<String> {
    let mut ddl = Vec::new();
    for g in 0..GROUPS {
        ddl.push(format!("CREATE GROUP g{g}"));
        ddl.push(format!(
            "CREATE CHRONICLE c{g} (sn SEQ, acct INT, amount FLOAT) IN GROUP g{g}"
        ));
        ddl.push(format!(
            "CREATE VIEW v{g} AS SELECT acct, SUM(amount) AS total FROM c{g} GROUP BY acct"
        ));
        ddl.push(format!(
            "CREATE VIEW w{g} AS SELECT acct, COUNT(*) AS n FROM c{g} \
             WHERE amount > 5.0 GROUP BY acct"
        ));
    }
    ddl
}

prop_test! {
    /// Theorem 4.1, concurrently: hash-sharding maintenance by chronicle
    /// group and running every shard on its own thread must produce view
    /// states identical to the single-threaded serial engine. Each group's
    /// appends are issued by a dedicated producer thread (per-group order
    /// preserved, cross-group order deliberately scrambled by the
    /// scheduler), so any hidden cross-group coupling in the sharded
    /// engine shows up as a snapshot mismatch.
    fn sharded_maintenance_matches_single_threaded(cases = 8, seed = 0x5A4D;
        ops in vec_of(
            pair(ints(0..GROUPS), pair(ints(0..6i64), floats(0.5..9.5))),
            20..120,
        )
    ) {
        // Per-op chronons: the global op index keeps every group's
        // subsequence strictly monotone, and both runs stamp identically.
        let ops: Vec<(i64, i64, f64, i64)> = ops
            .iter()
            .enumerate()
            .map(|(i, (g, (acct, amount)))| (*g, *acct, *amount, i as i64 + 1))
            .collect();

        // Single-threaded reference: one serial engine, generated order.
        let mut reference = ChronicleDb::new();
        for stmt in sharded_prop_ddl() {
            reference.execute(&stmt).unwrap();
        }
        for (g, acct, amount, at) in &ops {
            reference
                .append(
                    &format!("c{g}"),
                    Chronon(*at),
                    &[vec![Value::Int(*acct), Value::Float(*amount)]],
                )
                .unwrap();
        }

        // Sharded run: same DDL, appends fanned out by one producer
        // thread per group through the sharded pipeline.
        let mut sharded = ShardedDb::new(shard_count()).unwrap();
        for stmt in sharded_prop_ddl() {
            sharded.execute(&stmt).unwrap();
        }
        let pipeline = ShardedPipeline::start(sharded, 8);
        let handle = pipeline.handle();
        std::thread::scope(|scope| {
            for g in 0..GROUPS {
                let handle = handle.clone();
                let ops = &ops;
                scope.spawn(move || {
                    for (og, acct, amount, at) in ops.iter().filter(|(og, ..)| *og == g) {
                        handle
                            .append(
                                &format!("c{og}"),
                                Chronon(*at),
                                vec![vec![Value::Int(*acct), Value::Float(*amount)]],
                            )
                            .unwrap();
                    }
                });
            }
        });
        let sharded = pipeline.shutdown();

        let mut expect = reference.snapshot_views();
        expect.sort();
        prop_assert_eq!(sharded.snapshot_views(), expect);
    }
}
