//! Theorem 4.1 as a deterministic regression test against the public
//! database API: the maintenance work charged for an append of `u` tuples
//! depends only on `u` (and the view set), never on how many tuples the
//! chronicle has already accumulated. Wall time is too noisy to assert
//! this; the database's own work counters ([`chronicle::db::ChronicleDb::stats`])
//! are exact, so the comparison is equality, not a tolerance.

use chronicle::algebra::WorkCounter;
use chronicle::db::ChronicleDb;
use chronicle::prelude::*;

fn build_db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION rates (acct INT, rate FLOAT, PRIMARY KEY (acct))")
        .unwrap();
    for a in 0..8i64 {
        db.execute(&format!("INSERT INTO rates VALUES ({a}, 0.5)"))
            .unwrap();
    }
    // One CA1 view (constant work per tuple) and one CAkey view (index
    // probes, O(log |R|) per tuple) — both classes must be |C|-independent.
    db.execute(
        "CREATE VIEW spend AS SELECT caller, SUM(minutes) AS total \
         FROM calls GROUP BY caller",
    )
    .unwrap();
    db.execute(
        "CREATE VIEW billed AS SELECT caller, SUM(rate) AS r \
         FROM calls JOIN rates ON caller = acct GROUP BY caller",
    )
    .unwrap();
    db
}

/// Append one batch of `u` rows and return exactly the maintenance work it
/// was charged.
fn work_of_append(db: &mut ChronicleDb, u: usize, t: &mut i64) -> WorkCounter {
    let before = db.stats().work;
    *t += 1;
    let rows: Vec<Vec<Value>> = (0..u)
        .map(|i| vec![Value::Int((i % 8) as i64), Value::Float(1.5)])
        .collect();
    db.append("calls", Chronon(*t), &rows).unwrap();
    let after = db.stats().work;
    WorkCounter {
        tuples_out: after.tuples_out - before.tuples_out,
        tuples_in: after.tuples_in - before.tuples_in,
        index_probes: after.index_probes - before.index_probes,
        rel_tuples_scanned: after.rel_tuples_scanned - before.rel_tuples_scanned,
    }
}

/// Sweep u = 1..=64, returning the work counter charged for each batch size.
fn sweep(db: &mut ChronicleDb, t: &mut i64) -> Vec<WorkCounter> {
    (1..=64).map(|u| work_of_append(db, u, t)).collect()
}

#[test]
fn per_append_work_is_independent_of_chronicle_size() {
    let mut db = build_db();
    let mut t = 0i64;

    // Epoch 1: the chronicle is nearly empty.
    let early = sweep(&mut db, &mut t);

    // Grow |C| by two orders of magnitude beyond everything the sweep
    // appended (the group keys recur, so view sizes stay fixed while the
    // chronicle's history grows).
    for _ in 0..2_000 {
        t += 1;
        db.append(
            "calls",
            Chronon(t),
            &[vec![Value::Int(3), Value::Float(0.5)]],
        )
        .unwrap();
    }

    // Epoch 2: same sweep against the much larger chronicle.
    let late = sweep(&mut db, &mut t);

    // Theorem 4.1: identical work, counter by counter, for every u.
    for (u, (e, l)) in early.iter().zip(&late).enumerate() {
        assert_eq!(
            e,
            l,
            "maintenance work for a {}-tuple append changed as |C| grew",
            u + 1
        );
    }

    // And the chronicle really did grow between the epochs.
    assert_eq!(db.stats().appends, 64 + 2_000 + 64);
    assert!(db.stats().tuples_appended > 2_000);
}

#[test]
fn per_append_work_is_linear_in_batch_size() {
    let mut db = build_db();
    let mut t = 0i64;
    let works = sweep(&mut db, &mut t);

    // Batch rows cycle through 8 group keys, so work has a per-distinct-
    // group component that saturates at u = 8; past that point Work(u)
    // must be *exactly* linear: Work(u+1) - Work(u) is one fixed per-tuple
    // cost. Any |C|- or history-dependent term would break the
    // progression.
    let base = works[7].total(); // u = 8
    let slope = works[8].total() - base; // u = 9 minus u = 8
    assert!(slope > 0, "appending more tuples must cost more work");
    for (i, w) in works.iter().enumerate().skip(7) {
        assert_eq!(
            w.total(),
            base + slope * (i as u64 - 7),
            "work for u = {} off the linear progression",
            i + 1
        );
    }
    // Below saturation the curve is still monotone.
    for pair in works[..8].windows(2) {
        assert!(pair[0].total() < pair[1].total());
    }
}
