//! Broad coverage of the declarative surface: every statement kind, every
//! aggregate, qualified names, retention clauses, calendars.

use chronicle::prelude::*;

#[test]
fn every_aggregate_function_via_sql() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute(
        "CREATE VIEW stats AS SELECT k, \
         COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, \
         AVG(v) AS mean, STDDEV(v) AS sd, FIRST(v) AS first, LAST(v) AS last \
         FROM c GROUP BY k",
    )
    .unwrap();
    for (i, v) in [10.0f64, 30.0, 20.0].iter().enumerate() {
        db.execute(&format!("APPEND INTO c AT {i} VALUES (1, {v})"))
            .unwrap();
    }
    let row = db
        .query_view_key("stats", &[Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(row.get(1), &Value::Int(3)); // COUNT(*)
    assert_eq!(row.get(2), &Value::Int(3)); // COUNT(v)
    assert_eq!(row.get(3), &Value::Float(60.0)); // SUM
    assert_eq!(row.get(4), &Value::Float(10.0)); // MIN
    assert_eq!(row.get(5), &Value::Float(30.0)); // MAX
    assert_eq!(row.get(6), &Value::Float(20.0)); // AVG
    let sd = row.get(7).as_float().unwrap();
    assert!((sd - (200.0f64 / 3.0).sqrt()).abs() < 1e-9); // STDDEV
    assert_eq!(row.get(8), &Value::Float(10.0)); // FIRST
    assert_eq!(row.get(9), &Value::Float(20.0)); // LAST
}

#[test]
fn retention_clauses() {
    let mut db = ChronicleDb::new();
    // One group per chronicle so each has an independent clock.
    for name in ["a", "b", "c", "d"] {
        db.execute(&format!("CREATE GROUP g_{name}")).unwrap();
    }
    db.execute("CREATE CHRONICLE a (sn SEQ, x INT) IN GROUP g_a RETAIN ALL")
        .unwrap();
    db.execute("CREATE CHRONICLE b (sn SEQ, x INT) IN GROUP g_b RETAIN LAST 3")
        .unwrap();
    db.execute("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g_c RETAIN NONE")
        .unwrap();
    db.execute("CREATE CHRONICLE d (sn SEQ, x INT) IN GROUP g_d")
        .unwrap(); // default NONE
    for name in ["a", "b", "c", "d"] {
        for i in 0..5 {
            db.execute(&format!("APPEND INTO {name} AT {i} VALUES ({i})"))
                .unwrap();
        }
    }
    let stored = |name: &str| {
        db.catalog()
            .chronicle(db.catalog().chronicle_id(name).unwrap())
            .stored_len()
    };
    assert_eq!(stored("a"), 5);
    assert_eq!(stored("b"), 3);
    assert_eq!(stored("c"), 0);
    assert_eq!(stored("d"), 0);
}

#[test]
fn where_variants() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT, tag STRING)")
        .unwrap();
    db.execute(
        "CREATE VIEW and_v AS SELECT k, COUNT(*) AS n FROM c WHERE v > 1.0 AND v < 5.0 GROUP BY k",
    )
    .unwrap();
    db.execute("CREATE VIEW or_v AS SELECT k, COUNT(*) AS n FROM c WHERE tag = 'a' OR tag = 'b' GROUP BY k").unwrap();
    db.execute("CREATE VIEW ne_v AS SELECT k, COUNT(*) AS n FROM c WHERE tag <> 'x' GROUP BY k")
        .unwrap();
    db.execute("CREATE VIEW col_v AS SELECT k, COUNT(*) AS n FROM c WHERE v > k GROUP BY k")
        .unwrap();
    let rows = [
        (1i64, 0.5f64, "a"),
        (1, 2.0, "b"),
        (1, 3.0, "x"),
        (1, 9.0, "c"),
    ];
    for (i, (k, v, tag)) in rows.iter().enumerate() {
        db.execute(&format!("APPEND INTO c AT {i} VALUES ({k}, {v}, '{tag}')"))
            .unwrap();
    }
    let n = |view: &str| {
        db.query_view_key(view, &[Value::Int(1)])
            .unwrap()
            .and_then(|r| r.get(1).as_int())
            .unwrap_or(0)
    };
    assert_eq!(n("and_v"), 2, "2.0 and 3.0 are in (1, 5)");
    assert_eq!(n("or_v"), 2, "tags a and b");
    assert_eq!(n("ne_v"), 3, "everything but x");
    assert_eq!(n("col_v"), 3, "v > k=1 holds for 2.0, 3.0, 9.0");
}

#[test]
fn qualified_and_aliased_names() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE calls (sn SEQ, acct INT, minutes FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION customers (acct INT, state STRING, PRIMARY KEY (acct))")
        .unwrap();
    db.execute("INSERT INTO customers VALUES (1, 'NJ')")
        .unwrap();
    // Both acct columns exist post-join; qualified names disambiguate.
    db.execute(
        "CREATE VIEW v AS SELECT calls.acct, SUM(calls.minutes) AS m FROM calls \
         JOIN customers ON calls.acct = customers.acct \
         WHERE customers.state = 'NJ' GROUP BY calls.acct",
    )
    .unwrap();
    db.execute("APPEND INTO calls AT 1 VALUES (1, 5.0)")
        .unwrap();
    assert_eq!(
        db.query_view_key("v", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(5.0)
    );
}

#[test]
fn multi_row_appends_share_one_sequence_number() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT) RETAIN ALL")
        .unwrap();
    db.execute("APPEND INTO c VALUES (1), (2), (3)").unwrap();
    let id = db.catalog().chronicle_id("c").unwrap();
    let sns: Vec<SeqNo> = db
        .catalog()
        .chronicle(id)
        .scan_all()
        .unwrap()
        .map(|t| t.seq_at(0).unwrap())
        .collect();
    assert_eq!(sns, vec![SeqNo(1), SeqNo(1), SeqNo(1)]);
    // The group's next append gets SN 2.
    db.execute("APPEND INTO c VALUES (4)").unwrap();
    assert_eq!(db.catalog().chronicle(id).last_seq(), SeqNo(2));
}

#[test]
fn periodic_view_sql_variants() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute(
        "CREATE PERIODIC VIEW weekly AS SELECT k, SUM(v) AS s FROM c GROUP BY k \
         OVER CALENDAR EVERY 7",
    )
    .unwrap();
    db.execute(
        "CREATE PERIODIC VIEW sliding AS SELECT k, SUM(v) AS s FROM c GROUP BY k \
         OVER CALENDAR SLIDING 7 STEP 2 ANCHOR 1 EXPIRE AFTER 14",
    )
    .unwrap();
    db.execute("APPEND INTO c AT 8 VALUES (1, 2.0)").unwrap();
    assert!(db
        .periodic_view("weekly")
        .unwrap()
        .query(1, &[Value::Int(1)])
        .is_some());
    // Sliding windows starting at 1+2i covering chronon 8: i in {1, 2, 3}
    // gives starts 3, 5, 7.
    let s = db.periodic_view("sliding").unwrap();
    assert!(s.query(1, &[Value::Int(1)]).is_some());
    assert!(s.query(3, &[Value::Int(1)]).is_some());
    assert!(s.query(4, &[Value::Int(1)]).is_none());
    // Duplicate periodic name rejected.
    assert!(matches!(
        db.execute(
            "CREATE PERIODIC VIEW weekly AS SELECT k, SUM(v) AS s FROM c GROUP BY k \
             OVER CALENDAR EVERY 7"
        )
        .unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
}

#[test]
fn select_statement_filters() {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION r (k INT, w STRING, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap();
    db.execute("INSERT INTO r VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    for i in 0..4 {
        db.execute(&format!("APPEND INTO c AT {i} VALUES ({}, 1.0)", i % 2))
            .unwrap();
    }
    let mut rows = |sql: &str| match db.execute(sql) {
        Ok(chronicle::db::ExecOutcome::Rows(r)) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(rows("SELECT * FROM s").len(), 2);
    assert_eq!(rows("SELECT * FROM s WHERE k = 0").len(), 1);
    assert_eq!(rows("SELECT * FROM r WHERE w = 'y'").len(), 1);
    assert_eq!(rows("SELECT * FROM r WHERE k = 1 AND w = 'y'").len(), 0);
}

#[test]
fn comments_and_case_insensitive_keywords() {
    let mut db = ChronicleDb::new();
    db.execute("create chronicle C1 (sn seq, K int) -- trailing comment")
        .unwrap();
    db.execute("create view V1 as select K, count(*) as n from C1 group by K")
        .unwrap();
    db.execute("Append Into C1 Values (5)").unwrap();
    assert_eq!(db.query_view("V1").unwrap().len(), 1);
}
