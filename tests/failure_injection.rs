//! Failure injection: every documented error path produces a typed error
//! and leaves the database in a usable, consistent state.

use chronicle::prelude::*;

fn db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION r (k INT, w FLOAT, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap();
    db
}

#[test]
fn non_monotonic_append_rejected_and_state_intact() {
    let mut d = db();
    d.execute("APPEND INTO c VALUES (5, 1, 1.0)").unwrap(); // explicit SN 5
    let err = d.execute("APPEND INTO c VALUES (3, 1, 1.0)").unwrap_err();
    assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    // No partial effects: the view still reflects exactly one append.
    assert_eq!(
        d.query_view_key("s", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(1.0)
    );
    // The database keeps working.
    d.execute("APPEND INTO c VALUES (1, 2.0)").unwrap();
    assert_eq!(
        d.query_view_key("s", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(3.0)
    );
}

#[test]
fn schema_violations_rejected() {
    let mut d = db();
    // Wrong arity.
    assert!(matches!(
        d.execute("APPEND INTO c VALUES (1)").unwrap_err(),
        ChronicleError::ArityMismatch { .. }
    ));
    // Wrong type.
    assert!(d.execute("APPEND INTO c VALUES ('nope', 1.0)").is_err());
    // NULL sequencing attribute (explicit full-arity row).
    assert!(d.execute("APPEND INTO c VALUES (NULL, 1, 1.0)").is_err());
    // Relation key violation.
    d.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
    assert!(matches!(
        d.execute("INSERT INTO r VALUES (1, 2.0)").unwrap_err(),
        ChronicleError::KeyViolation { .. }
    ));
}

#[test]
fn unknown_objects_rejected() {
    let mut d = db();
    assert!(matches!(
        d.execute("APPEND INTO ghost VALUES (1, 1.0)").unwrap_err(),
        ChronicleError::NotFound {
            kind: "chronicle",
            ..
        }
    ));
    assert!(matches!(
        d.execute("SELECT * FROM ghost").unwrap_err(),
        ChronicleError::NotFound { .. }
    ));
    assert!(matches!(
        d.execute("DROP VIEW ghost").unwrap_err(),
        ChronicleError::NotFound { kind: "view", .. }
    ));
    assert!(d.execute("CREATE VIEW v AS SELECT ghost FROM c").is_err());
}

#[test]
fn duplicate_names_rejected() {
    let mut d = db();
    assert!(matches!(
        d.execute("CREATE CHRONICLE c (sn SEQ, x INT)").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
    assert!(matches!(
        d.execute("CREATE RELATION r (x INT)").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
    assert!(matches!(
        d.execute("CREATE VIEW s AS SELECT k FROM c").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
}

#[test]
fn parse_errors_carry_position_and_hint() {
    let mut d = db();
    let err = d
        .execute("CREATE VIEW v AS SELECT k FROM c WHERE")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::Parse { .. }));
    let err = d
        .execute("CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM c WHERE k = 1 AND v > 2 OR k = 3 GROUP BY k")
        .unwrap_err();
    assert!(err.to_string().contains("Def. 4.1"), "{err}");
}

#[test]
fn chronicle_as_relation_and_vice_versa_rejected() {
    let mut d = db();
    // INSERT into a chronicle is not a thing — APPEND is.
    assert!(d.execute("INSERT INTO c VALUES (1, 1.0)").is_err());
    // APPEND into a relation is not a thing.
    assert!(d.execute("APPEND INTO r VALUES (1, 1.0)").is_err());
    // A relation schema cannot carry a SEQ column.
    assert!(d.execute("CREATE RELATION bad (sn SEQ, x INT)").is_err());
    // A chronicle schema must carry exactly one SEQ column.
    assert!(d.execute("CREATE CHRONICLE bad (x INT, y INT)").is_err());
}

#[test]
fn retroactive_updates_rejected_via_temporal_api() {
    let mut d = db();
    d.execute("APPEND INTO c VALUES (1, 1.0)").unwrap();
    let g = d.catalog().group_id("default").unwrap();
    let hw = d.catalog().group(g).high_water();
    let rid = d.catalog().relation_id("r").unwrap();
    let err = d
        .catalog_mut()
        .relation_mut(rid)
        .insert_effective(
            Tuple::new(vec![Value::Int(9), Value::Float(1.0)]),
            SeqNo(1), // effective in the past
            hw,
        )
        .unwrap_err();
    assert!(matches!(err, ChronicleError::RetroactiveUpdate { .. }));
    // The proactive path still works afterwards.
    d.execute("INSERT INTO r VALUES (9, 1.0)").unwrap();
}

#[test]
fn cross_group_operations_rejected() {
    let mut d = ChronicleDb::new();
    d.execute("CREATE GROUP g1").unwrap();
    d.execute("CREATE GROUP g2").unwrap();
    d.execute("CREATE CHRONICLE a (sn SEQ, x INT) IN GROUP g1")
        .unwrap();
    d.execute("CREATE CHRONICLE b (sn SEQ, x INT) IN GROUP g2")
        .unwrap();
    let a = d.catalog().chronicle_id("a").unwrap();
    let b = d.catalog().chronicle_id("b").unwrap();
    let ea = chronicle::algebra::CaExpr::chronicle(d.catalog().chronicle(a));
    let eb = chronicle::algebra::CaExpr::chronicle(d.catalog().chronicle(b));
    assert!(matches!(
        ea.clone().union(eb.clone()).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
    assert!(matches!(
        ea.clone().diff(eb.clone()).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
    assert!(matches!(
        ea.join_seq(eb).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
}

#[test]
fn failed_view_creation_rolls_back() {
    let mut d = ChronicleDb::new();
    d.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap(); // RETAIN NONE
    d.execute("APPEND INTO c VALUES (1, 1.0)").unwrap();
    // Bootstrapping from unretained history fails...
    let err = d
        .execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::ChronicleNotStored { .. }));
    // ...and leaves no half-registered view behind: the name is reusable
    // and appends do not crash on a phantom view.
    assert!(d.query_view("s").is_err());
    d.execute("APPEND INTO c VALUES (2, 1.0)").unwrap();
}

#[test]
fn update_delete_require_key_filter() {
    let mut d = db();
    d.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
    assert!(d.execute("UPDATE r SET w = 2.0 WHERE w = 1.0").is_err());
    assert!(d.execute("DELETE FROM r WHERE w = 1.0").is_err());
    d.execute("UPDATE r SET w = 2.0 WHERE k = 1").unwrap();
    d.execute("DELETE FROM r WHERE k = 1").unwrap();
}

#[test]
fn sql_type_mismatch_in_where_rejected() {
    let mut d = db();
    let err = d
        .execute("CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM c WHERE v = 'text' GROUP BY k")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::TypeMismatch { .. }));
}

#[test]
fn empty_batch_append_is_harmless() {
    let mut d = db();
    let out = d.append("c", Chronon(1), &[]).unwrap();
    assert_eq!(out.seq, SeqNo(1));
    assert!(d.query_view("s").unwrap().is_empty());
}
