//! Failure injection: every documented error path produces a typed error
//! and leaves the database in a usable, consistent state.
//!
//! The second half of the suite injects crashes into the durability layer
//! — torn final records, truncated segments, bit-flipped CRCs, a crash
//! between checkpoint publication and WAL truncation — and checks the
//! recovery invariant: reopening either reproduces exactly a prefix of the
//! acknowledged state, or fails loudly with a typed `Corruption` error.
//! It never silently recovers wrong state.
//!
//! The final modules sweep *bit rot* — a single flipped byte at EVERY
//! offset of a sealed WAL segment and of the newest checkpoint image, in
//! both topologies — and pin the salvage contract: under
//! [`RecoveryPolicy::Strict`] every flip is refused loudly, while under
//! [`RecoveryPolicy::Salvage`] the open recovers the maximal acknowledged
//! prefix, quarantines (never deletes) every untrusted file, and reports
//! the dropped LSN range exactly.

use chronicle::prelude::*;

fn db() -> ChronicleDb {
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap();
    db.execute("CREATE RELATION r (k INT, w FLOAT, PRIMARY KEY (k))")
        .unwrap();
    db.execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap();
    db
}

#[test]
fn non_monotonic_append_rejected_and_state_intact() {
    let mut d = db();
    d.execute("APPEND INTO c VALUES (5, 1, 1.0)").unwrap(); // explicit SN 5
    let err = d.execute("APPEND INTO c VALUES (3, 1, 1.0)").unwrap_err();
    assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    // No partial effects: the view still reflects exactly one append.
    assert_eq!(
        d.query_view_key("s", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(1.0)
    );
    // The database keeps working.
    d.execute("APPEND INTO c VALUES (1, 2.0)").unwrap();
    assert_eq!(
        d.query_view_key("s", &[Value::Int(1)])
            .unwrap()
            .unwrap()
            .get(1),
        &Value::Float(3.0)
    );
}

#[test]
fn schema_violations_rejected() {
    let mut d = db();
    // Wrong arity.
    assert!(matches!(
        d.execute("APPEND INTO c VALUES (1)").unwrap_err(),
        ChronicleError::ArityMismatch { .. }
    ));
    // Wrong type.
    assert!(d.execute("APPEND INTO c VALUES ('nope', 1.0)").is_err());
    // NULL sequencing attribute (explicit full-arity row).
    assert!(d.execute("APPEND INTO c VALUES (NULL, 1, 1.0)").is_err());
    // Relation key violation.
    d.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
    assert!(matches!(
        d.execute("INSERT INTO r VALUES (1, 2.0)").unwrap_err(),
        ChronicleError::KeyViolation { .. }
    ));
}

#[test]
fn unknown_objects_rejected() {
    let mut d = db();
    assert!(matches!(
        d.execute("APPEND INTO ghost VALUES (1, 1.0)").unwrap_err(),
        ChronicleError::NotFound {
            kind: "chronicle",
            ..
        }
    ));
    assert!(matches!(
        d.execute("SELECT * FROM ghost").unwrap_err(),
        ChronicleError::NotFound { .. }
    ));
    assert!(matches!(
        d.execute("DROP VIEW ghost").unwrap_err(),
        ChronicleError::NotFound { kind: "view", .. }
    ));
    assert!(d.execute("CREATE VIEW v AS SELECT ghost FROM c").is_err());
}

#[test]
fn duplicate_names_rejected() {
    let mut d = db();
    assert!(matches!(
        d.execute("CREATE CHRONICLE c (sn SEQ, x INT)").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
    assert!(matches!(
        d.execute("CREATE RELATION r (x INT)").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
    assert!(matches!(
        d.execute("CREATE VIEW s AS SELECT k FROM c").unwrap_err(),
        ChronicleError::AlreadyExists { .. }
    ));
}

#[test]
fn parse_errors_carry_position_and_hint() {
    let mut d = db();
    let err = d
        .execute("CREATE VIEW v AS SELECT k FROM c WHERE")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::Parse { .. }));
    let err = d
        .execute("CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM c WHERE k = 1 AND v > 2 OR k = 3 GROUP BY k")
        .unwrap_err();
    assert!(err.to_string().contains("Def. 4.1"), "{err}");
}

#[test]
fn chronicle_as_relation_and_vice_versa_rejected() {
    let mut d = db();
    // INSERT into a chronicle is not a thing — APPEND is.
    assert!(d.execute("INSERT INTO c VALUES (1, 1.0)").is_err());
    // APPEND into a relation is not a thing.
    assert!(d.execute("APPEND INTO r VALUES (1, 1.0)").is_err());
    // A relation schema cannot carry a SEQ column.
    assert!(d.execute("CREATE RELATION bad (sn SEQ, x INT)").is_err());
    // A chronicle schema must carry exactly one SEQ column.
    assert!(d.execute("CREATE CHRONICLE bad (x INT, y INT)").is_err());
}

#[test]
fn retroactive_updates_rejected_via_temporal_api() {
    let mut d = db();
    d.execute("APPEND INTO c VALUES (1, 1.0)").unwrap();
    let g = d.catalog().group_id("default").unwrap();
    let hw = d.catalog().group(g).high_water();
    let rid = d.catalog().relation_id("r").unwrap();
    let err = d
        .catalog_mut()
        .relation_mut(rid)
        .insert_effective(
            Tuple::new(vec![Value::Int(9), Value::Float(1.0)]),
            SeqNo(1), // effective in the past
            hw,
        )
        .unwrap_err();
    assert!(matches!(err, ChronicleError::RetroactiveUpdate { .. }));
    // The proactive path still works afterwards.
    d.execute("INSERT INTO r VALUES (9, 1.0)").unwrap();
}

#[test]
fn cross_group_operations_rejected() {
    let mut d = ChronicleDb::new();
    d.execute("CREATE GROUP g1").unwrap();
    d.execute("CREATE GROUP g2").unwrap();
    d.execute("CREATE CHRONICLE a (sn SEQ, x INT) IN GROUP g1")
        .unwrap();
    d.execute("CREATE CHRONICLE b (sn SEQ, x INT) IN GROUP g2")
        .unwrap();
    let a = d.catalog().chronicle_id("a").unwrap();
    let b = d.catalog().chronicle_id("b").unwrap();
    let ea = chronicle::algebra::CaExpr::chronicle(d.catalog().chronicle(a));
    let eb = chronicle::algebra::CaExpr::chronicle(d.catalog().chronicle(b));
    assert!(matches!(
        ea.clone().union(eb.clone()).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
    assert!(matches!(
        ea.clone().diff(eb.clone()).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
    assert!(matches!(
        ea.join_seq(eb).unwrap_err(),
        ChronicleError::CrossGroupOperation { .. }
    ));
}

#[test]
fn failed_view_creation_rolls_back() {
    let mut d = ChronicleDb::new();
    d.execute("CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)")
        .unwrap(); // RETAIN NONE
    d.execute("APPEND INTO c VALUES (1, 1.0)").unwrap();
    // Bootstrapping from unretained history fails...
    let err = d
        .execute("CREATE VIEW s AS SELECT k, SUM(v) AS t FROM c GROUP BY k")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::ChronicleNotStored { .. }));
    // ...and leaves no half-registered view behind: the name is reusable
    // and appends do not crash on a phantom view.
    assert!(d.query_view("s").is_err());
    d.execute("APPEND INTO c VALUES (2, 1.0)").unwrap();
}

#[test]
fn update_delete_require_key_filter() {
    let mut d = db();
    d.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
    assert!(d.execute("UPDATE r SET w = 2.0 WHERE w = 1.0").is_err());
    assert!(d.execute("DELETE FROM r WHERE w = 1.0").is_err());
    d.execute("UPDATE r SET w = 2.0 WHERE k = 1").unwrap();
    d.execute("DELETE FROM r WHERE k = 1").unwrap();
}

#[test]
fn sql_type_mismatch_in_where_rejected() {
    let mut d = db();
    let err = d
        .execute("CREATE VIEW v AS SELECT k, COUNT(*) AS n FROM c WHERE v = 'text' GROUP BY k")
        .unwrap_err();
    assert!(matches!(err, ChronicleError::TypeMismatch { .. }));
}

#[test]
fn empty_batch_append_is_harmless() {
    let mut d = db();
    let out = d.append("c", Chronon(1), &[]).unwrap();
    assert_eq!(out.seq, SeqNo(1));
    assert!(d.query_view("s").unwrap().is_empty());
}

// ---- WAL crash-point injection --------------------------------------------

mod wal_crash_points {
    use super::*;
    use chronicle::simkit::{SimFs, Vfs};
    use chronicle_testkit::TempDir;
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    const DDL: &[&str] = &[
        "CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)",
        "CREATE VIEW s AS SELECT k, SUM(v) AS t, COUNT(*) AS n FROM c GROUP BY k",
    ];

    /// Open a durable db, run the DDL, and checkpoint so the WAL from here
    /// on contains only append records — the crash-point sweeps below then
    /// map 1:1 onto acknowledged appends.
    fn durable_db(path: &Path) -> ChronicleDb {
        let mut d = ChronicleDb::open(path).unwrap();
        for stmt in DDL {
            d.execute(stmt).unwrap();
        }
        d.checkpoint().unwrap();
        d
    }

    /// Per-acknowledged-append oracle: `snaps[i]` is the byte-exact view
    /// state after `i` appends.
    fn oracle_snapshots(n: usize) -> Vec<Vec<(String, Vec<u8>)>> {
        let mut oracle = ChronicleDb::new();
        for stmt in DDL {
            oracle.execute(stmt).unwrap();
        }
        let mut snaps = vec![oracle.snapshot_views()];
        for i in 0..n {
            append_nth(&mut oracle, i);
            snaps.push(oracle.snapshot_views());
        }
        snaps
    }

    fn append_nth(d: &mut ChronicleDb, i: usize) {
        d.append(
            "c",
            Chronon(i as i64),
            &[vec![Value::Int((i % 3) as i64), Value::Float(i as f64)]],
        )
        .unwrap();
    }

    /// WAL segment files at `db_dir`, sorted by name (= by first LSN).
    fn segments(db_dir: &Path) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = fs::read_dir(db_dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        v.sort();
        v
    }

    fn copy_dir(src: &Path, dst: &Path) {
        fs::create_dir_all(dst).unwrap();
        for e in fs::read_dir(src).unwrap() {
            let e = e.unwrap();
            let to = dst.join(e.file_name());
            if e.metadata().unwrap().is_dir() {
                copy_dir(&e.path(), &to);
            } else {
                fs::copy(e.path(), to).unwrap();
            }
        }
    }

    /// Crash-point sweep over the torn tail: cut the final WAL segment at
    /// EVERY byte length and reopen. Each cut must recover exactly the
    /// acknowledged prefix that survived intact — byte-identical views —
    /// with the torn suffix discarded, never an error, never extra state.
    ///
    /// Runs over [`SimFs`]: the whole O(file²) sweep is in-memory work
    /// with no tempdir churn, so every byte stays covered on every
    /// `cargo test`. `torn_final_record_real_disk_smoke` keeps the same
    /// fault family exercised through the real `std::fs` path.
    #[test]
    fn torn_final_record_recovers_exact_acknowledged_prefix() {
        const APPENDS: usize = 12;
        let sim = SimFs::new(0x70c4);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/torn");
        {
            let mut d =
                ChronicleDb::open_with_vfs(Arc::clone(&vfs), root, DurabilityOptions::default())
                    .unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            d.checkpoint().unwrap(); // WAL tail now holds only appends
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
        }
        let snaps = oracle_snapshots(APPENDS);
        let segs: Vec<PathBuf> = sim
            .live_files()
            .into_iter()
            .filter(|p| {
                p.starts_with(root.join("wal")) && p.extension().is_some_and(|x| x == "seg")
            })
            .collect();
        assert_eq!(segs.len(), 1, "workload fits one segment");
        let full = sim.peek(&segs[0]).unwrap();

        for cut in 0..=full.len() {
            // An independent copy of the disk with the segment cut at
            // `cut` bytes — exactly what a torn write leaves behind.
            let torn = sim.fork();
            torn.install(&segs[0], &full[..cut]);
            let d = ChronicleDb::open_with_vfs(Arc::new(torn), root, DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));
            let recovered = d.stats().appends as usize;
            assert!(recovered <= APPENDS);
            assert_eq!(
                d.snapshot_views(),
                snaps[recovered],
                "cut at byte {cut}: recovered state is not the acknowledged prefix"
            );
        }
    }

    /// Real-disk smoke case for the torn-tail family: a few representative
    /// cut points (bare header, mid-record, one byte short of intact)
    /// through actual `std::fs` I/O. The exhaustive per-byte sweep runs on
    /// `SimFs` above.
    #[test]
    fn torn_final_record_real_disk_smoke() {
        const APPENDS: usize = 6;
        let tmp = TempDir::new("chronicle-torn");
        {
            let mut d = durable_db(tmp.path());
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
        }
        let snaps = oracle_snapshots(APPENDS);
        let segs = segments(tmp.path());
        assert_eq!(segs.len(), 1, "workload fits one segment");
        let full = fs::read(&segs[0]).unwrap();

        for cut in [16, full.len() / 2, full.len() - 1] {
            let scratch = TempDir::new("chronicle-torn-cut");
            copy_dir(tmp.path(), scratch.path());
            let seg = segments(scratch.path()).pop().unwrap();
            fs::write(&seg, &full[..cut]).unwrap();

            let d = ChronicleDb::open(scratch.path())
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));
            let recovered = d.stats().appends as usize;
            assert!(recovered <= APPENDS);
            assert_eq!(
                d.snapshot_views(),
                snaps[recovered],
                "cut at byte {cut}: recovered state is not the acknowledged prefix"
            );
        }
    }

    /// A truncated (torn) frame anywhere but the final segment is not a
    /// crash artifact — appends after it were acknowledged from later
    /// segments. Recovery must refuse loudly.
    #[test]
    fn truncated_non_final_segment_fails_loudly() {
        let tmp = TempDir::new("chronicle-truncseg");
        let opts = DurabilityOptions {
            segment_bytes: 256, // force several segments
            ..Default::default()
        };
        {
            let mut d = ChronicleDb::open_with(tmp.path(), opts).unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            for i in 0..40 {
                append_nth(&mut d, i);
            }
        }
        let segs = segments(tmp.path());
        assert!(segs.len() >= 3, "need several segments, got {}", segs.len());
        let victim = &segs[1];
        let len = fs::metadata(victim).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(victim)
            .unwrap()
            .set_len(len - 7)
            .unwrap();
        assert!(matches!(
            ChronicleDb::open_with(tmp.path(), opts).unwrap_err(),
            ChronicleError::Corruption { .. }
        ));
    }

    /// A CRC-detected bit flip in the final segment is indistinguishable
    /// from a torn multi-block write, so recovery truncates to the intact
    /// prefix — always a state that existed, never garbage. The same flip
    /// in a non-final segment cannot be a crash artifact and fails loudly.
    #[test]
    fn bitflip_final_segment_truncates_to_prefix() {
        const APPENDS: usize = 10;
        let tmp = TempDir::new("chronicle-bitflip");
        {
            let mut d = durable_db(tmp.path());
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
        }
        let snaps = oracle_snapshots(APPENDS);
        let seg = segments(tmp.path()).pop().unwrap();
        let full = fs::read(&seg).unwrap();

        // Flip a byte near the end (inside the last record's body) and one
        // a third of the way in (records follow it): each must yield
        // exactly the acknowledged prefix preceding the damage.
        for (label, at) in [("tail", full.len() - 3), ("mid", full.len() / 3)] {
            let scratch = TempDir::new("chronicle-bitflip-case");
            copy_dir(tmp.path(), scratch.path());
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;
            fs::write(segments(scratch.path()).pop().unwrap(), &bytes).unwrap();
            let d = ChronicleDb::open(scratch.path()).unwrap();
            let recovered = d.stats().appends as usize;
            assert!(recovered < APPENDS, "{label}: the flipped record must go");
            assert_eq!(
                d.snapshot_views(),
                snaps[recovered],
                "{label}: recovered state is not an acknowledged prefix"
            );
        }
    }

    /// The same CRC flip in a non-final segment: acknowledged records
    /// follow it in later segments, so prefix-truncation would lose them.
    /// Recovery must refuse loudly.
    #[test]
    fn bitflip_non_final_segment_fails_loudly() {
        let tmp = TempDir::new("chronicle-bitflip-seg");
        let opts = DurabilityOptions {
            segment_bytes: 256,
            ..Default::default()
        };
        {
            let mut d = ChronicleDb::open_with(tmp.path(), opts).unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            for i in 0..40 {
                append_nth(&mut d, i);
            }
        }
        let segs = segments(tmp.path());
        assert!(segs.len() >= 3, "need several segments, got {}", segs.len());
        let victim = &segs[1];
        let mut bytes = fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(victim, bytes).unwrap();
        assert!(matches!(
            ChronicleDb::open_with(tmp.path(), opts).unwrap_err(),
            ChronicleError::Corruption { .. }
        ));
    }

    /// Crash between checkpoint publication and WAL truncation: the old
    /// segments (all ≤ checkpoint LSN) are still on disk at reopen. Their
    /// records must be validated but skipped, not replayed twice.
    #[test]
    fn crash_between_checkpoint_and_truncation_is_harmless() {
        const APPENDS: usize = 20;
        let tmp = TempDir::new("chronicle-ckptcrash");
        let stale = TempDir::new("chronicle-ckptcrash-stale");
        {
            let mut d = durable_db(tmp.path());
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
            // Save the pre-checkpoint WAL, checkpoint (which truncates it),
            // then put the stale segments back: exactly the on-disk state
            // of a crash after publish, before truncation.
            copy_dir(&tmp.path().join("wal"), stale.path());
            d.checkpoint().unwrap();
        }
        for e in fs::read_dir(stale.path()).unwrap() {
            let e = e.unwrap();
            let dst = tmp.path().join("wal").join(e.file_name());
            if !dst.exists() {
                fs::copy(e.path(), dst).unwrap();
            }
        }
        let snaps = oracle_snapshots(APPENDS);
        let d = ChronicleDb::open(tmp.path()).unwrap();
        assert_eq!(d.stats().recovery_replayed_records, 0);
        assert_eq!(d.snapshot_views(), snaps[APPENDS]);
    }

    /// A leftover `.tmp` from a checkpoint that crashed mid-write must be
    /// ignored, whatever it contains.
    #[test]
    fn leftover_tmp_checkpoint_ignored() {
        const APPENDS: usize = 5;
        let tmp = TempDir::new("chronicle-tmpckpt");
        {
            let mut d = durable_db(tmp.path());
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
        }
        fs::write(
            tmp.path().join("ckpt-99999999999999999999.tmp"),
            b"half-written garbage",
        )
        .unwrap();
        let snaps = oracle_snapshots(APPENDS);
        let d = ChronicleDb::open(tmp.path()).unwrap();
        assert_eq!(d.snapshot_views(), snaps[APPENDS]);
    }

    /// If the only valid checkpoint is destroyed after the WAL it covered
    /// was truncated, the log has a real gap. Recovery must fail loudly —
    /// quietly starting from a partial tail would fabricate state.
    #[test]
    fn destroyed_checkpoint_with_truncated_wal_fails_loudly() {
        let tmp = TempDir::new("chronicle-badckpt");
        {
            let mut d = durable_db(tmp.path());
            for i in 0..20 {
                append_nth(&mut d, i);
            }
            d.checkpoint().unwrap();
            append_nth(&mut d, 20); // a tail exists beyond the checkpoint
        }
        // Corrupt every checkpoint file in place.
        for e in fs::read_dir(tmp.path()).unwrap() {
            let e = e.unwrap();
            if e.path().extension().is_some_and(|x| x == "ckpt") {
                let mut bytes = fs::read(e.path()).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
                fs::write(e.path(), bytes).unwrap();
            }
        }
        assert!(matches!(
            ChronicleDb::open(tmp.path()).unwrap_err(),
            ChronicleError::Corruption { .. }
        ));
    }
}

// ---- Sharded WAL crash-point injection ------------------------------------

mod sharded_crash_points {
    use super::*;
    use chronicle::db::{shard_of_group, ShardedDb};
    use chronicle::simkit::{SimFs, Vfs};
    use chronicle_testkit::TempDir;
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    const SHARDS: usize = 3;
    const GROUPS: usize = 6;
    const APPENDS: usize = 12;

    fn ddl_for_group(g: usize) -> [String; 3] {
        [
            format!("CREATE GROUP g{g}"),
            format!("CREATE CHRONICLE c{g} (sn SEQ, k INT, v FLOAT) IN GROUP g{g}"),
            format!("CREATE VIEW v{g} AS SELECT k, SUM(v) AS t FROM c{g} GROUP BY k"),
        ]
    }

    fn ddl() -> Vec<String> {
        (0..GROUPS).flat_map(ddl_for_group).collect()
    }

    /// The global append history: round-robin over the groups, chronon =
    /// global index (monotone within every group).
    fn history() -> Vec<(usize, i64, i64, f64)> {
        (0..APPENDS)
            .map(|i| (i % GROUPS, i as i64 + 1, (i % 3) as i64, i as f64))
            .collect()
    }

    fn groups_of(shard: usize) -> Vec<usize> {
        (0..GROUPS)
            .filter(|g| shard_of_group(&format!("g{g}"), SHARDS) == shard)
            .collect()
    }

    /// Per-shard oracle: `snaps[k]` is the (sorted) view state of `shard`
    /// after the first `k` appends destined to it, replayed through a
    /// plain in-memory engine holding only that shard's groups.
    fn shard_oracle(shard: usize) -> Vec<Vec<(String, Vec<u8>)>> {
        let groups = groups_of(shard);
        let mut db = ChronicleDb::new();
        for stmt in groups.iter().flat_map(|g| ddl_for_group(*g)) {
            db.execute(&stmt).unwrap();
        }
        let sorted = |db: &ChronicleDb| {
            let mut s = db.snapshot_views();
            s.sort();
            s
        };
        let mut snaps = vec![sorted(&db)];
        for (g, at, k, v) in history() {
            if !groups.contains(&g) {
                continue;
            }
            db.append(
                &format!("c{g}"),
                Chronon(at),
                &[vec![Value::Int(k), Value::Float(v)]],
            )
            .unwrap();
            snaps.push(sorted(&db));
        }
        snaps
    }

    fn segments(shard_dir: &Path) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = fs::read_dir(shard_dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        v.sort();
        v
    }

    fn copy_dir(src: &Path, dst: &Path) {
        fs::create_dir_all(dst).unwrap();
        for e in fs::read_dir(src).unwrap() {
            let e = e.unwrap();
            let to = dst.join(e.file_name());
            if e.metadata().unwrap().is_dir() {
                copy_dir(&e.path(), &to);
            } else {
                fs::copy(e.path(), to).unwrap();
            }
        }
    }

    /// Torn-write sweep, per shard: cut the victim shard's final WAL
    /// segment at every byte and reopen the whole sharded database. The
    /// victim must recover exactly the acknowledged prefix of the appends
    /// destined to it; every other shard must recover its full state —
    /// shard failure domains are independent.
    ///
    /// Runs over [`SimFs`] (every victim × every byte, in memory);
    /// `torn_shard_tail_real_disk_smoke` keeps the family covered through
    /// real `std::fs` I/O.
    #[test]
    fn torn_shard_tail_recovers_prefix_and_leaves_peers_intact() {
        let sim = SimFs::new(0x54a2d);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/sharded-torn");
        {
            let mut d =
                ShardedDb::open_with_vfs(Arc::clone(&vfs), root, SHARDS, Default::default())
                    .unwrap();
            for stmt in ddl() {
                d.execute(&stmt).unwrap();
            }
            d.checkpoint().unwrap(); // WAL tails now hold only appends
            for (g, at, k, v) in history() {
                d.append(
                    &format!("c{g}"),
                    Chronon(at),
                    &[vec![Value::Int(k), Value::Float(v)]],
                )
                .unwrap();
            }
        }
        let oracles: Vec<_> = (0..SHARDS).map(shard_oracle).collect();
        for (s, oracle) in oracles.iter().enumerate() {
            assert!(
                oracle.len() > 1,
                "shard {s} owns no appends; grow GROUPS so every shard is exercised"
            );
        }

        for victim in 0..SHARDS {
            let wal_dir = root.join(format!("shard-{victim:03}")).join("wal");
            let segs: Vec<PathBuf> = sim
                .live_files()
                .into_iter()
                .filter(|p| p.starts_with(&wal_dir) && p.extension().is_some_and(|x| x == "seg"))
                .collect();
            assert_eq!(segs.len(), 1, "shard {victim}: workload fits one segment");
            let full = sim.peek(&segs[0]).unwrap();

            for cut in 0..=full.len() {
                let torn = sim.fork();
                torn.install(&segs[0], &full[..cut]);
                let d = ShardedDb::open_with_vfs(Arc::new(torn), root, SHARDS, Default::default())
                    .unwrap_or_else(|e| {
                        panic!("shard {victim} cut at byte {cut} must recover, got: {e}")
                    });
                for (s, oracle) in oracles.iter().enumerate() {
                    let mut got = d.shard(s).snapshot_views();
                    got.sort();
                    if s == victim {
                        let recovered = d.shard(s).stats().appends as usize;
                        assert!(recovered < oracle.len());
                        assert_eq!(
                            got, oracle[recovered],
                            "shard {victim} cut at byte {cut}: not the acknowledged prefix"
                        );
                    } else {
                        assert_eq!(
                            got,
                            *oracle.last().unwrap(),
                            "shard {s} must be untouched by shard {victim}'s torn tail (cut {cut})"
                        );
                    }
                }
            }
        }
    }

    /// Real-disk smoke case for the sharded torn-tail family: one victim
    /// shard, three representative cut points, actual `std::fs` I/O.
    #[test]
    fn torn_shard_tail_real_disk_smoke() {
        let tmp = TempDir::new("chronicle-sharded-torn");
        {
            let mut d = ShardedDb::open(tmp.path(), SHARDS).unwrap();
            for stmt in ddl() {
                d.execute(&stmt).unwrap();
            }
            d.checkpoint().unwrap();
            for (g, at, k, v) in history() {
                d.append(
                    &format!("c{g}"),
                    Chronon(at),
                    &[vec![Value::Int(k), Value::Float(v)]],
                )
                .unwrap();
            }
        }
        let oracles: Vec<_> = (0..SHARDS).map(shard_oracle).collect();
        let victim = 0;
        let shard_dir = tmp.path().join(format!("shard-{victim:03}"));
        let segs = segments(&shard_dir);
        assert_eq!(segs.len(), 1, "shard {victim}: workload fits one segment");
        let full = fs::read(&segs[0]).unwrap();

        for cut in [16, full.len() / 2, full.len() - 1] {
            let scratch = TempDir::new("chronicle-sharded-torn-cut");
            copy_dir(tmp.path(), scratch.path());
            let seg = segments(&scratch.path().join(format!("shard-{victim:03}")))
                .pop()
                .unwrap();
            fs::write(&seg, &full[..cut]).unwrap();

            let d = ShardedDb::open(scratch.path(), SHARDS)
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));
            for (s, oracle) in oracles.iter().enumerate() {
                let mut got = d.shard(s).snapshot_views();
                got.sort();
                if s == victim {
                    let recovered = d.shard(s).stats().appends as usize;
                    assert!(recovered < oracle.len());
                    assert_eq!(got, oracle[recovered], "cut at byte {cut}");
                } else {
                    assert_eq!(got, *oracle.last().unwrap(), "peer shard {s} (cut {cut})");
                }
            }
        }
    }
}

// ---- Bit-rot sweeps: Strict refuses, Salvage recovers the maximal prefix ---

mod bit_rot_salvage {
    use super::*;
    use chronicle::simkit::{SimFs, Vfs};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    const DDL: &[&str] = &[
        "CREATE CHRONICLE c (sn SEQ, k INT, v FLOAT)",
        "CREATE VIEW s AS SELECT k, SUM(v) AS t, COUNT(*) AS n FROM c GROUP BY k",
    ];

    fn append_nth(d: &mut ChronicleDb, i: usize) {
        d.append(
            "c",
            Chronon(i as i64),
            &[vec![Value::Int((i % 3) as i64), Value::Float(i as f64)]],
        )
        .unwrap();
    }

    /// `snaps[i]` = byte-exact view state after `i` acknowledged appends.
    fn oracle_snapshots(n: usize) -> Vec<Vec<(String, Vec<u8>)>> {
        let mut oracle = ChronicleDb::new();
        for stmt in DDL {
            oracle.execute(stmt).unwrap();
        }
        let mut snaps = vec![oracle.snapshot_views()];
        for i in 0..n {
            append_nth(&mut oracle, i);
            snaps.push(oracle.snapshot_views());
        }
        snaps
    }

    /// Files under `dir` with extension `ext`, sorted by name.
    fn files_with_ext(sim: &SimFs, dir: &Path, ext: &str) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = sim
            .live_files()
            .into_iter()
            .filter(|p| p.starts_with(dir) && p.extension().is_some_and(|x| x == ext))
            .collect();
        v.sort();
        v
    }

    fn salvage_opts(base: DurabilityOptions) -> DurabilityOptions {
        DurabilityOptions {
            recovery: RecoveryPolicy::Salvage,
            ..base
        }
    }

    /// The salvage report of a single-topology open, which must exist and
    /// name only quarantined files that are really present on `fs`.
    fn report_of(d: &ChronicleDb, fs: &SimFs) -> SalvageReport {
        let sr = d.stats().salvage.clone().expect("salvage open reports");
        for path in sr
            .checkpoints_quarantined
            .iter()
            .chain(sr.segments_quarantined.iter().map(|q| &q.path))
        {
            assert!(
                fs.peek(path).is_some(),
                "report names quarantined file {} but nothing is there",
                path.display()
            );
        }
        sr
    }

    /// Sweep: flip one byte at EVERY offset of a sealed, non-final WAL
    /// segment. Acknowledged records live both inside the victim and in
    /// later segments, so no flip can be explained as a crash artifact.
    /// Strict must refuse every one; Salvage must land on exactly the
    /// acknowledged prefix preceding the damage, quarantine the victim and
    /// everything after it, and confess the dropped LSN range precisely.
    /// A second open of the salvaged disk must then be clean.
    #[test]
    fn rotted_sealed_segment_swept_per_byte() {
        const APPENDS: usize = 40;
        let sim = SimFs::new(0xb17_5e6);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/rot-seg");
        let opts = DurabilityOptions {
            segment_bytes: 256, // force several segments
            ..Default::default()
        };
        let floor = {
            let mut d = ChronicleDb::open_with_vfs(Arc::clone(&vfs), root, opts).unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            let floor = d.checkpoint().unwrap(); // WAL now holds only appends
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
            floor
        };
        let last_lsn = floor + APPENDS as u64;
        let snaps = oracle_snapshots(APPENDS);
        let segs = files_with_ext(&sim, &root.join("wal"), "seg");
        assert!(segs.len() >= 3, "need several segments, got {}", segs.len());
        let victim = &segs[1];
        let full = sim.peek(victim).unwrap();

        for at in 0..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;

            // Strict: acknowledged records follow the damage, so the open
            // must refuse loudly whichever byte rotted.
            let rotten = sim.fork();
            rotten.install(victim, &bytes);
            let err = ChronicleDb::open_with_vfs(Arc::new(rotten), root, opts).unwrap_err();
            assert!(
                matches!(err, ChronicleError::Corruption { .. }),
                "byte {at}: strict open must refuse, got: {err}"
            );

            // Salvage: maximal acknowledged prefix, exact loss accounting.
            let rotten = sim.fork();
            rotten.install(victim, &bytes);
            let d = ChronicleDb::open_with_vfs(Arc::new(rotten.clone()), root, salvage_opts(opts))
                .unwrap_or_else(|e| panic!("byte {at}: salvage open must recover, got: {e}"));
            let recovered = d.stats().appends as usize;
            assert!(recovered < APPENDS, "byte {at}: the rotted record must go");
            assert_eq!(
                d.snapshot_views(),
                snaps[recovered],
                "byte {at}: salvaged state is not the acknowledged prefix"
            );
            let sr = report_of(&d, &rotten);
            assert_eq!(
                sr.replayed_through,
                floor + recovered as u64,
                "byte {at}: report and replayed state disagree"
            );
            assert!(
                !sr.segments_quarantined.is_empty(),
                "byte {at}: the untrusted tail must be quarantined, not deleted"
            );
            let lost = sr
                .lost
                .unwrap_or_else(|| panic!("byte {at}: records were dropped but none confessed"));
            assert_eq!(lost.first, sr.replayed_through + 1, "byte {at}");
            assert_eq!(
                lost.last, last_lsn,
                "byte {at}: loss must extend through the newest record on disk"
            );

            // The salvaged disk is repaired: a second open — back under
            // Strict — succeeds with the same state and nothing to report.
            drop(d);
            let d = ChronicleDb::open_with_vfs(Arc::new(rotten), root, opts)
                .unwrap_or_else(|e| panic!("byte {at}: reopen after salvage failed: {e}"));
            assert_eq!(d.snapshot_views(), snaps[recovered], "byte {at}: reopen");
        }
    }

    /// Sweep: flip one byte at EVERY offset of the NEWEST checkpoint
    /// image while an older image is still retained. Checkpointing
    /// truncated the WAL through the newest image, so its records exist
    /// nowhere else: Strict must refuse (falling back to the older image
    /// exposes a WAL gap), and Salvage must quarantine the rotted image,
    /// rebuild from the older one, and confess every LSN between the two
    /// images and the tail as lost.
    #[test]
    fn rotted_newest_checkpoint_swept_per_byte() {
        let sim = SimFs::new(0xb17_c49);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/rot-ckpt");
        let opts = DurabilityOptions::default();
        let (first_ckpt, second_ckpt) = {
            let mut d = ChronicleDb::open_with_vfs(Arc::clone(&vfs), root, opts).unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            for i in 0..4 {
                append_nth(&mut d, i);
            }
            let first = d.checkpoint().unwrap();
            for i in 4..10 {
                append_nth(&mut d, i);
            }
            let second = d.checkpoint().unwrap(); // prunes the WAL through here
            for i in 10..12 {
                append_nth(&mut d, i); // a tail beyond the newest image
            }
            (first, second)
        };
        let last_lsn = second_ckpt + 2;
        let snaps = oracle_snapshots(12);
        let ckpts = files_with_ext(&sim, root, "ckpt");
        assert_eq!(ckpts.len(), 2, "both retained images are on disk");
        let newest = ckpts.last().unwrap();
        let full = sim.peek(newest).unwrap();

        for at in 0..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;

            let rotten = sim.fork();
            rotten.install(newest, &bytes);
            let err = ChronicleDb::open_with_vfs(Arc::new(rotten), root, opts).unwrap_err();
            assert!(
                matches!(err, ChronicleError::Corruption { .. }),
                "byte {at}: strict open must refuse the WAL gap, got: {err}"
            );

            let rotten = sim.fork();
            rotten.install(newest, &bytes);
            let d = ChronicleDb::open_with_vfs(Arc::new(rotten.clone()), root, salvage_opts(opts))
                .unwrap_or_else(|e| panic!("byte {at}: salvage open must recover, got: {e}"));
            // All that is trustworthy is the older image: 4 appends.
            assert_eq!(
                d.snapshot_views(),
                snaps[4],
                "byte {at}: salvaged state is not the older checkpoint's state"
            );
            let sr = report_of(&d, &rotten);
            assert_eq!(sr.replayed_through, first_ckpt, "byte {at}");
            assert_eq!(
                sr.checkpoints_quarantined.len(),
                1,
                "byte {at}: the rotted image must be quarantined, not deleted"
            );
            let lost = sr
                .lost
                .unwrap_or_else(|| panic!("byte {at}: records were dropped but none confessed"));
            assert_eq!(lost.first, first_ckpt + 1, "byte {at}");
            assert_eq!(
                lost.last, last_lsn,
                "byte {at}: loss must cover the pruned range and the tail"
            );

            drop(d);
            let d = ChronicleDb::open_with_vfs(Arc::new(rotten), root, opts)
                .unwrap_or_else(|e| panic!("byte {at}: reopen after salvage failed: {e}"));
            assert_eq!(d.snapshot_views(), snaps[4], "byte {at}: reopen");
        }
    }

    /// Transient `Interrupted` short reads are a device hiccup, not rot:
    /// both recovery and the scrubber must retry them away and succeed
    /// with no salvage action and no findings.
    #[test]
    fn transient_short_reads_are_retried_by_open_and_scrub() {
        const APPENDS: usize = 8;
        let sim = SimFs::new(0x5407);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/short-reads");
        let opts = DurabilityOptions::default();
        {
            let mut d = ChronicleDb::open_with_vfs(Arc::clone(&vfs), root, opts).unwrap();
            for stmt in DDL {
                d.execute(stmt).unwrap();
            }
            d.checkpoint().unwrap();
            for i in 0..APPENDS {
                append_nth(&mut d, i);
            }
        }
        let snaps = oracle_snapshots(APPENDS);

        sim.set_short_reads(2);
        let d = ChronicleDb::open_with_vfs(Arc::clone(&vfs), root, opts)
            .expect("transient short reads must be retried, not fatal");
        assert_eq!(d.snapshot_views(), snaps[APPENDS]);

        sim.set_short_reads(2);
        let report = d.scrub().expect("scrub must retry transient short reads");
        assert!(report.clean(), "hiccups are not findings: {report}");
        assert!(report.segments_checked >= 1);
        assert!(report.checkpoints_checked >= 1);
    }
}

// ---- Sharded bit-rot sweeps -----------------------------------------------

mod sharded_bit_rot {
    use super::*;
    use chronicle::db::{shard_of_group, ShardedDb};
    use chronicle::simkit::{SimFs, Vfs};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    const SHARDS: usize = 4;
    const GROUPS: usize = 8;
    const APPENDS: usize = 48;

    fn ddl_for_group(g: usize) -> [String; 3] {
        [
            format!("CREATE GROUP g{g}"),
            format!("CREATE CHRONICLE c{g} (sn SEQ, k INT, v FLOAT) IN GROUP g{g}"),
            format!("CREATE VIEW v{g} AS SELECT k, SUM(v) AS t FROM c{g} GROUP BY k"),
        ]
    }

    fn ddl() -> Vec<String> {
        (0..GROUPS).flat_map(ddl_for_group).collect()
    }

    fn history() -> Vec<(usize, i64, i64, f64)> {
        (0..APPENDS)
            .map(|i| (i % GROUPS, i as i64 + 1, (i % 3) as i64, i as f64))
            .collect()
    }

    fn groups_of(shard: usize) -> Vec<usize> {
        (0..GROUPS)
            .filter(|g| shard_of_group(&format!("g{g}"), SHARDS) == shard)
            .collect()
    }

    /// One sorted view snapshot per acknowledged append prefix.
    type Snapshots = Vec<Vec<(String, Vec<u8>)>>;

    /// Per-shard oracle over the first `upto` global appends: `snaps[k]`
    /// is the (sorted) view state of `shard` after the first `k` appends
    /// destined to it.
    fn shard_oracle(shard: usize) -> Snapshots {
        let groups = groups_of(shard);
        let mut db = ChronicleDb::new();
        for stmt in groups.iter().flat_map(|g| ddl_for_group(*g)) {
            db.execute(&stmt).unwrap();
        }
        let sorted = |db: &ChronicleDb| {
            let mut s = db.snapshot_views();
            s.sort();
            s
        };
        let mut snaps = vec![sorted(&db)];
        for (g, at, k, v) in history() {
            if !groups.contains(&g) {
                continue;
            }
            db.append(
                &format!("c{g}"),
                Chronon(at),
                &[vec![Value::Int(k), Value::Float(v)]],
            )
            .unwrap();
            snaps.push(sorted(&db));
        }
        snaps
    }

    /// How many of the first `upto` global appends land on `shard`.
    fn appends_to(shard: usize, upto: usize) -> usize {
        let groups = groups_of(shard);
        history()
            .iter()
            .take(upto)
            .filter(|(g, ..)| groups.contains(g))
            .count()
    }

    fn files_with_ext(sim: &SimFs, dir: &Path, ext: &str) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = sim
            .live_files()
            .into_iter()
            .filter(|p| p.starts_with(dir) && p.extension().is_some_and(|x| x == ext))
            .collect();
        v.sort();
        v
    }

    fn salvage_opts(base: DurabilityOptions) -> DurabilityOptions {
        DurabilityOptions {
            recovery: RecoveryPolicy::Salvage,
            ..base
        }
    }

    /// Check the per-shard states of a salvaged open: the victim holds
    /// exactly a proper prefix of its appends — `expect` if given, else
    /// however many WAL records its recovery replayed — and every peer
    /// holds its full state with a trivial report. Returns the victim's
    /// report. (`expect` matters when the victim rebuilt from a
    /// checkpoint image: image restores don't count as replayed appends.)
    fn check_shards(
        d: &ShardedDb,
        fs: &SimFs,
        oracles: &[Snapshots],
        victim: usize,
        expect: Option<usize>,
        label: &str,
    ) -> SalvageReport {
        for (s, oracle) in oracles.iter().enumerate() {
            let mut got = d.shard(s).snapshot_views();
            got.sort();
            if s == victim {
                let recovered = expect.unwrap_or_else(|| d.shard(s).stats().appends as usize);
                assert!(recovered < oracle.len() - 1, "{label}: shard {s} lost data");
                assert_eq!(
                    got, oracle[recovered],
                    "{label}: victim state is not its acknowledged prefix"
                );
            } else {
                assert_eq!(
                    got,
                    *oracle.last().unwrap(),
                    "{label}: peer shard {s} must be untouched"
                );
                if let Some(sr) = &d.shard(s).stats().salvage {
                    assert!(sr.is_trivial(), "{label}: peer shard {s} reports {sr}");
                }
            }
        }
        let sr = d
            .shard(victim)
            .stats()
            .salvage
            .clone()
            .expect("victim shard reports");
        for path in sr
            .checkpoints_quarantined
            .iter()
            .chain(sr.segments_quarantined.iter().map(|q| &q.path))
        {
            assert!(
                fs.peek(path).is_some(),
                "{label}: report names quarantined file {} but nothing is there",
                path.display()
            );
        }
        let agg = d.stats().salvage.expect("aggregate report");
        assert!(agg.data_lost(), "{label}: aggregate report must admit loss");
        sr
    }

    /// Sweep a sealed non-final WAL segment of ONE shard, byte by byte.
    /// Strict refuses the whole database; Salvage recovers the victim's
    /// acknowledged prefix while every peer shard recovers completely —
    /// rot, like crashes, respects shard failure domains.
    #[test]
    fn rotted_shard_segment_swept_per_byte() {
        let sim = SimFs::new(0xb17_54a);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/sharded-rot-seg");
        let opts = DurabilityOptions {
            segment_bytes: 256,
            ..Default::default()
        };
        let floors = {
            let mut d = ShardedDb::open_with_vfs(Arc::clone(&vfs), root, SHARDS, opts).unwrap();
            for stmt in ddl() {
                d.execute(&stmt).unwrap();
            }
            let floors = d.checkpoint().unwrap(); // WAL tails now hold only appends
            for (g, at, k, v) in history() {
                d.append(
                    &format!("c{g}"),
                    Chronon(at),
                    &[vec![Value::Int(k), Value::Float(v)]],
                )
                .unwrap();
            }
            floors
        };
        let oracles: Vec<_> = (0..SHARDS).map(shard_oracle).collect();
        for (s, oracle) in oracles.iter().enumerate() {
            assert!(
                oracle.len() > 1,
                "shard {s} owns no appends; grow GROUPS so every shard is exercised"
            );
        }
        let victim = 0;
        let wal_dir = root.join(format!("shard-{victim:03}")).join("wal");
        let segs = files_with_ext(&sim, &wal_dir, "seg");
        assert!(
            segs.len() >= 2,
            "victim shard needs a sealed segment, got {}",
            segs.len()
        );
        let target = &segs[0];
        let full = sim.peek(target).unwrap();

        for at in 0..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;

            let rotten = sim.fork();
            rotten.install(target, &bytes);
            let err = ShardedDb::open_with_vfs(Arc::new(rotten), root, SHARDS, opts).unwrap_err();
            assert!(
                matches!(err, ChronicleError::Durability { .. })
                    && err.to_string().contains("corrupt"),
                "byte {at}: strict open must refuse, got: {err}"
            );

            let rotten = sim.fork();
            rotten.install(target, &bytes);
            let d = ShardedDb::open_with_vfs(
                Arc::new(rotten.clone()),
                root,
                SHARDS,
                salvage_opts(opts),
            )
            .unwrap_or_else(|e| panic!("byte {at}: salvage open must recover, got: {e}"));
            let label = format!("byte {at}");
            let sr = check_shards(&d, &rotten, &oracles, victim, None, &label);
            let recovered = d.shard(victim).stats().appends;
            assert_eq!(sr.replayed_through, floors[victim] + recovered, "{label}");
            let lost = sr
                .lost
                .unwrap_or_else(|| panic!("{label}: records were dropped but none confessed"));
            assert_eq!(lost.first, sr.replayed_through + 1, "{label}");
        }
    }

    /// Sweep the victim shard's NEWEST checkpoint image, byte by byte,
    /// with an older image retained and the WAL pruned through the newest.
    /// Strict refuses; Salvage rebuilds the victim from the older image
    /// (confessing the pruned range) and every peer recovers completely.
    #[test]
    fn rotted_shard_checkpoint_swept_per_byte() {
        // Checkpoint after the first 16 appends (the fallback image), again
        // after 40 (the victim image; this prunes every shard's WAL), and
        // leave the final 8 — one per group, so one reaches every shard —
        // as a WAL tail beyond the newest image.
        const FIRST: usize = 16;
        const SECOND: usize = 40;
        let sim = SimFs::new(0xb17_54b);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let root = Path::new("/sim/sharded-rot-ckpt");
        let opts = DurabilityOptions::default();
        let append = |d: &mut ShardedDb, (g, at, k, v): (usize, i64, i64, f64)| {
            d.append(
                &format!("c{g}"),
                Chronon(at),
                &[vec![Value::Int(k), Value::Float(v)]],
            )
            .unwrap();
        };
        let floors = {
            let mut d = ShardedDb::open_with_vfs(Arc::clone(&vfs), root, SHARDS, opts).unwrap();
            for stmt in ddl() {
                d.execute(&stmt).unwrap();
            }
            let h = history();
            for op in &h[..FIRST] {
                append(&mut d, *op);
            }
            let floors = d.checkpoint().unwrap();
            for op in &h[FIRST..SECOND] {
                append(&mut d, *op);
            }
            d.checkpoint().unwrap(); // prunes each shard's WAL through here
            for op in &h[SECOND..] {
                append(&mut d, *op);
            }
            floors
        };
        let oracles: Vec<_> = (0..SHARDS).map(shard_oracle).collect();
        let victim = 0;
        let shard_dir = root.join(format!("shard-{victim:03}"));
        let ckpts = files_with_ext(&sim, &shard_dir, "ckpt");
        assert_eq!(ckpts.len(), 2, "victim shard retains both images");
        let newest = ckpts.last().unwrap();
        let full = sim.peek(newest).unwrap();
        let at_older = appends_to(victim, FIRST);

        for at in 0..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;

            let rotten = sim.fork();
            rotten.install(newest, &bytes);
            let err = ShardedDb::open_with_vfs(Arc::new(rotten), root, SHARDS, opts).unwrap_err();
            assert!(
                matches!(err, ChronicleError::Durability { .. })
                    && err.to_string().contains("corrupt"),
                "byte {at}: strict open must refuse the WAL gap, got: {err}"
            );

            let rotten = sim.fork();
            rotten.install(newest, &bytes);
            let d = ShardedDb::open_with_vfs(
                Arc::new(rotten.clone()),
                root,
                SHARDS,
                salvage_opts(opts),
            )
            .unwrap_or_else(|e| panic!("byte {at}: salvage open must recover, got: {e}"));
            let label = format!("byte {at}");
            let sr = check_shards(&d, &rotten, &oracles, victim, Some(at_older), &label);
            assert_eq!(sr.replayed_through, floors[victim], "{label}");
            assert_eq!(sr.checkpoints_quarantined.len(), 1, "{label}");
            let lost = sr
                .lost
                .unwrap_or_else(|| panic!("{label}: records were dropped but none confessed"));
            assert_eq!(lost.first, floors[victim] + 1, "{label}");
        }
    }
}
