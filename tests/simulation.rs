//! Tier-visible deterministic-simulation gate: a fixed seed set over both
//! topologies, run on every `cargo test`.
//!
//! Each seed drives a full schedule — DDL, appends, relation DML, view
//! creation, checkpoints, armed crashes, clean reopens — against a
//! durable database over the in-memory fault-injecting [`SimFs`], and
//! verifies every recovery byte-for-byte against an in-memory oracle.
//! The deep sweeps live in `examples/sim.rs` (driven by `scripts/verify.sh`);
//! this suite pins a small deterministic slice of them into tier-1 so a
//! recovery regression fails `cargo test` with the reproducing seed in
//! the panic message.
//!
//! Reproducing a failure printed by this suite:
//!
//! ```text
//! SIM_TRACE=1 cargo run --release --example sim -- \
//!     --base <seed> --seeds 1 --shards <0 or 2> --ops 120
//! ```

use chronicle::sim::{
    run_failover_seed, run_seed, run_seed_bit_rot, run_seed_bit_rot_sharded, run_seed_sharded,
};
use chronicle::simkit::ScheduleConfig;

fn cfg() -> ScheduleConfig {
    ScheduleConfig {
        ops: 120,
        ..ScheduleConfig::default()
    }
}

/// The pinned seed block. Nothing is special about these values — they
/// are simply a contiguous range so a reader can line them up with a
/// `--base 0 --seeds 24` sweep of the example runner.
const SEEDS: std::ops::Range<u64> = 0..24;

#[test]
fn single_topology_fixed_seeds_recover_clean() {
    for seed in SEEDS {
        let report = run_seed(seed, &cfg())
            .unwrap_or_else(|f| panic!("single-topology simulation failed: {f}"));
        assert!(
            report.recoveries >= 1,
            "seed {seed}: every schedule ends in a verified recovery"
        );
    }
}

#[test]
fn sharded_topology_fixed_seeds_recover_clean() {
    for seed in SEEDS {
        let report = run_seed_sharded(seed, 2, &cfg())
            .unwrap_or_else(|f| panic!("sharded simulation failed: {f}"));
        assert!(
            report.recoveries >= 1,
            "seed {seed}: every schedule ends in a verified recovery"
        );
    }
}

#[test]
fn reports_are_reproducible_across_topologies() {
    // A run is a pure function of (seed, config, topology): the report —
    // acked-statement count, crash count, recovery count — must match
    // exactly on replay. This is the property the whole seed-reproduction
    // workflow rests on.
    for seed in [3, 11, 19] {
        assert_eq!(run_seed(seed, &cfg()), run_seed(seed, &cfg()));
        assert_eq!(
            run_seed_sharded(seed, 3, &cfg()),
            run_seed_sharded(seed, 3, &cfg())
        );
    }
}

#[test]
fn simulation_exercises_the_interesting_paths() {
    // Guard against the schedule generator quietly degenerating (e.g. a
    // weight change that stops producing crashes): across the pinned
    // block, runs must collectively ack statements, suffer crashes,
    // recover, and checkpoint.
    let mut acked = 0;
    let mut crashes = 0;
    let mut checkpoints = 0;
    for seed in SEEDS {
        let r = run_seed(seed, &cfg()).expect("pinned seeds run clean");
        acked += r.sql_acked;
        crashes += r.crashes;
        checkpoints += r.checkpoints;
    }
    assert!(acked > 100, "schedules ack real work (got {acked})");
    assert!(crashes > 10, "schedules inject crashes (got {crashes})");
    assert!(checkpoints > 5, "schedules checkpoint (got {checkpoints})");
}

#[test]
fn sharded_seeds_exercise_group_moves() {
    // Heavy-light placement's move primitive must actually fire inside
    // the crash sweeps: across the pinned block, sharded runs must
    // acknowledge MOVE GROUP pseudo-statements (the driver verifies each
    // against the oracle, asserts single ownership after every recovery,
    // and adopts crash-interrupted moves that rolled forward). Single
    // topology must reject every one.
    let mut moves = 0;
    for seed in SEEDS {
        let sharded = run_seed_sharded(seed, 3, &cfg())
            .unwrap_or_else(|f| panic!("sharded simulation failed: {f}"));
        moves += sharded.moves;
        let single = run_seed(seed, &cfg()).expect("pinned seeds run clean");
        assert_eq!(
            single.moves, 0,
            "seed {seed}: single topology acknowledged a group move"
        );
    }
    assert!(moves > 5, "schedules apply group moves (got {moves})");
}

/// A pinned slice of the bit-rot sweeps (`--bit-rot` in the example
/// runner): every crash also flips seeded bytes across the surviving
/// files, the database reopens under `RecoveryPolicy::Salvage`, and the
/// driver proves each open landed on a prefix of the acknowledged history
/// with the dropped suffix exactly enumerated by the salvage report.
#[test]
fn single_topology_bit_rot_seeds_salvage_clean() {
    let mut flips = 0;
    for seed in SEEDS {
        let report = run_seed_bit_rot(seed, &cfg())
            .unwrap_or_else(|f| panic!("single-topology bit-rot simulation failed: {f}"));
        assert!(report.recoveries >= 1, "seed {seed}: recovery exercised");
        flips += report.bit_rot_flips;
    }
    assert!(
        flips > 50,
        "the sweep must actually rot bytes (got {flips})"
    );
}

#[test]
fn sharded_topology_bit_rot_seeds_salvage_clean() {
    let mut flips = 0;
    for seed in SEEDS {
        let report = run_seed_bit_rot_sharded(seed, 2, &cfg())
            .unwrap_or_else(|f| panic!("sharded bit-rot simulation failed: {f}"));
        assert!(report.recoveries >= 1, "seed {seed}: recovery exercised");
        flips += report.bit_rot_flips;
    }
    assert!(
        flips > 50,
        "the sweep must actually rot bytes (got {flips})"
    );
}

/// A pinned slice of the failover sweeps (`--failover` in the example
/// runner): each seed kills the leader mid-stream, promotes the follower
/// under a fenced term, and lets sessioned clients retry — asserting
/// every acknowledged stamp survives promotion, no stamp ever applies
/// twice, stale-term streams are refused with a typed fencing error, and
/// the final state matches a never-crashed oracle byte-for-byte.
///
/// Reproduce a failure with:
///
/// ```text
/// cargo run --release --example sim -- \
///     --base <seed> --seeds 1 --shards <1 or 2> --ops 120 --failover
/// ```
#[test]
fn failover_fixed_seeds_promote_clean() {
    let mut acked = 0;
    let mut promotions = 0;
    let mut retries = 0;
    for seed in SEEDS {
        let shards = if seed % 2 == 0 { 1 } else { 2 };
        let r = run_failover_seed(seed, shards, &cfg())
            .unwrap_or_else(|f| panic!("failover simulation failed: {f}"));
        assert!(
            r.promotions >= 1,
            "seed {seed}: every schedule promotes at least once"
        );
        assert_eq!(
            r.fencing_probes, r.promotions,
            "seed {seed}: every promotion fences the deposed term"
        );
        acked += r.stamped_acked;
        promotions += r.promotions;
        retries += r.dedupe_retries;
    }
    assert!(acked > 100, "schedules ack stamped work (got {acked})");
    assert!(promotions >= 24, "got {promotions} promotions");
    assert!(retries >= 24, "got {retries} dedupe retries");
}
