//! Model-based property test for [`chronicle_store::Relation`]: a random
//! sequence of inserts / keyed deletes / upserts must leave the relation,
//! its primary-key index, and its secondary indexes in exact agreement
//! with a naive `BTreeMap` model.

use std::collections::BTreeMap;

use chronicle_testkit::prop::{boxed, ints, map, triple, vec_of, weighted, Gen};
use chronicle_testkit::{prop_assert, prop_assert_eq, prop_test};

use chronicle_store::Relation;
use chronicle_types::{tuple, AttrType, Attribute, Schema, Tuple, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { k: i64, name: u8, state: u8 },
    DeleteKey { k: i64 },
    Upsert { k: i64, name: u8, state: u8 },
}

fn op_gen() -> impl Gen<Value = Op> {
    let field = || triple(ints(0..20i64), ints(0..5u8), ints(0..4u8));
    weighted(vec![
        (
            3,
            boxed(map(field(), |(k, name, state)| Op::Insert {
                k,
                name,
                state,
            })),
        ),
        (2, boxed(map(ints(0..20i64), |k| Op::DeleteKey { k }))),
        (
            2,
            boxed(map(field(), |(k, name, state)| Op::Upsert {
                k,
                name,
                state,
            })),
        ),
    ])
}

const STATES: [&str; 4] = ["NJ", "NY", "CA", "TX"];

fn row(k: i64, name: u8, state: u8) -> Tuple {
    tuple![k, format!("n{name}"), STATES[state as usize]]
}

prop_test! {
    fn relation_agrees_with_model(cases = 256, seed = 0xB72EE;
        ops in vec_of(op_gen(), 1..80),
    ) {
        let schema = Schema::relation_with_key(
            vec![
                Attribute::new("k", AttrType::Int),
                Attribute::new("name", AttrType::Str),
                Attribute::new("state", AttrType::Str),
            ],
            &["k"],
        )
        .unwrap();
        let mut rel = Relation::new(schema);
        let state_idx = rel.add_index(&["state"]).unwrap();
        let mut model: BTreeMap<i64, Tuple> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert { k, name, state } => {
                    let t = row(*k, *name, *state);
                    let res = rel.insert(t.clone());
                    if model.contains_key(k) {
                        prop_assert!(res.is_err(), "duplicate key {} must be rejected", k);
                    } else {
                        prop_assert!(res.is_ok());
                        model.insert(*k, t);
                    }
                }
                Op::DeleteKey { k } => {
                    let removed = rel.delete_by_key(&[Value::Int(*k)]);
                    prop_assert_eq!(removed.is_some(), model.remove(k).is_some());
                }
                Op::Upsert { k, name, state } => {
                    let t = row(*k, *name, *state);
                    let old = rel.upsert(t.clone()).unwrap();
                    let model_old = model.insert(*k, t);
                    prop_assert_eq!(old, model_old);
                }
            }

            // Global agreement after every step.
            prop_assert_eq!(rel.len(), model.len());
            for (k, t) in &model {
                prop_assert_eq!(rel.get_by_key(&[Value::Int(*k)]), Some(t));
                prop_assert!(rel.contains(t));
            }
            // Secondary index completeness: for every state, the indexed
            // rows equal the model's filter.
            for state in STATES.iter() {
                let mut via_index: Vec<Tuple> = rel
                    .lookup_secondary(state_idx, &[Value::str(*state)])
                    .into_iter()
                    .cloned()
                    .collect();
                via_index.sort();
                let mut via_model: Vec<Tuple> = model
                    .values()
                    .filter(|t| t.get(2) == &Value::str(*state))
                    .cloned()
                    .collect();
                via_model.sort();
                prop_assert_eq!(via_index, via_model, "state index diverged for {}", state);
            }
        }
    }
}
