//! Chronicle groups: the shared sequence-number domain.
//!
//! §4 of the paper: *"We define a chronicle group as a collection of
//! chronicles whose sequence numbers are drawn from the same domain, along
//! with the requirement that an insert into any chronicle in a chronicle
//! group must have a sequence number greater than the sequence number of
//! any tuple in the chronicle group."* Union, difference and SN-joins are
//! only permitted within one group.
//!
//! The group also owns the monotone `SeqNo → Chronon` mapping of §2.1/§5.1:
//! every sequence number has an associated temporal instant, and calendars
//! (sets of time intervals) are evaluated through this mapping.

use chronicle_types::{ChronicleError, Chronon, GroupId, Result, SeqNo};

/// A chronicle group: shared sequence domain + SN→chronon mapping.
#[derive(Debug, Clone)]
pub struct ChronicleGroup {
    id: GroupId,
    name: String,
    high_water: SeqNo,
    /// Monotone (SeqNo, Chronon) pairs, appended on every admitted batch.
    /// Both components are non-decreasing, enabling binary search both ways.
    timeline: Vec<(SeqNo, Chronon)>,
}

impl ChronicleGroup {
    /// Create an empty group.
    pub fn new(id: GroupId, name: impl Into<String>) -> Self {
        ChronicleGroup {
            id,
            name: name.into(),
            high_water: SeqNo::ZERO,
            timeline: Vec::new(),
        }
    }

    /// Group id.
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Highest sequence number admitted so far ([`SeqNo::ZERO`] if none).
    pub fn high_water(&self) -> SeqNo {
        self.high_water
    }

    /// Admit a batch at sequence number `seq` with temporal instant `at`.
    ///
    /// Fails if `seq` is not strictly greater than the group high-water
    /// mark, or if `at` precedes the last admitted chronon (time, like
    /// sequence numbers, only moves forward).
    pub fn admit(&mut self, seq: SeqNo, at: Chronon) -> Result<()> {
        if seq <= self.high_water {
            return Err(ChronicleError::NonMonotonicAppend {
                high_water: self.high_water.0,
                attempted: seq.0,
            });
        }
        if let Some(&(_, last)) = self.timeline.last() {
            if at < last {
                return Err(ChronicleError::NonMonotonicAppend {
                    high_water: last.0 as u64,
                    attempted: at.0 as u64,
                });
            }
        }
        self.high_water = seq;
        self.timeline.push((seq, at));
        Ok(())
    }

    /// Allocate the next sequence number without admitting it (callers that
    /// generate their own SNs use [`ChronicleGroup::admit`] directly).
    pub fn next_seq(&self) -> SeqNo {
        self.high_water.next()
    }

    /// The chronon associated with sequence number `seq`, if admitted.
    pub fn chronon_of(&self, seq: SeqNo) -> Option<Chronon> {
        self.timeline
            .binary_search_by_key(&seq, |&(s, _)| s)
            .ok()
            .map(|i| self.timeline[i].1)
    }

    /// The latest admitted chronon (the group's "now"), if any batch was
    /// admitted.
    pub fn now(&self) -> Option<Chronon> {
        self.timeline.last().map(|&(_, c)| c)
    }

    /// The smallest sequence number whose chronon is `>= at` — the start of
    /// the suffix of the chronicle lying inside an interval beginning at
    /// `at`. Returns `None` if no admitted SN is that late.
    pub fn first_seq_at_or_after(&self, at: Chronon) -> Option<SeqNo> {
        let idx = self.timeline.partition_point(|&(_, c)| c < at);
        self.timeline.get(idx).map(|&(s, _)| s)
    }

    /// Number of admitted (SeqNo, Chronon) points.
    pub fn timeline_len(&self) -> usize {
        self.timeline.len()
    }

    /// Restore the watermark from a checkpoint image: the high-water mark
    /// plus the last admitted (SN, chronon) point. The full timeline is
    /// deliberately not persisted — durable state must stay `O(|V|)`, not
    /// `O(|C|)` — so after recovery [`ChronicleGroup::chronon_of`] and
    /// [`ChronicleGroup::first_seq_at_or_after`] only answer for batches
    /// admitted since (plus the final pre-crash point).
    pub fn restore_watermark(&mut self, high_water: SeqNo, last_at: Option<Chronon>) {
        self.high_water = high_water;
        self.timeline.clear();
        if let Some(at) = last_at {
            if high_water > SeqNo::ZERO {
                self.timeline.push((high_water, at));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ChronicleGroup {
        ChronicleGroup::new(GroupId(0), "g")
    }

    #[test]
    fn admit_enforces_monotonicity() {
        let mut g = group();
        g.admit(SeqNo(1), Chronon(100)).unwrap();
        g.admit(SeqNo(5), Chronon(100)).unwrap(); // sparse SNs allowed, equal chronon allowed
        let err = g.admit(SeqNo(5), Chronon(200)).unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
        let err = g.admit(SeqNo(4), Chronon(200)).unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
        assert_eq!(g.high_water(), SeqNo(5));
    }

    #[test]
    fn chronon_must_not_go_backwards() {
        let mut g = group();
        g.admit(SeqNo(1), Chronon(100)).unwrap();
        let err = g.admit(SeqNo(2), Chronon(99)).unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    }

    #[test]
    fn chronon_lookup() {
        let mut g = group();
        g.admit(SeqNo(2), Chronon(10)).unwrap();
        g.admit(SeqNo(7), Chronon(20)).unwrap();
        assert_eq!(g.chronon_of(SeqNo(2)), Some(Chronon(10)));
        assert_eq!(g.chronon_of(SeqNo(7)), Some(Chronon(20)));
        assert_eq!(g.chronon_of(SeqNo(3)), None);
        assert_eq!(g.now(), Some(Chronon(20)));
    }

    #[test]
    fn first_seq_at_or_after_boundaries() {
        let mut g = group();
        g.admit(SeqNo(2), Chronon(10)).unwrap();
        g.admit(SeqNo(7), Chronon(20)).unwrap();
        g.admit(SeqNo(9), Chronon(30)).unwrap();
        assert_eq!(g.first_seq_at_or_after(Chronon(5)), Some(SeqNo(2)));
        assert_eq!(g.first_seq_at_or_after(Chronon(10)), Some(SeqNo(2)));
        assert_eq!(g.first_seq_at_or_after(Chronon(11)), Some(SeqNo(7)));
        assert_eq!(g.first_seq_at_or_after(Chronon(30)), Some(SeqNo(9)));
        assert_eq!(g.first_seq_at_or_after(Chronon(31)), None);
    }

    #[test]
    fn next_seq_is_high_water_plus_one() {
        let mut g = group();
        assert_eq!(g.next_seq(), SeqNo(1));
        g.admit(SeqNo(41), Chronon(0)).unwrap();
        assert_eq!(g.next_seq(), SeqNo(42));
    }
}
