//! Chronicles: append-only tuple sequences with bounded retention.
//!
//! §2.1: *"A chronicle is similar to a relation, except that a chronicle is
//! a sequence, rather than an unordered set, of tuples. ... Chronicles can
//! be very large, and the entire chronicle may not be stored in the
//! system."* The [`Retention`] policy models exactly this: persistent-view
//! maintenance never reads the chronicle (that is the point of the paper),
//! but detail queries over "some latest window" (§2.2) and the *baseline*
//! algorithms do, and they get a typed
//! [`ChronicleError::ChronicleNotStored`] error when they reach past the
//! retained window.

use std::collections::VecDeque;

use chronicle_types::{ChronicleError, ChronicleId, GroupId, Result, Schema, SeqNo, Tuple};

/// How much of a chronicle is kept in storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep nothing: tuples are dropped as soon as the append is processed.
    /// The purest form of the model — views must be maintainable anyway.
    None,
    /// Keep the last `n` tuples (a "latest window").
    LastTuples(usize),
    /// Keep everything (needed by the recompute baselines and the oracle).
    All,
}

/// An append-only chronicle.
#[derive(Debug, Clone)]
pub struct Chronicle {
    id: ChronicleId,
    name: String,
    group: GroupId,
    schema: Schema,
    retention: Retention,
    /// Stored suffix of the chronicle, oldest first.
    window: VecDeque<Tuple>,
    /// Total tuples ever appended (≥ `window.len()`).
    total_appended: u64,
    /// Sequence number of the first *stored* tuple (None when nothing is
    /// stored). Anything below this has been evicted.
    first_stored_seq: Option<SeqNo>,
    /// Highest SN appended *to this chronicle* (group high-water can be
    /// higher if sibling chronicles advanced it).
    last_seq: SeqNo,
}

impl Chronicle {
    /// Create an empty chronicle. `schema` must be a chronicle schema
    /// (have a sequencing attribute).
    pub fn new(
        id: ChronicleId,
        name: impl Into<String>,
        group: GroupId,
        schema: Schema,
        retention: Retention,
    ) -> Result<Self> {
        if !schema.is_chronicle() {
            return Err(ChronicleError::InvalidSchema(
                "chronicle schema must declare a sequencing attribute".into(),
            ));
        }
        Ok(Chronicle {
            id,
            name: name.into(),
            group,
            schema,
            retention,
            window: VecDeque::new(),
            total_appended: 0,
            first_stored_seq: None,
            last_seq: SeqNo::ZERO,
        })
    }

    /// Chronicle id.
    pub fn id(&self) -> ChronicleId {
        self.id
    }

    /// Chronicle name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The chronicle group this chronicle belongs to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The chronicle's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The retention policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Position of the sequencing attribute.
    pub fn seq_pos(&self) -> usize {
        self.schema.seq_attr().expect("chronicle schema has SN")
    }

    /// Total number of tuples ever appended (including evicted ones).
    pub fn total_appended(&self) -> u64 {
        self.total_appended
    }

    /// Number of tuples currently stored.
    pub fn stored_len(&self) -> usize {
        self.window.len()
    }

    /// Highest sequence number appended to this chronicle.
    pub fn last_seq(&self) -> SeqNo {
        self.last_seq
    }

    /// Sequence number of the oldest stored tuple, if any.
    pub fn first_stored_seq(&self) -> Option<SeqNo> {
        self.first_stored_seq
    }

    /// Restore counters and the retained window from a checkpoint image.
    /// Window tuples are re-validated against the schema so a corrupted
    /// image cannot smuggle malformed tuples into the store.
    pub fn restore_state(
        &mut self,
        total_appended: u64,
        last_seq: SeqNo,
        first_stored_seq: Option<SeqNo>,
        window: Vec<Tuple>,
    ) -> Result<()> {
        let sp = self.seq_pos();
        for t in &window {
            t.check_against(&self.schema)?;
            t.seq_at(sp)?;
        }
        if window.len() as u64 > total_appended {
            return Err(ChronicleError::Corruption {
                detail: format!(
                    "chronicle `{}` image stores {} tuples but claims only {} were appended",
                    self.name,
                    window.len(),
                    total_appended
                ),
            });
        }
        self.window = window.into();
        self.total_appended = total_appended;
        self.first_stored_seq = first_stored_seq;
        self.last_seq = last_seq;
        Ok(())
    }

    /// Record a batch of tuples that the group has already admitted at
    /// sequence number `seq`. All tuples must carry `seq` in their
    /// sequencing attribute and conform to the schema. (Group-level
    /// monotonicity is enforced by [`crate::ChronicleGroup::admit`];
    /// the [`crate::Catalog`] ties the two together.)
    pub fn record_batch(&mut self, seq: SeqNo, tuples: &[Tuple]) -> Result<()> {
        let sp = self.seq_pos();
        for t in tuples {
            t.check_against(&self.schema)?;
            let tsn = t.seq_at(sp)?;
            if tsn != seq {
                return Err(ChronicleError::NonMonotonicAppend {
                    high_water: seq.0,
                    attempted: tsn.0,
                });
            }
        }
        if seq <= self.last_seq {
            return Err(ChronicleError::NonMonotonicAppend {
                high_water: self.last_seq.0,
                attempted: seq.0,
            });
        }
        self.last_seq = seq;
        self.total_appended += tuples.len() as u64;
        match self.retention {
            Retention::None => {}
            Retention::All => {
                if self.first_stored_seq.is_none() {
                    self.first_stored_seq = Some(seq);
                }
                self.window.extend(tuples.iter().cloned());
            }
            Retention::LastTuples(n) => {
                if self.first_stored_seq.is_none() {
                    self.first_stored_seq = Some(seq);
                }
                self.window.extend(tuples.iter().cloned());
                while self.window.len() > n {
                    self.window.pop_front();
                }
                if self.window.len() < self.total_appended as usize {
                    // Something was evicted; recompute the stored low mark.
                    self.first_stored_seq = self
                        .window
                        .front()
                        .map(|t| t.seq_at(sp).expect("validated on append"));
                }
            }
        }
        Ok(())
    }

    /// Scan the *entire* chronicle. Errors with
    /// [`ChronicleError::ChronicleNotStored`] if any prefix has been
    /// evicted — the situation the paper's maintenance algorithms are
    /// designed never to need.
    pub fn scan_all(&self) -> Result<impl Iterator<Item = &Tuple>> {
        if self.window.len() as u64 != self.total_appended {
            return Err(ChronicleError::ChronicleNotStored {
                detail: format!(
                    "chronicle `{}` retains {} of {} tuples (policy {:?})",
                    self.name,
                    self.window.len(),
                    self.total_appended,
                    self.retention
                ),
            });
        }
        Ok(self.window.iter())
    }

    /// Scan the stored window (whatever is retained), oldest first. Never
    /// errors — this is the §2.2 "detailed queries over some latest window"
    /// access path.
    pub fn scan_window(&self) -> impl Iterator<Item = &Tuple> {
        self.window.iter()
    }

    /// Stored tuples with sequence numbers in `[from, to]`. Errors if part
    /// of that range was evicted.
    pub fn scan_range(&self, from: SeqNo, to: SeqNo) -> Result<Vec<&Tuple>> {
        if let Some(first) = self.first_stored_seq {
            if from < first {
                return Err(ChronicleError::ChronicleNotStored {
                    detail: format!(
                        "range starts at {from} but chronicle `{}` only retains from {first}",
                        self.name
                    ),
                });
            }
        } else if self.total_appended > 0 {
            return Err(ChronicleError::ChronicleNotStored {
                detail: format!("chronicle `{}` retains nothing", self.name),
            });
        }
        let sp = self.seq_pos();
        // The window is SN-sorted (appends are monotone): binary search the
        // boundaries.
        let window: Vec<&Tuple> = self.window.iter().collect();
        let lo = window.partition_point(|t| t.seq_at(sp).expect("validated") < from);
        let hi = window.partition_point(|t| t.seq_at(sp).expect("validated") <= to);
        Ok(window[lo..hi].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, AttrType, Attribute};

    fn schema() -> Schema {
        Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("v", AttrType::Int),
            ],
            "sn",
        )
        .unwrap()
    }

    fn chron(retention: Retention) -> Chronicle {
        Chronicle::new(ChronicleId(0), "c", GroupId(0), schema(), retention).unwrap()
    }

    #[test]
    fn relation_schema_rejected() {
        let s = Schema::relation(vec![Attribute::new("v", AttrType::Int)]).unwrap();
        assert!(Chronicle::new(ChronicleId(0), "c", GroupId(0), s, Retention::All).is_err());
    }

    #[test]
    fn append_and_scan_all() {
        let mut c = chron(Retention::All);
        c.record_batch(SeqNo(1), &[tuple![SeqNo(1), 10i64]])
            .unwrap();
        c.record_batch(
            SeqNo(2),
            &[tuple![SeqNo(2), 20i64], tuple![SeqNo(2), 21i64]],
        )
        .unwrap();
        assert_eq!(c.total_appended(), 3);
        assert_eq!(c.stored_len(), 3);
        let all: Vec<_> = c.scan_all().unwrap().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(c.last_seq(), SeqNo(2));
    }

    #[test]
    fn batch_tuples_must_carry_batch_seq() {
        let mut c = chron(Retention::All);
        let err = c
            .record_batch(SeqNo(3), &[tuple![SeqNo(2), 10i64]])
            .unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    }

    #[test]
    fn per_chronicle_monotonicity() {
        let mut c = chron(Retention::All);
        c.record_batch(SeqNo(5), &[tuple![SeqNo(5), 1i64]]).unwrap();
        let err = c
            .record_batch(SeqNo(5), &[tuple![SeqNo(5), 2i64]])
            .unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    }

    #[test]
    fn retention_none_stores_nothing_but_counts() {
        let mut c = chron(Retention::None);
        c.record_batch(SeqNo(1), &[tuple![SeqNo(1), 10i64]])
            .unwrap();
        assert_eq!(c.total_appended(), 1);
        assert_eq!(c.stored_len(), 0);
        assert!(c.scan_all().is_err());
    }

    #[test]
    fn retention_window_evicts_oldest() {
        let mut c = chron(Retention::LastTuples(2));
        for i in 1..=5u64 {
            c.record_batch(SeqNo(i), &[tuple![SeqNo(i), i as i64]])
                .unwrap();
        }
        assert_eq!(c.stored_len(), 2);
        let vals: Vec<i64> = c
            .scan_window()
            .map(|t| t.get(1).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![4, 5]);
        assert!(c.scan_all().is_err());
    }

    #[test]
    fn scan_range_within_window() {
        let mut c = chron(Retention::All);
        for i in 1..=10u64 {
            c.record_batch(SeqNo(i), &[tuple![SeqNo(i), i as i64]])
                .unwrap();
        }
        let hits = c.scan_range(SeqNo(3), SeqNo(6)).unwrap();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn scan_range_past_eviction_errors() {
        let mut c = chron(Retention::LastTuples(3));
        for i in 1..=10u64 {
            c.record_batch(SeqNo(i), &[tuple![SeqNo(i), i as i64]])
                .unwrap();
        }
        assert!(c.scan_range(SeqNo(1), SeqNo(5)).is_err());
        let ok = c.scan_range(SeqNo(8), SeqNo(10)).unwrap();
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn schema_enforced_on_append() {
        let mut c = chron(Retention::All);
        assert!(c
            .record_batch(SeqNo(1), &[tuple![SeqNo(1), "not an int"]])
            .is_err());
    }

    #[test]
    fn empty_chronicle_scan_range() {
        let c = chron(Retention::All);
        assert!(c.scan_range(SeqNo(1), SeqNo(5)).unwrap().is_empty());
    }
}
