//! Secondary index structures.
//!
//! Relations expose two index shapes:
//!
//! * [`HashIndex`] — O(1) expected equality lookup; used for primary keys
//!   and the CA⋈ key join.
//! * [`BTreeIndex`] — O(log n) lookup plus ordered range scans; used where
//!   the Theorem 4.2 cost model charges `log |R|` per probe and for range
//!   predicates.
//!
//! Both map a *key* (the values of the indexed attribute positions, in
//! order) to the set of row slots holding matching tuples. Row slots are the
//! stable `usize` handles issued by [`crate::Relation`].

use std::collections::{BTreeMap, HashMap};

use chronicle_types::{Tuple, Value};

/// Extract the index key of `tuple` for the attribute positions `cols`.
pub(crate) fn key_of(tuple: &Tuple, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| tuple.get(c).clone()).collect()
}

/// Hash index over a list of attribute positions.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Create an empty index on attribute positions `cols`.
    pub fn new(cols: Vec<usize>) -> Self {
        HashIndex {
            cols,
            map: HashMap::new(),
        }
    }

    /// The indexed attribute positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Register `slot` as holding `tuple`.
    pub fn insert(&mut self, tuple: &Tuple, slot: usize) {
        self.map
            .entry(key_of(tuple, &self.cols))
            .or_default()
            .push(slot);
    }

    /// Remove `slot` (which held `tuple`).
    pub fn remove(&mut self, tuple: &Tuple, slot: usize) {
        if let Some(slots) = self.map.get_mut(&key_of(tuple, &self.cols)) {
            if let Some(pos) = slots.iter().position(|&s| s == slot) {
                slots.swap_remove(pos);
            }
            if slots.is_empty() {
                self.map.remove(&key_of(tuple, &self.cols));
            }
        }
    }

    /// Slots whose tuples have exactly this `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index over a list of attribute positions.
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    cols: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<usize>>,
}

impl BTreeIndex {
    /// Create an empty index on attribute positions `cols`.
    pub fn new(cols: Vec<usize>) -> Self {
        BTreeIndex {
            cols,
            map: BTreeMap::new(),
        }
    }

    /// The indexed attribute positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Register `slot` as holding `tuple`.
    pub fn insert(&mut self, tuple: &Tuple, slot: usize) {
        self.map
            .entry(key_of(tuple, &self.cols))
            .or_default()
            .push(slot);
    }

    /// Remove `slot` (which held `tuple`).
    pub fn remove(&mut self, tuple: &Tuple, slot: usize) {
        let key = key_of(tuple, &self.cols);
        if let Some(slots) = self.map.get_mut(&key) {
            if let Some(pos) = slots.iter().position(|&s| s == slot) {
                slots.swap_remove(pos);
            }
            if slots.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Slots whose tuples have exactly this `key` (O(log n)).
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Slots whose keys lie in `[lo, hi]` inclusive, in key order.
    pub fn range(&self, lo: &[Value], hi: &[Value]) -> impl Iterator<Item = usize> + '_ {
        self.map
            .range(lo.to_vec()..=hi.to_vec())
            .flat_map(|(_, slots)| slots.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    #[test]
    fn hash_index_insert_lookup_remove() {
        let mut idx = HashIndex::new(vec![0]);
        let t1 = tuple![1i64, "a"];
        let t2 = tuple![1i64, "b"];
        let t3 = tuple![2i64, "c"];
        idx.insert(&t1, 10);
        idx.insert(&t2, 11);
        idx.insert(&t3, 12);
        assert_eq!(idx.lookup(&[Value::Int(1)]).len(), 2);
        assert_eq!(idx.lookup(&[Value::Int(2)]), &[12]);
        assert_eq!(idx.distinct_keys(), 2);
        idx.remove(&t1, 10);
        assert_eq!(idx.lookup(&[Value::Int(1)]), &[11]);
        idx.remove(&t2, 11);
        assert!(idx.lookup(&[Value::Int(1)]).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn hash_index_missing_key_is_empty() {
        let idx = HashIndex::new(vec![0]);
        assert!(idx.lookup(&[Value::Int(99)]).is_empty());
    }

    #[test]
    fn btree_index_range_scan() {
        let mut idx = BTreeIndex::new(vec![0]);
        for i in 0..10i64 {
            idx.insert(&tuple![i, "x"], i as usize);
        }
        let hits: Vec<usize> = idx.range(&[Value::Int(3)], &[Value::Int(6)]).collect();
        assert_eq!(hits, vec![3, 4, 5, 6]);
    }

    #[test]
    fn btree_index_remove_clears_empty_keys() {
        let mut idx = BTreeIndex::new(vec![1]);
        let t = tuple![1i64, "k"];
        idx.insert(&t, 0);
        assert_eq!(idx.distinct_keys(), 1);
        idx.remove(&t, 0);
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn composite_key_index() {
        let mut idx = HashIndex::new(vec![0, 1]);
        let t = tuple![1i64, "a", 5i64];
        idx.insert(&t, 7);
        assert_eq!(idx.lookup(&[Value::Int(1), Value::str("a")]), &[7]);
        assert!(idx.lookup(&[Value::Int(1), Value::str("b")]).is_empty());
    }
}
