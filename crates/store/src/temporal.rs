//! Temporal relation versioning and the proactive-update rule.
//!
//! §2.3 of the paper: *"Each relation conceptually has multiple temporal
//! versions, one after every update. ... If an update to a relation affects
//! only the versions corresponding to sequence numbers not seen as yet, then
//! it is a proactive update; such an update does not affect the persistent
//! views."* Retroactive updates are excluded from the model.
//!
//! [`TemporalRelation`] keeps the *current* version materialized (that is
//! the only version maintenance ever joins against — the implicit temporal
//! join is always with the most current version, §6) and records a change
//! log tagged with the chronicle-group high-water mark at update time. The
//! log lets tests and the oracle reconstruct `version_at(seq)` — the
//! version a chronicle tuple with sequence number `seq` joins with
//! (Example 2.2) — and lets the API *reject* retroactive updates with a
//! typed error.

use chronicle_types::{ChronicleError, Result, Schema, SeqNo, Tuple, Value};

use crate::relation::Relation;

/// One logged change to a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationChange {
    /// A tuple was inserted.
    Insert(Tuple),
    /// A tuple was deleted.
    Delete(Tuple),
}

/// A relation plus its version history over the chronicle-group sequence
/// domain.
#[derive(Debug, Clone)]
pub struct TemporalRelation {
    current: Relation,
    /// State as of the compaction floor: the starting point for replays.
    base: Relation,
    /// `version_at` is answerable only for sequence numbers at or above
    /// this floor; compaction raises it.
    floor: SeqNo,
    /// `(high_water, change)`: the change was applied while the group
    /// high-water mark was `high_water`, so it is visible to chronicle
    /// tuples with sequence numbers **strictly greater** than `high_water`.
    /// Entries below the floor have been compacted into `base`.
    log: Vec<(SeqNo, RelationChange)>,
}

impl TemporalRelation {
    /// Create an empty temporal relation.
    pub fn new(schema: Schema) -> Self {
        TemporalRelation {
            current: Relation::new(schema.clone()),
            base: Relation::new(schema),
            floor: SeqNo::ZERO,
            log: Vec::new(),
        }
    }

    /// The current (latest) version. All view maintenance joins against
    /// this — by the proactive rule it equals the version any *future*
    /// chronicle tuple will see.
    pub fn current(&self) -> &Relation {
        &self.current
    }

    /// Mutable access used by index management (`add_index`).
    pub fn current_mut(&mut self) -> &mut Relation {
        &mut self.current
    }

    /// Stamp of the newest logged change (`SeqNo(0)` if none). Callers
    /// that derive a stamp from a group watermark clamp against this:
    /// equal stamps are always accepted, so a watermark that moved
    /// *backwards* (the stamping group was relocated to another shard)
    /// cannot wedge the relation.
    pub fn last_stamp(&self) -> SeqNo {
        self.log.last().map(|&(at, _)| at).unwrap_or(SeqNo(0))
    }

    /// Insert a tuple, recording the change as of group high-water `at`.
    pub fn insert(&mut self, tuple: Tuple, at: SeqNo) -> Result<()> {
        self.check_monotone(at)?;
        self.current.insert(tuple.clone())?;
        self.log.push((at, RelationChange::Insert(tuple)));
        Ok(())
    }

    /// Delete a tuple, recording the change as of group high-water `at`.
    pub fn delete(&mut self, tuple: &Tuple, at: SeqNo) -> Result<bool> {
        self.check_monotone(at)?;
        let removed = self.current.delete(tuple);
        if removed {
            self.log.push((at, RelationChange::Delete(tuple.clone())));
        }
        Ok(removed)
    }

    /// Modify the tuple with primary key `key` to become `new`, recording
    /// the change as of group high-water `at`.
    pub fn update_by_key(&mut self, key: &[Value], new: Tuple, at: SeqNo) -> Result<()> {
        self.check_monotone(at)?;
        let old = self
            .current
            .delete_by_key(key)
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "relation tuple",
                name: format!("{key:?}"),
            })?;
        self.current.insert(new.clone())?;
        self.log.push((at, RelationChange::Delete(old)));
        self.log.push((at, RelationChange::Insert(new)));
        Ok(())
    }

    /// Reject any update whose effect would precede an already-logged one —
    /// the change log must stay sorted by high-water mark so that
    /// `version_at` is well defined.
    fn check_monotone(&self, at: SeqNo) -> Result<()> {
        if let Some(&(last, _)) = self.log.last() {
            if at < last {
                return Err(ChronicleError::RetroactiveUpdate {
                    detail: format!(
                        "update effective at group high-water {at} precedes an update already logged at {last}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Explicitly attempt a *retroactive* update: one whose effect should
    /// apply to chronicle tuples at or before sequence number
    /// `effective_from`. The chronicle model excludes these (§2.3); if
    /// `effective_from` is not strictly greater than the group high-water
    /// mark `high_water`, this returns [`ChronicleError::RetroactiveUpdate`].
    ///
    /// This exists so applications get a *typed, explained* rejection
    /// rather than silent wrong answers — one of the model's selling points
    /// over ad-hoc procedural code.
    pub fn insert_effective(
        &mut self,
        tuple: Tuple,
        effective_from: SeqNo,
        high_water: SeqNo,
    ) -> Result<()> {
        if effective_from <= high_water {
            return Err(ChronicleError::RetroactiveUpdate {
                detail: format!(
                    "insert effective from {effective_from} but the chronicle group has already seen {high_water}; \
                     older chronicle tuples would need re-processing"
                ),
            });
        }
        self.insert(tuple, high_water)
    }

    /// Reconstruct the version of the relation visible to a chronicle tuple
    /// with sequence number `seq`: all changes logged at a high-water mark
    /// **strictly below** `seq` are applied (an update logged at high-water
    /// `h` is seen by tuples with `SN > h`).
    ///
    /// This is O(log size) replay and exists for the oracle/e12 tests; the
    /// maintenance fast path never calls it. Fails with
    /// [`ChronicleError::ChronicleNotStored`] for sequence numbers below
    /// the compaction floor (that history was reclaimed).
    pub fn version_at(&self, seq: SeqNo) -> Result<Relation> {
        if seq < self.floor {
            return Err(ChronicleError::ChronicleNotStored {
                detail: format!(
                    "relation history before {} was compacted away; requested version at {seq}",
                    self.floor
                ),
            });
        }
        let mut rel = self.base.clone();
        for (at, change) in &self.log {
            if *at >= seq {
                break;
            }
            match change {
                RelationChange::Insert(t) => {
                    // Replay ignores key violations that the live path
                    // already validated.
                    let _ = rel.insert(t.clone());
                }
                RelationChange::Delete(t) => {
                    rel.delete(t);
                }
            }
        }
        Ok(rel)
    }

    /// Compact the version history: sequence numbers below `seq` become
    /// unanswerable, the log entries they needed are folded into the base
    /// snapshot, and their space is reclaimed. Maintenance is unaffected —
    /// it only ever uses the current version; compaction bounds the memory
    /// of the *audit* path.
    pub fn compact_before(&mut self, seq: SeqNo) -> Result<usize> {
        if seq < self.floor {
            return Ok(0); // already compacted past there
        }
        let new_base = self.version_at(seq)?;
        let keep_from = self.log.partition_point(|(at, _)| *at < seq);
        let dropped = keep_from;
        self.log.drain(..keep_from);
        self.base = new_base;
        self.floor = seq;
        Ok(dropped)
    }

    /// The compaction floor: the oldest sequence number whose relation
    /// version is still reconstructable.
    pub fn floor(&self) -> SeqNo {
        self.floor
    }

    /// Number of logged changes.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The raw change log (read-only).
    pub fn log(&self) -> &[(SeqNo, RelationChange)] {
        &self.log
    }

    /// The base-version rows (the state at the compaction floor).
    pub fn base_rows(&self) -> Vec<Tuple> {
        self.base.to_vec()
    }

    /// Replace the full temporal state from a checkpoint image: base rows
    /// at `floor` plus the change log above it; the current version is
    /// rebuilt by replaying the log. Secondary indexes are not restored —
    /// callers that need them re-issue `add_index` after recovery.
    pub fn restore_state(
        &mut self,
        base_rows: Vec<Tuple>,
        floor: SeqNo,
        log: Vec<(SeqNo, RelationChange)>,
    ) -> Result<()> {
        if log.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(ChronicleError::Corruption {
                detail: "relation change log in checkpoint image is not sorted".into(),
            });
        }
        let schema = self.current.schema().clone();
        let mut base = Relation::new(schema.clone());
        for t in base_rows {
            t.check_against(&schema)?;
            base.insert(t)?;
        }
        let mut current = base.clone();
        for (_, change) in &log {
            match change {
                RelationChange::Insert(t) => {
                    t.check_against(&schema)?;
                    current.insert(t.clone())?;
                }
                RelationChange::Delete(t) => {
                    current.delete(t);
                }
            }
        }
        self.base = base;
        self.current = current;
        self.floor = floor;
        self.log = log;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, AttrType, Attribute};

    fn customers() -> TemporalRelation {
        let schema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("state", AttrType::Str),
            ],
            &["acct"],
        )
        .unwrap();
        TemporalRelation::new(schema)
    }

    #[test]
    fn current_tracks_latest() {
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(0)).unwrap();
        r.update_by_key(&[Value::Int(1)], tuple![1i64, "NY"], SeqNo(10))
            .unwrap();
        assert_eq!(
            r.current()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("NY")
        );
    }

    #[test]
    fn version_at_replays_history() {
        // Example 2.2: alice lives in NJ until the group high-water is 10,
        // then moves to NY. A flight with SN 5 must see NJ; SN 11 sees NJ
        // too (update logged at 10 is visible only to SN > 10), SN 12 sees NY.
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(0)).unwrap();
        r.update_by_key(&[Value::Int(1)], tuple![1i64, "NY"], SeqNo(10))
            .unwrap();

        let v5 = r.version_at(SeqNo(5)).unwrap();
        assert_eq!(
            v5.get_by_key(&[Value::Int(1)]).unwrap().get(1).as_str(),
            Some("NJ")
        );
        let v10 = r.version_at(SeqNo(10)).unwrap();
        assert_eq!(
            v10.get_by_key(&[Value::Int(1)]).unwrap().get(1).as_str(),
            Some("NJ")
        );
        let v11 = r.version_at(SeqNo(11)).unwrap();
        assert_eq!(
            v11.get_by_key(&[Value::Int(1)]).unwrap().get(1).as_str(),
            Some("NY")
        );
    }

    #[test]
    fn version_at_zero_is_initial_state_after_bootstrap() {
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(0)).unwrap();
        // Changes logged at high-water 0 are seen by SN >= 1.
        assert!(r.version_at(SeqNo(0)).unwrap().is_empty());
        assert_eq!(r.version_at(SeqNo(1)).unwrap().len(), 1);
    }

    #[test]
    fn out_of_order_log_rejected() {
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(10)).unwrap();
        let err = r.insert(tuple![2i64, "NY"], SeqNo(5)).unwrap_err();
        assert!(matches!(err, ChronicleError::RetroactiveUpdate { .. }));
    }

    #[test]
    fn retroactive_insert_rejected_with_typed_error() {
        let mut r = customers();
        let err = r
            .insert_effective(tuple![1i64, "NJ"], SeqNo(5), SeqNo(10))
            .unwrap_err();
        assert!(matches!(err, ChronicleError::RetroactiveUpdate { .. }));
        // Proactive variant succeeds.
        r.insert_effective(tuple![1i64, "NJ"], SeqNo(11), SeqNo(10))
            .unwrap();
        assert_eq!(r.current().len(), 1);
    }

    #[test]
    fn delete_logged_and_replayed() {
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(0)).unwrap();
        assert!(r.delete(&tuple![1i64, "NJ"], SeqNo(4)).unwrap());
        assert!(r.current().is_empty());
        assert_eq!(r.version_at(SeqNo(4)).unwrap().len(), 1);
        assert_eq!(r.version_at(SeqNo(5)).unwrap().len(), 0);
        assert_eq!(r.log_len(), 2);
    }

    #[test]
    fn compaction_reclaims_history_and_preserves_later_versions() {
        let mut r = customers();
        r.insert(tuple![1i64, "NJ"], SeqNo(0)).unwrap();
        r.update_by_key(&[Value::Int(1)], tuple![1i64, "NY"], SeqNo(10))
            .unwrap();
        r.update_by_key(&[Value::Int(1)], tuple![1i64, "CA"], SeqNo(20))
            .unwrap();
        assert_eq!(r.log_len(), 5);
        // Compact away everything before SN 11.
        let dropped = r.compact_before(SeqNo(11)).unwrap();
        assert_eq!(dropped, 3, "insert + first update folded into the base");
        assert_eq!(r.floor(), SeqNo(11));
        // Early versions are gone with a typed error...
        assert!(matches!(
            r.version_at(SeqNo(5)).unwrap_err(),
            ChronicleError::ChronicleNotStored { .. }
        ));
        // ...later versions still reconstruct exactly.
        assert_eq!(
            r.version_at(SeqNo(11))
                .unwrap()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("NY")
        );
        assert_eq!(
            r.version_at(SeqNo(21))
                .unwrap()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("CA")
        );
        // Current state untouched.
        assert_eq!(
            r.current()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("CA")
        );
        // Compacting backwards is a no-op.
        assert_eq!(r.compact_before(SeqNo(5)).unwrap(), 0);
        // Compacting everything leaves an empty log but a live base.
        r.compact_before(SeqNo(100)).unwrap();
        assert_eq!(r.log_len(), 0);
        assert_eq!(r.version_at(SeqNo(100)).unwrap().len(), 1);
    }

    #[test]
    fn update_missing_key_errors() {
        let mut r = customers();
        let err = r
            .update_by_key(&[Value::Int(9)], tuple![9i64, "NJ"], SeqNo(0))
            .unwrap_err();
        assert!(matches!(err, ChronicleError::NotFound { .. }));
    }
}
