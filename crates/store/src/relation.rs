//! In-memory relations with indexes.

use std::collections::HashMap;

use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value};

use crate::index::{key_of, BTreeIndex, HashIndex};

/// An in-memory relation: a set of tuples conforming to a [`Schema`], with
/// an optional primary-key hash index and any number of secondary B-tree
/// indexes.
///
/// Rows live in stable *slots* so indexes can reference them cheaply;
/// deleted slots are recycled through a free list.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    slots: Vec<Option<Tuple>>,
    free: Vec<usize>,
    len: usize,
    /// Primary-key index (present iff the schema declares a key).
    pk: Option<HashIndex>,
    /// Secondary indexes, keyed by their column lists.
    secondary: Vec<BTreeIndex>,
}

impl Relation {
    /// Create an empty relation. If the schema declares a key, a unique
    /// hash index on it is built automatically.
    pub fn new(schema: Schema) -> Self {
        let pk = schema.key().map(|k| HashIndex::new(k.to_vec()));
        Relation {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            pk,
            secondary: Vec::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a secondary B-tree index on the named attributes. Existing rows
    /// are indexed immediately. Returns the index's position, usable with
    /// [`Relation::lookup_secondary`].
    pub fn add_index(&mut self, attrs: &[&str]) -> Result<usize> {
        let cols: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let mut idx = BTreeIndex::new(cols);
        for (slot, t) in self.slots.iter().enumerate() {
            if let Some(t) = t {
                idx.insert(t, slot);
            }
        }
        self.secondary.push(idx);
        Ok(self.secondary.len() - 1)
    }

    /// Insert a tuple. Enforces schema conformance and, if a key is
    /// declared, key uniqueness.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        tuple.check_against(&self.schema)?;
        if let Some(pk) = &self.pk {
            let key = key_of(&tuple, pk.cols());
            if !pk.lookup(&key).is_empty() {
                return Err(ChronicleError::KeyViolation {
                    detail: format!("duplicate key {key:?}"),
                });
            }
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(tuple.clone());
                s
            }
            None => {
                self.slots.push(Some(tuple.clone()));
                self.slots.len() - 1
            }
        };
        if let Some(pk) = &mut self.pk {
            pk.insert(&tuple, slot);
        }
        for idx in &mut self.secondary {
            idx.insert(&tuple, slot);
        }
        self.len += 1;
        Ok(())
    }

    /// Delete the (first) tuple equal to `tuple`. Returns whether a tuple
    /// was removed.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        // Prefer the pk index to find the slot; fall back to a scan.
        let slot = if let Some(pk) = &self.pk {
            let key = key_of(tuple, pk.cols());
            pk.lookup(&key)
                .iter()
                .copied()
                .find(|&s| self.slots[s].as_ref() == Some(tuple))
        } else {
            self.slots.iter().position(|t| t.as_ref() == Some(tuple))
        };
        let Some(slot) = slot else { return false };
        self.remove_slot(slot);
        true
    }

    /// Delete the tuple with primary key `key`. Returns the removed tuple.
    pub fn delete_by_key(&mut self, key: &[Value]) -> Option<Tuple> {
        let pk = self.pk.as_ref()?;
        let slot = pk.lookup(key).first().copied()?;
        let tuple = self.slots[slot].clone();
        self.remove_slot(slot);
        tuple
    }

    fn remove_slot(&mut self, slot: usize) {
        if let Some(tuple) = self.slots[slot].take() {
            if let Some(pk) = &mut self.pk {
                pk.remove(&tuple, slot);
            }
            for idx in &mut self.secondary {
                idx.remove(&tuple, slot);
            }
            self.free.push(slot);
            self.len -= 1;
        }
    }

    /// Replace the tuple with primary key equal to `tuple`'s key by `tuple`
    /// (upsert). Returns the previous tuple, if any.
    pub fn upsert(&mut self, tuple: Tuple) -> Result<Option<Tuple>> {
        tuple.check_against(&self.schema)?;
        let Some(pk) = &self.pk else {
            return Err(ChronicleError::InvalidSchema(
                "upsert requires a primary key".into(),
            ));
        };
        let key = key_of(&tuple, pk.cols());
        let old = self.delete_by_key(&key);
        self.insert(tuple)?;
        Ok(old)
    }

    /// The tuple with primary key `key`, via the hash index (O(1) expected).
    pub fn get_by_key(&self, key: &[Value]) -> Option<&Tuple> {
        let pk = self.pk.as_ref()?;
        pk.lookup(key)
            .first()
            .and_then(|&slot| self.slots[slot].as_ref())
    }

    /// Tuples matching `key` on secondary index `idx` (ordered, O(log n)).
    pub fn lookup_secondary(&self, idx: usize, key: &[Value]) -> Vec<&Tuple> {
        self.secondary[idx]
            .lookup(key)
            .iter()
            .filter_map(|&s| self.slots[s].as_ref())
            .collect()
    }

    /// Tuples whose values at `cols` equal `key`, using the best available
    /// access path: primary key → secondary index → full scan. The second
    /// component of the return value reports whether an index was used
    /// (feeding the work-counter model of Theorem 4.2, where an index probe
    /// costs `log |R|` and a scan costs `|R|`).
    pub fn lookup_cols(&self, cols: &[usize], key: &[Value]) -> (Vec<&Tuple>, bool) {
        if let Some(pk) = &self.pk {
            if pk.cols() == cols {
                let hits = pk
                    .lookup(key)
                    .iter()
                    .filter_map(|&s| self.slots[s].as_ref())
                    .collect();
                return (hits, true);
            }
        }
        for idx in &self.secondary {
            if idx.cols() == cols {
                let hits = idx
                    .lookup(key)
                    .iter()
                    .filter_map(|&s| self.slots[s].as_ref())
                    .collect();
                return (hits, true);
            }
        }
        let hits = self
            .iter()
            .filter(|t| cols.iter().zip(key).all(|(&c, v)| t.get(c) == v))
            .collect();
        (hits, false)
    }

    /// Iterate over all tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// All tuples, cloned (handy for tests and snapshots).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// True iff `tuple` is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        if let Some(pk) = &self.pk {
            let key = key_of(tuple, pk.cols());
            return pk
                .lookup(&key)
                .iter()
                .any(|&s| self.slots[s].as_ref() == Some(tuple));
        }
        self.iter().any(|t| t == tuple)
    }

    /// Group the relation's tuples by the values at `cols` (test/oracle
    /// helper; persistent views maintain their own group index).
    pub fn group_by(&self, cols: &[usize]) -> HashMap<Vec<Value>, Vec<&Tuple>> {
        let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in self.iter() {
            groups.entry(key_of(t, cols)).or_default().push(t);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, AttrType, Attribute};

    fn customers() -> Relation {
        let schema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("name", AttrType::Str),
                Attribute::new("state", AttrType::Str),
            ],
            &["acct"],
        )
        .unwrap();
        Relation::new(schema)
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        r.insert(tuple![2i64, "bob", "NY"]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.get_by_key(&[Value::Int(1)]).unwrap().get(1).as_str(),
            Some("alice")
        );
        assert!(r.delete(&tuple![1i64, "alice", "NJ"]));
        assert_eq!(r.len(), 1);
        assert!(r.get_by_key(&[Value::Int(1)]).is_none());
        assert!(!r.delete(&tuple![1i64, "alice", "NJ"]));
    }

    #[test]
    fn key_violation_detected() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        let err = r.insert(tuple![1i64, "dup", "CA"]).unwrap_err();
        assert!(matches!(err, ChronicleError::KeyViolation { .. }));
    }

    #[test]
    fn schema_enforced_on_insert() {
        let mut r = customers();
        assert!(r.insert(tuple!["oops", "alice", "NJ"]).is_err());
        assert!(r.insert(tuple![1i64, "alice"]).is_err());
    }

    #[test]
    fn upsert_replaces() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        let old = r.upsert(tuple![1i64, "alice", "CA"]).unwrap();
        assert_eq!(old.unwrap().get(2).as_str(), Some("NJ"));
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.get_by_key(&[Value::Int(1)]).unwrap().get(2).as_str(),
            Some("CA")
        );
        // Upsert of a brand-new key inserts.
        assert!(r.upsert(tuple![3i64, "carol", "TX"]).unwrap().is_none());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn slots_recycled_after_delete() {
        let mut r = customers();
        for i in 0..100i64 {
            r.insert(tuple![i, "x", "NJ"]).unwrap();
        }
        for i in 0..50i64 {
            assert!(r.delete_by_key(&[Value::Int(i)]).is_some());
        }
        for i in 100..150i64 {
            r.insert(tuple![i, "y", "NY"]).unwrap();
        }
        assert_eq!(r.len(), 100);
        // Slot vector should not have grown past the original 100.
        assert!(r.slots.len() <= 100);
    }

    #[test]
    fn secondary_index_lookup() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        r.insert(tuple![2i64, "bob", "NJ"]).unwrap();
        r.insert(tuple![3i64, "carol", "NY"]).unwrap();
        let idx = r.add_index(&["state"]).unwrap();
        assert_eq!(r.lookup_secondary(idx, &[Value::str("NJ")]).len(), 2);
        assert_eq!(r.lookup_secondary(idx, &[Value::str("NY")]).len(), 1);
        assert!(r.lookup_secondary(idx, &[Value::str("TX")]).is_empty());
        // Index stays consistent across deletes.
        r.delete_by_key(&[Value::Int(1)]).unwrap();
        assert_eq!(r.lookup_secondary(idx, &[Value::str("NJ")]).len(), 1);
    }

    #[test]
    fn lookup_cols_reports_access_path() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        let (hits, indexed) = r.lookup_cols(&[0], &[Value::Int(1)]);
        assert_eq!(hits.len(), 1);
        assert!(indexed, "pk lookup should be indexed");
        let (hits, indexed) = r.lookup_cols(&[2], &[Value::str("NJ")]);
        assert_eq!(hits.len(), 1);
        assert!(!indexed, "no index on state yet");
        r.add_index(&["state"]).unwrap();
        let (_, indexed) = r.lookup_cols(&[2], &[Value::str("NJ")]);
        assert!(indexed, "secondary index should now be used");
    }

    #[test]
    fn contains_and_group_by() {
        let mut r = customers();
        r.insert(tuple![1i64, "alice", "NJ"]).unwrap();
        r.insert(tuple![2i64, "bob", "NJ"]).unwrap();
        assert!(r.contains(&tuple![1i64, "alice", "NJ"]));
        assert!(!r.contains(&tuple![1i64, "alice", "NY"]));
        let groups = r.group_by(&[2]);
        assert_eq!(groups[&vec![Value::str("NJ")]].len(), 2);
    }

    #[test]
    fn keyless_relation_allows_duplicates_by_scan() {
        let schema = Schema::relation(vec![Attribute::new("x", AttrType::Int)]).unwrap();
        let mut r = Relation::new(schema);
        r.insert(tuple![5i64]).unwrap();
        r.insert(tuple![5i64]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.delete(&tuple![5i64]));
        assert_eq!(r.len(), 1);
    }
}
