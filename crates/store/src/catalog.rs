//! The catalog: name resolution and ownership of chronicles, relations and
//! groups.
//!
//! The catalog enforces the two cross-object invariants of the model:
//!
//! 1. group-level sequence-number monotonicity — an append to *any*
//!    chronicle in a group advances the group's single high-water mark
//!    (§4), and
//! 2. the proactive-update rule — relation updates are stamped with the
//!    relevant group high-water mark so that [`crate::TemporalRelation`]
//!    can answer `version_at` queries and reject retroactive updates
//!    (§2.3).

use std::collections::HashMap;

use chronicle_types::{
    ChronicleError, ChronicleId, Chronon, GroupId, RelationId, Result, Schema, SeqNo, Tuple, Value,
};

use crate::chronicle::{Chronicle, Retention};
use crate::group::ChronicleGroup;
use crate::temporal::TemporalRelation;

/// Owner of all chronicles, relations, and chronicle groups.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    groups: Vec<ChronicleGroup>,
    chronicles: Vec<Chronicle>,
    relations: Vec<TemporalRelation>,
    group_names: HashMap<String, GroupId>,
    chronicle_names: HashMap<String, ChronicleId>,
    relation_names: HashMap<String, RelationId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- groups ---------------------------------------------------------

    /// Create a chronicle group.
    pub fn create_group(&mut self, name: &str) -> Result<GroupId> {
        if self.group_names.contains_key(name) {
            return Err(ChronicleError::AlreadyExists {
                kind: "chronicle group",
                name: name.into(),
            });
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(ChronicleGroup::new(id, name));
        self.group_names.insert(name.into(), id);
        Ok(id)
    }

    /// Resolve a group by name.
    pub fn group_id(&self, name: &str) -> Result<GroupId> {
        self.group_names
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "chronicle group",
                name: name.into(),
            })
    }

    /// The group with this id.
    pub fn group(&self, id: GroupId) -> &ChronicleGroup {
        &self.groups[id.0 as usize]
    }

    /// Mutable group access.
    pub fn group_mut(&mut self, id: GroupId) -> &mut ChronicleGroup {
        &mut self.groups[id.0 as usize]
    }

    /// All groups, in id order.
    pub fn groups(&self) -> &[ChronicleGroup] {
        &self.groups
    }

    // ---- chronicles -----------------------------------------------------

    /// Create a chronicle inside `group`.
    pub fn create_chronicle(
        &mut self,
        name: &str,
        group: GroupId,
        schema: Schema,
        retention: Retention,
    ) -> Result<ChronicleId> {
        if self.chronicle_names.contains_key(name) {
            return Err(ChronicleError::AlreadyExists {
                kind: "chronicle",
                name: name.into(),
            });
        }
        if group.0 as usize >= self.groups.len() {
            return Err(ChronicleError::NotFound {
                kind: "chronicle group",
                name: group.to_string(),
            });
        }
        let id = ChronicleId(self.chronicles.len() as u32);
        self.chronicles
            .push(Chronicle::new(id, name, group, schema, retention)?);
        self.chronicle_names.insert(name.into(), id);
        Ok(id)
    }

    /// Resolve a chronicle by name.
    pub fn chronicle_id(&self, name: &str) -> Result<ChronicleId> {
        self.chronicle_names
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "chronicle",
                name: name.into(),
            })
    }

    /// The chronicle with this id.
    pub fn chronicle(&self, id: ChronicleId) -> &Chronicle {
        &self.chronicles[id.0 as usize]
    }

    /// All chronicles.
    pub fn chronicles(&self) -> &[Chronicle] {
        &self.chronicles
    }

    /// Mutable chronicle access (restart/restore path).
    pub fn chronicle_mut(&mut self, id: ChronicleId) -> &mut Chronicle {
        &mut self.chronicles[id.0 as usize]
    }

    /// The chronicles belonging to one group, in creation order — the unit
    /// a maintenance shard owns (Thm 4.1: joins never cross a group, so a
    /// group's chronicles and the views over them are independent of every
    /// other group's).
    pub fn chronicles_in_group(&self, group: GroupId) -> impl Iterator<Item = &Chronicle> {
        self.chronicles.iter().filter(move |c| c.group() == group)
    }

    /// Append a batch of tuples to chronicle `id` at temporal instant `at`.
    ///
    /// The group allocates the next sequence number; every tuple's
    /// sequencing attribute must already carry that number (use
    /// [`Catalog::next_seq`] to obtain it when building the batch), keeping
    /// tuple contents and admitted SNs honest. Returns the admitted SN.
    pub fn append(&mut self, id: ChronicleId, at: Chronon, tuples: &[Tuple]) -> Result<SeqNo> {
        let group = self.chronicles[id.0 as usize].group();
        let seq = self.groups[group.0 as usize].next_seq();
        self.append_at(id, seq, at, tuples)
    }

    /// Append a batch with an explicit (possibly sparse) sequence number.
    pub fn append_at(
        &mut self,
        id: ChronicleId,
        seq: SeqNo,
        at: Chronon,
        tuples: &[Tuple],
    ) -> Result<SeqNo> {
        let group = self.chronicles[id.0 as usize].group();
        // Validate the batch fully before admitting the SN so a failed
        // append leaves no trace.
        {
            let c = &self.chronicles[id.0 as usize];
            let sp = c.seq_pos();
            for t in tuples {
                t.check_against(c.schema())?;
                if t.seq_at(sp)? != seq {
                    return Err(ChronicleError::NonMonotonicAppend {
                        high_water: seq.0,
                        attempted: t.seq_at(sp)?.0,
                    });
                }
            }
        }
        self.groups[group.0 as usize].admit(seq, at)?;
        self.chronicles[id.0 as usize].record_batch(seq, tuples)?;
        Ok(seq)
    }

    /// The sequence number the next append to `id`'s group will receive.
    pub fn next_seq(&self, id: ChronicleId) -> SeqNo {
        let group = self.chronicles[id.0 as usize].group();
        self.groups[group.0 as usize].next_seq()
    }

    // ---- relations ------------------------------------------------------

    /// Create a relation.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> Result<RelationId> {
        if self.relation_names.contains_key(name) {
            return Err(ChronicleError::AlreadyExists {
                kind: "relation",
                name: name.into(),
            });
        }
        if schema.is_chronicle() {
            return Err(ChronicleError::InvalidSchema(
                "relations must not have a sequencing attribute".into(),
            ));
        }
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(TemporalRelation::new(schema));
        self.relation_names.insert(name.into(), id);
        Ok(id)
    }

    /// Resolve a relation by name.
    pub fn relation_id(&self, name: &str) -> Result<RelationId> {
        self.relation_names
            .get(name)
            .copied()
            .ok_or_else(|| ChronicleError::NotFound {
                kind: "relation",
                name: name.into(),
            })
    }

    /// The relation with this id.
    pub fn relation(&self, id: RelationId) -> &TemporalRelation {
        &self.relations[id.0 as usize]
    }

    /// Mutable relation access (index management).
    pub fn relation_mut(&mut self, id: RelationId) -> &mut TemporalRelation {
        &mut self.relations[id.0 as usize]
    }

    /// Insert into relation `id`, stamped with group `group`'s current
    /// high-water mark (a proactive update by construction: it only affects
    /// chronicle tuples appended later).
    pub fn relation_insert(&mut self, id: RelationId, group: GroupId, tuple: Tuple) -> Result<()> {
        let hw = self.groups[group.0 as usize].high_water();
        self.relations[id.0 as usize].insert(tuple, hw)
    }

    /// Delete from relation `id`, stamped with group `group`'s high-water.
    pub fn relation_delete(
        &mut self,
        id: RelationId,
        group: GroupId,
        tuple: &Tuple,
    ) -> Result<bool> {
        let hw = self.groups[group.0 as usize].high_water();
        self.relations[id.0 as usize].delete(tuple, hw)
    }

    /// Update by key in relation `id`, stamped with group `group`'s
    /// high-water.
    pub fn relation_update(
        &mut self,
        id: RelationId,
        group: GroupId,
        key: &[Value],
        new: Tuple,
    ) -> Result<()> {
        let hw = self.groups[group.0 as usize].high_water();
        self.relations[id.0 as usize].update_by_key(key, new, hw)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Iterate relations with their names, in id order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &TemporalRelation)> + '_ {
        let mut named: Vec<(&str, RelationId)> = self
            .relation_names
            .iter()
            .map(|(n, &id)| (n.as_str(), id))
            .collect();
        named.sort_by_key(|&(_, id)| id.0);
        named
            .into_iter()
            .map(move |(n, id)| (n, &self.relations[id.0 as usize]))
    }

    /// Name of chronicle `id` (for diagnostics).
    pub fn chronicle_name(&self, id: ChronicleId) -> &str {
        self.chronicles[id.0 as usize].name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, AttrType, Attribute};

    fn call_schema() -> Schema {
        Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
            ],
            "sn",
        )
        .unwrap()
    }

    fn setup() -> (Catalog, GroupId, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("main").unwrap();
        let c = cat
            .create_chronicle("calls", g, call_schema(), Retention::All)
            .unwrap();
        (cat, g, c)
    }

    #[test]
    fn name_resolution() {
        let (cat, g, c) = setup();
        assert_eq!(cat.group_id("main").unwrap(), g);
        assert_eq!(cat.chronicle_id("calls").unwrap(), c);
        assert!(cat.chronicle_id("nope").is_err());
        assert!(cat.group_id("nope").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut cat, g, _) = setup();
        assert!(matches!(
            cat.create_group("main").unwrap_err(),
            ChronicleError::AlreadyExists { .. }
        ));
        assert!(matches!(
            cat.create_chronicle("calls", g, call_schema(), Retention::All)
                .unwrap_err(),
            ChronicleError::AlreadyExists { .. }
        ));
    }

    #[test]
    fn append_allocates_group_seq() {
        let (mut cat, _, c) = setup();
        let s1 = cat
            .append(c, Chronon(1), &[tuple![SeqNo(1), 100i64]])
            .unwrap();
        assert_eq!(s1, SeqNo(1));
        let s2 = cat
            .append(c, Chronon(2), &[tuple![SeqNo(2), 100i64]])
            .unwrap();
        assert_eq!(s2, SeqNo(2));
        assert_eq!(cat.chronicle(c).total_appended(), 2);
    }

    #[test]
    fn group_monotonicity_spans_chronicles() {
        let (mut cat, g, c1) = setup();
        let schema2 = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("x", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let c2 = cat
            .create_chronicle("other", g, schema2, Retention::All)
            .unwrap();
        cat.append(c1, Chronon(1), &[tuple![SeqNo(1), 5i64]])
            .unwrap();
        // Group high-water is now 1, so c2's next SN is 2, not 1.
        assert_eq!(cat.next_seq(c2), SeqNo(2));
        cat.append(c2, Chronon(2), &[tuple![SeqNo(2), 6i64]])
            .unwrap();
        // Explicit stale SN into c1 is rejected at the group level.
        let err = cat
            .append_at(c1, SeqNo(2), Chronon(3), &[tuple![SeqNo(2), 7i64]])
            .unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
    }

    #[test]
    fn failed_append_leaves_no_trace() {
        let (mut cat, g, c) = setup();
        // Tuple SN doesn't match the allocated SN -> rejected before admit.
        let err = cat
            .append(c, Chronon(1), &[tuple![SeqNo(9), 5i64]])
            .unwrap_err();
        assert!(matches!(err, ChronicleError::NonMonotonicAppend { .. }));
        assert_eq!(cat.group(g).high_water(), SeqNo::ZERO);
        assert_eq!(cat.chronicle(c).total_appended(), 0);
    }

    #[test]
    fn sparse_explicit_seq_numbers() {
        let (mut cat, g, c) = setup();
        cat.append_at(c, SeqNo(10), Chronon(1), &[tuple![SeqNo(10), 5i64]])
            .unwrap();
        cat.append_at(c, SeqNo(100), Chronon(2), &[tuple![SeqNo(100), 6i64]])
            .unwrap();
        assert_eq!(cat.group(g).high_water(), SeqNo(100));
    }

    #[test]
    fn relation_updates_are_stamped_proactively() {
        let (mut cat, g, c) = setup();
        let rschema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("state", AttrType::Str),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("customers", rschema).unwrap();
        cat.relation_insert(r, g, tuple![1i64, "NJ"]).unwrap();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 1i64]])
            .unwrap();
        cat.relation_update(r, g, &[Value::Int(1)], tuple![1i64, "NY"])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 1i64]])
            .unwrap();
        // SN 1 saw NJ; SN 2 sees NY.
        let rel = cat.relation(r);
        assert_eq!(
            rel.version_at(SeqNo(1))
                .unwrap()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("NJ")
        );
        assert_eq!(
            rel.version_at(SeqNo(2))
                .unwrap()
                .get_by_key(&[Value::Int(1)])
                .unwrap()
                .get(1)
                .as_str(),
            Some("NY")
        );
    }

    #[test]
    fn chronicle_schema_rejected_as_relation() {
        let mut cat = Catalog::new();
        assert!(cat.create_relation("bad", call_schema()).is_err());
    }
}
