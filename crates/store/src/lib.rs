//! Storage substrate for the chronicle data model.
//!
//! The paper (Def. 2.1) models a chronicle database system as a quadruple
//! *(C, R, L, V)*. This crate provides the first two components plus the
//! plumbing they need:
//!
//! * [`Relation`] — an in-memory relation with optional primary key and
//!   secondary indexes,
//! * [`TemporalRelation`] — a relation that additionally records its version
//!   history against the chronicle-group sequence domain, enforcing the
//!   *proactive update* rule of §2.3 and supporting `version_at(seq)`
//!   reconstruction (used by the oracle tests for the implicit temporal
//!   join of Example 2.2),
//! * [`Chronicle`] — an append-only sequence of tuples with a configurable
//!   [`Retention`] window (the paper stores at most "some latest time
//!   window" of each chronicle),
//! * [`ChronicleGroup`] — the shared sequence-number domain: monotonicity is
//!   enforced per *group*, not per chronicle (§4), and the group also keeps
//!   the monotone `SeqNo → Chronon` mapping that periodic views (§5.1) are
//!   defined over,
//! * [`Catalog`] — name-resolution and ownership of all of the above.

#![warn(missing_docs)]

mod catalog;
mod chronicle;
mod chunk;
mod group;
mod index;
mod relation;
mod temporal;

pub use catalog::Catalog;
pub use chronicle::{Chronicle, Retention};
pub use chunk::{Chunk, ChunkArena, ColumnSlice, ColumnVec};
pub use group::ChronicleGroup;
pub use index::{BTreeIndex, HashIndex};
pub use relation::Relation;
pub use temporal::{RelationChange, TemporalRelation};
