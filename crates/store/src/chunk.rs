//! Typed columnar chunks: the batch currency of vectorized maintenance.
//!
//! An append batch arrives as row-major [`Tuple`]s; the delta kernels in
//! `chronicle-algebra` want to evaluate predicates column-at-a-time over
//! unboxed values. A [`Chunk`] transposes a batch into one typed
//! [`ColumnVec`] per attribute, with a per-column null mask and a `Mixed`
//! escape hatch for columns whose rows carry more than one runtime type
//! (a FLOAT column may legally hold `Int` rows, and any column may hold
//! NULLs — the typed lanes only engage when the runtime representation is
//! uniform, so reconstructed values are byte-identical to the originals).
//!
//! Column vectors are arena-backed: a [`ChunkArena`] keeps the buffers of
//! recycled chunks and re-issues them to the next batch, so steady-state
//! ingestion reuses allocations instead of growing fresh vectors per
//! append.

use std::sync::Arc;

use chronicle_types::{SeqNo, Tuple, Value};

/// One column of a [`Chunk`]: the runtime-uniform typed lanes, or `Mixed`
/// when rows disagree on their runtime type.
///
/// In the typed lanes `nulls` is either empty (no NULLs anywhere in the
/// column) or exactly `vals.len()` long, with `true` marking a NULL row
/// whose lane slot is a meaningless filler.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// All non-null rows are `Value::Bool`.
    Bool {
        /// Lane values (filler where `nulls` is set).
        vals: Vec<bool>,
        /// Null mask: empty, or one flag per row.
        nulls: Vec<bool>,
    },
    /// All non-null rows are `Value::Int`.
    Int {
        /// Lane values (filler where `nulls` is set).
        vals: Vec<i64>,
        /// Null mask: empty, or one flag per row.
        nulls: Vec<bool>,
    },
    /// All non-null rows are `Value::Float`.
    Float {
        /// Lane values (filler where `nulls` is set).
        vals: Vec<f64>,
        /// Null mask: empty, or one flag per row.
        nulls: Vec<bool>,
    },
    /// All non-null rows are `Value::Str` (shared, so clones are cheap).
    Str {
        /// Lane values (filler where `nulls` is set).
        vals: Vec<Arc<str>>,
        /// Null mask: empty, or one flag per row.
        nulls: Vec<bool>,
    },
    /// All non-null rows are `Value::Seq`.
    Seq {
        /// Lane values (filler where `nulls` is set).
        vals: Vec<u64>,
        /// Null mask: empty, or one flag per row.
        nulls: Vec<bool>,
    },
    /// Rows carry more than one runtime type (or the column is all-NULL);
    /// kept boxed, and kernels fall back to per-value comparison.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Bool { vals, .. } => vals.len(),
            ColumnVec::Int { vals, .. } => vals.len(),
            ColumnVec::Float { vals, .. } => vals.len(),
            ColumnVec::Str { vals, .. } => vals.len(),
            ColumnVec::Seq { vals, .. } => vals.len(),
            ColumnVec::Mixed(vals) => vals.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A borrowed view of the column.
    pub fn slice(&self) -> ColumnSlice<'_> {
        match self {
            ColumnVec::Bool { vals, nulls } => ColumnSlice::Bool { vals, nulls },
            ColumnVec::Int { vals, nulls } => ColumnSlice::Int { vals, nulls },
            ColumnVec::Float { vals, nulls } => ColumnSlice::Float { vals, nulls },
            ColumnVec::Str { vals, nulls } => ColumnSlice::Str { vals, nulls },
            ColumnVec::Seq { vals, nulls } => ColumnSlice::Seq { vals, nulls },
            ColumnVec::Mixed(vals) => ColumnSlice::Mixed(vals),
        }
    }

    /// Reconstruct the row's original [`Value`] (byte-identical: the typed
    /// lanes only hold runtime-uniform rows).
    pub fn value_at(&self, row: usize) -> Value {
        fn masked(nulls: &[bool], row: usize) -> bool {
            !nulls.is_empty() && nulls[row]
        }
        match self {
            ColumnVec::Bool { vals, nulls } if !masked(nulls, row) => Value::Bool(vals[row]),
            ColumnVec::Int { vals, nulls } if !masked(nulls, row) => Value::Int(vals[row]),
            ColumnVec::Float { vals, nulls } if !masked(nulls, row) => Value::Float(vals[row]),
            ColumnVec::Str { vals, nulls } if !masked(nulls, row) => {
                Value::Str(Arc::clone(&vals[row]))
            }
            ColumnVec::Seq { vals, nulls } if !masked(nulls, row) => Value::Seq(SeqNo(vals[row])),
            ColumnVec::Mixed(vals) => vals[row].clone(),
            _ => Value::Null,
        }
    }

    /// Clear the buffers for reuse, keeping their capacity.
    fn clear(&mut self) {
        match self {
            ColumnVec::Bool { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            ColumnVec::Int { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            ColumnVec::Float { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            ColumnVec::Str { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            ColumnVec::Seq { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            ColumnVec::Mixed(vals) => vals.clear(),
        }
    }
}

/// A borrowed, typed view of one [`Chunk`] column — what the vectorized
/// kernels actually loop over.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Uniform boolean lane.
    Bool {
        /// Lane values.
        vals: &'a [bool],
        /// Null mask (empty = no NULLs).
        nulls: &'a [bool],
    },
    /// Uniform integer lane.
    Int {
        /// Lane values.
        vals: &'a [i64],
        /// Null mask (empty = no NULLs).
        nulls: &'a [bool],
    },
    /// Uniform float lane.
    Float {
        /// Lane values.
        vals: &'a [f64],
        /// Null mask (empty = no NULLs).
        nulls: &'a [bool],
    },
    /// Uniform string lane.
    Str {
        /// Lane values.
        vals: &'a [Arc<str>],
        /// Null mask (empty = no NULLs).
        nulls: &'a [bool],
    },
    /// Uniform sequence-number lane.
    Seq {
        /// Lane values.
        vals: &'a [u64],
        /// Null mask (empty = no NULLs).
        nulls: &'a [bool],
    },
    /// Boxed fallback (mixed runtime types or all-NULL).
    Mixed(&'a [Value]),
}

impl ColumnSlice<'_> {
    /// True iff the row is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            ColumnSlice::Bool { nulls, .. }
            | ColumnSlice::Int { nulls, .. }
            | ColumnSlice::Float { nulls, .. }
            | ColumnSlice::Str { nulls, .. }
            | ColumnSlice::Seq { nulls, .. } => !nulls.is_empty() && nulls[row],
            ColumnSlice::Mixed(vals) => vals[row].is_null(),
        }
    }
}

/// A batch of tuples transposed into typed column vectors. All columns
/// have the same length (`len()` rows); `value_at` reconstructs the
/// original row values exactly.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    len: usize,
    columns: Vec<ColumnVec>,
}

impl Chunk {
    /// Transpose a row-major batch. All tuples must share one arity
    /// (guaranteed for tuples admitted by a chronicle schema); an empty
    /// batch yields an empty chunk with no columns.
    pub fn from_tuples(tuples: &[Tuple]) -> Chunk {
        ChunkArena::default().build(tuples)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (0 for an empty chunk).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The `col`-th column.
    pub fn column(&self, col: usize) -> &ColumnVec {
        &self.columns[col]
    }

    /// Borrowed view of the `col`-th column.
    pub fn slice(&self, col: usize) -> ColumnSlice<'_> {
        self.columns[col].slice()
    }

    /// Reconstruct one cell's original value.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }
}

/// Recycles chunk column buffers across batches. Typical use: one arena
/// per maintainer; `build` a chunk per append event, `recycle` it after
/// the views consumed it, and the next batch inherits the capacity.
#[derive(Debug, Default)]
pub struct ChunkArena {
    free: Vec<ColumnVec>,
}

impl ChunkArena {
    /// A fresh arena with no pooled buffers.
    pub fn new() -> ChunkArena {
        ChunkArena::default()
    }

    /// Buffers currently pooled (for tests / introspection).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Return a chunk's buffers to the pool.
    pub fn recycle(&mut self, chunk: Chunk) {
        for mut col in chunk.columns {
            col.clear();
            self.free.push(col);
        }
    }

    /// Take a pooled buffer of the wanted shape, if one exists.
    fn take(&mut self, probe: &dyn Fn(&ColumnVec) -> bool) -> Option<ColumnVec> {
        let idx = self.free.iter().position(probe)?;
        Some(self.free.swap_remove(idx))
    }

    /// Transpose a row-major batch into a chunk, reusing pooled buffers.
    pub fn build(&mut self, tuples: &[Tuple]) -> Chunk {
        let Some(first) = tuples.first() else {
            return Chunk::default();
        };
        let arity = first.arity();
        let columns = (0..arity).map(|c| self.build_column(tuples, c)).collect();
        Chunk {
            len: tuples.len(),
            columns,
        }
    }

    fn build_column(&mut self, tuples: &[Tuple], col: usize) -> ColumnVec {
        // One scan to classify the column's runtime shape: the tag of the
        // first non-null row, whether any row is NULL, and whether a later
        // row disagrees on the tag (→ Mixed).
        let mut tag: Option<u8> = None;
        let mut any_null = false;
        let mut mixed = false;
        for t in tuples {
            match value_tag(t.get(col)) {
                None => any_null = true,
                Some(vt) => match tag {
                    None => tag = Some(vt),
                    Some(existing) if existing != vt => {
                        mixed = true;
                        break;
                    }
                    Some(_) => {}
                },
            }
        }
        let Some(tag) = tag.filter(|_| !mixed) else {
            // Mixed runtime types, or every row NULL: keep the rows boxed.
            let mut vals = match self.take(&|c| matches!(c, ColumnVec::Mixed(_))) {
                Some(ColumnVec::Mixed(v)) => v,
                _ => Vec::new(),
            };
            vals.extend(tuples.iter().map(|t| t.get(col).clone()));
            return ColumnVec::Mixed(vals);
        };
        // Second pass fills the typed lane; NULL rows get a lane filler
        // and a mask bit.
        macro_rules! fill {
            ($variant:ident, $filler:expr, $extract:expr) => {{
                let (mut vals, mut nulls) =
                    match self.take(&|c| matches!(c, ColumnVec::$variant { .. })) {
                        Some(ColumnVec::$variant { vals, nulls }) => (vals, nulls),
                        _ => (Vec::new(), Vec::new()),
                    };
                if any_null {
                    nulls.resize(tuples.len(), false);
                }
                for (i, t) in tuples.iter().enumerate() {
                    let v = t.get(col);
                    if v.is_null() {
                        nulls[i] = true;
                        vals.push($filler);
                    } else {
                        vals.push($extract(v));
                    }
                }
                ColumnVec::$variant { vals, nulls }
            }};
        }
        match tag {
            1 => fill!(Bool, false, |v: &Value| v.as_bool().expect("uniform bool")),
            2 => fill!(Int, 0i64, |v: &Value| v.as_int().expect("uniform int")),
            3 => fill!(Float, 0.0f64, |v: &Value| match v {
                Value::Float(f) => *f,
                _ => unreachable!("uniform float"),
            }),
            4 => fill!(Str, Arc::from(""), |v: &Value| match v {
                Value::Str(s) => Arc::clone(s),
                _ => unreachable!("uniform str"),
            }),
            _ => fill!(Seq, 0u64, |v: &Value| v.as_seq().expect("uniform seq").0),
        }
    }
}

/// Runtime tag of a value (`None` for NULL), independent of the declared
/// attribute type — a FLOAT column may hold `Int` rows.
fn value_tag(v: &Value) -> Option<u8> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(1),
        Value::Int(_) => Some(2),
        Value::Float(_) => Some(3),
        Value::Str(_) => Some(4),
        Value::Seq(_) => Some(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn rows() -> Vec<Tuple> {
        vec![
            tuple![SeqNo(1), 10i64, 1.5f64, "a"],
            tuple![SeqNo(1), 20i64, 2.5f64, "b"],
            tuple![SeqNo(1), 30i64, 3.5f64, "c"],
        ]
    }

    #[test]
    fn transposes_and_reconstructs_exactly() {
        let rows = rows();
        let chunk = Chunk::from_tuples(&rows);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.arity(), 4);
        assert!(matches!(chunk.column(0), ColumnVec::Seq { .. }));
        assert!(matches!(chunk.column(1), ColumnVec::Int { .. }));
        assert!(matches!(chunk.column(2), ColumnVec::Float { .. }));
        assert!(matches!(chunk.column(3), ColumnVec::Str { .. }));
        for (i, t) in rows.iter().enumerate() {
            for c in 0..4 {
                assert_eq!(&chunk.value_at(i, c), t.get(c));
            }
        }
    }

    #[test]
    fn int_rows_in_a_float_column_stay_ints() {
        // A FLOAT attribute may legally hold Int rows; the column must
        // demote to Mixed so reconstruction is byte-identical (Int(2) and
        // Float(2.0) compare equal but encode differently).
        let rows = vec![
            tuple![SeqNo(1), Value::Float(1.5)],
            tuple![SeqNo(1), Value::Int(2)],
        ];
        let chunk = Chunk::from_tuples(&rows);
        assert!(matches!(chunk.column(1), ColumnVec::Mixed(_)));
        assert_eq!(chunk.value_at(1, 1), Value::Int(2));
        assert!(matches!(chunk.value_at(1, 1), Value::Int(2)));
    }

    #[test]
    fn nulls_mask_the_typed_lane() {
        let rows = vec![
            tuple![SeqNo(1), 10i64],
            tuple![SeqNo(1), Value::Null],
            tuple![SeqNo(1), 30i64],
        ];
        let chunk = Chunk::from_tuples(&rows);
        assert!(matches!(chunk.column(1), ColumnVec::Int { .. }));
        assert_eq!(chunk.value_at(0, 1), Value::Int(10));
        assert!(chunk.value_at(1, 1).is_null());
        assert!(chunk.slice(1).is_null(1));
        assert!(!chunk.slice(1).is_null(2));
    }

    #[test]
    fn all_null_column_is_mixed() {
        let rows = vec![tuple![SeqNo(1), Value::Null]];
        let chunk = Chunk::from_tuples(&rows);
        assert!(matches!(chunk.column(1), ColumnVec::Mixed(_)));
        assert!(chunk.value_at(0, 1).is_null());
    }

    #[test]
    fn empty_batch_is_an_empty_chunk() {
        let chunk = Chunk::from_tuples(&[]);
        assert!(chunk.is_empty());
        assert_eq!(chunk.arity(), 0);
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = ChunkArena::new();
        let chunk = arena.build(&rows());
        assert_eq!(arena.pooled(), 0);
        arena.recycle(chunk);
        assert_eq!(arena.pooled(), 4);
        // The next build drains matching buffers from the pool.
        let chunk = arena.build(&rows());
        assert_eq!(arena.pooled(), 0);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.value_at(2, 1), Value::Int(30));
    }
}
