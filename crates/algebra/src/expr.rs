//! Chronicle-algebra expressions (Definition 4.1) with eager validation.
//!
//! Every builder returns `Result`: an expression that exists is an
//! expression that is *in the language*. The constructions Theorem 4.3
//! proves must be excluded — SN-dropping projection, SN-free grouping,
//! chronicle×chronicle cross products, non-equi SN joins — are rejected at
//! build time with [`ChronicleError::NotInLanguage`] errors naming the
//! theorem's reason. (They remain *expressible* in the [`crate::ra`]
//! module, which is exactly the paper's point: RA can say them, but then
//! maintenance needs the chronicle.)

use std::fmt;
use std::sync::Arc;

use chronicle_store::Chronicle;
use chronicle_types::{ChronicleError, ChronicleId, GroupId, RelationId, Result, Schema, Tuple};

use crate::aggregate::AggSpec;
use crate::classify::{CostModel, LanguageFragment};
use crate::predicate::{CmpOp, Predicate};

/// A reference to a base chronicle: identity plus the schema snapshot the
/// expression was validated against.
#[derive(Debug, Clone)]
pub struct ChronicleRef {
    /// The chronicle's catalog id.
    pub id: ChronicleId,
    /// The chronicle group (operand compatibility is per group, §4).
    pub group: GroupId,
    /// Schema snapshot.
    pub schema: Schema,
    /// Name, for diagnostics.
    pub name: String,
}

impl ChronicleRef {
    /// Build a reference from a stored chronicle.
    pub fn of(c: &Chronicle) -> Self {
        ChronicleRef {
            id: c.id(),
            group: c.group(),
            schema: c.schema().clone(),
            name: c.name().to_string(),
        }
    }
}

/// A reference to a base relation.
#[derive(Debug, Clone)]
pub struct RelationRef {
    /// The relation's catalog id.
    pub id: RelationId,
    /// Schema snapshot (carries the declared key, which CA⋈ relies on).
    pub schema: Schema,
    /// Name, for diagnostics.
    pub name: String,
}

impl RelationRef {
    /// Build a reference from a schema + id.
    pub fn new(id: RelationId, schema: Schema, name: impl Into<String>) -> Self {
        RelationRef {
            id,
            schema,
            name: name.into(),
        }
    }
}

/// The operator node. Kept crate-private so every instance is built through
/// the validating constructors on [`CaExpr`].
#[derive(Debug, Clone)]
pub(crate) enum CaNode {
    /// A base chronicle.
    Base(ChronicleRef),
    /// σ_p — selection by a disjunctive predicate.
    Select { input: Box<CaExpr>, pred: Predicate },
    /// Π — projection; the column list always contains the SN.
    Project {
        input: Box<CaExpr>,
        cols: Vec<usize>,
    },
    /// Natural equijoin of two chronicles on the sequencing attribute; the
    /// right-hand SN column is projected out (`right_keep` lists the kept
    /// right columns).
    JoinSeq {
        left: Box<CaExpr>,
        right: Box<CaExpr>,
        right_keep: Vec<usize>,
    },
    /// Union of same-typed chronicles of one group (set semantics).
    Union {
        left: Box<CaExpr>,
        right: Box<CaExpr>,
    },
    /// Difference of same-typed chronicles of one group.
    Diff {
        left: Box<CaExpr>,
        right: Box<CaExpr>,
    },
    /// GROUPBY with the SN among the grouping attributes.
    GroupBySeq {
        input: Box<CaExpr>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    /// C × R — cross product with a relation (implicit temporal join on the
    /// current relation version; legal because updates are proactive).
    ProductRel {
        input: Box<CaExpr>,
        rel: RelationRef,
    },
    /// C ⋈_key R — the CA⋈ refinement: join on the relation's declared key,
    /// so at most one relation tuple matches each chronicle tuple.
    JoinRelKey {
        input: Box<CaExpr>,
        rel: RelationRef,
        /// Chronicle-side join columns (parallel to `rel_cols`).
        chron_cols: Vec<usize>,
        /// Relation-side join columns — the relation's key.
        rel_cols: Vec<usize>,
    },
}

/// A validated chronicle-algebra expression. Carries its output schema
/// (always a chronicle schema — Lemma 4.1) and its chronicle group.
#[derive(Debug, Clone)]
pub struct CaExpr {
    pub(crate) node: Arc<CaNode>,
    schema: Schema,
    group: GroupId,
}

impl CaExpr {
    // ---- constructors ---------------------------------------------------

    /// A base chronicle.
    pub fn chronicle(c: &Chronicle) -> CaExpr {
        Self::from_ref(ChronicleRef::of(c))
    }

    /// A base chronicle from a pre-built reference.
    pub fn from_ref(r: ChronicleRef) -> CaExpr {
        let schema = r.schema.clone();
        let group = r.group;
        CaExpr {
            node: Arc::new(CaNode::Base(r)),
            schema,
            group,
        }
    }

    /// σ_p(self). The predicate must validate against the input schema.
    pub fn select(self, pred: Predicate) -> Result<CaExpr> {
        pred.validate(&self.schema)?;
        let schema = self.schema.clone();
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::Select {
                input: Box::new(self),
                pred,
            }),
            schema,
            group,
        })
    }

    /// Π over attribute *names*; must include the sequencing attribute
    /// (Theorem 4.3 rejection 1 otherwise).
    pub fn project(self, names: &[&str]) -> Result<CaExpr> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| self.schema.position(n))
            .collect::<Result<_>>()?;
        self.project_cols(cols)
    }

    /// Π over attribute positions; must include the sequencing attribute.
    pub fn project_cols(self, cols: Vec<usize>) -> Result<CaExpr> {
        let sn = self.schema.seq_attr().expect("CA schema has SN");
        if !cols.contains(&sn) {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "projection drops the sequencing attribute; the result would not be a \
                         chronicle (Theorem 4.3). Use the SCA summarization step instead."
                    .into(),
            });
        }
        let schema = self.schema.project(&cols)?;
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::Project {
                input: Box::new(self),
                cols,
            }),
            schema,
            group,
        })
    }

    /// Natural equijoin on the sequencing attribute with another chronicle
    /// of the same group; the right SN column is projected out.
    pub fn join_seq(self, right: CaExpr) -> Result<CaExpr> {
        if self.group != right.group {
            return Err(ChronicleError::CrossGroupOperation {
                detail: format!("{} vs {}", self.group, right.group),
            });
        }
        let rsn = right.schema.seq_attr().expect("CA schema has SN");
        let right_keep: Vec<usize> = (0..right.schema.arity()).filter(|&i| i != rsn).collect();
        let right_schema = right.schema.project(&right_keep)?;
        let schema = self.schema.concat(&right_schema, "r")?;
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::JoinSeq {
                left: Box::new(self),
                right: Box::new(right),
                right_keep,
            }),
            schema,
            group,
        })
    }

    /// A join between chronicles on anything other than SN-equality is
    /// outside CA (Theorem 4.3 rejection: its maintenance would need old
    /// chronicle tuples). This constructor exists to *document* the
    /// rejection — it always fails.
    pub fn join_seq_theta(self, _right: CaExpr, op: CmpOp) -> Result<CaExpr> {
        if op == CmpOp::Eq {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "use join_seq for the SN equijoin".into(),
            });
        }
        Err(ChronicleError::NotInLanguage {
            language: "CA",
            reason: format!(
                "non-equijoin ({op}) on the sequencing attribute requires looking up old \
                 chronicle tuples; maintenance would depend on |C| (Theorem 4.3)"
            ),
        })
    }

    /// A cross product between two *chronicles* is outside CA (Theorem 4.3
    /// rejection: insertion into one side must be joined with the entire
    /// other side). Always fails; kept for documentation and tests.
    pub fn product_chronicles(self, _right: CaExpr) -> Result<CaExpr> {
        Err(ChronicleError::NotInLanguage {
            language: "CA",
            reason: "cross product between two chronicles requires access to all old tuples of \
                     one chronicle on every insert into the other; maintenance time would be \
                     polynomial in |C| (Theorem 4.3)"
                .into(),
        })
    }

    /// Union with a same-typed chronicle of the same group.
    pub fn union(self, right: CaExpr) -> Result<CaExpr> {
        Self::check_compatible(&self, &right, "union")?;
        let schema = self.schema.clone();
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::Union {
                left: Box::new(self),
                right: Box::new(right),
            }),
            schema,
            group,
        })
    }

    /// Difference with a same-typed chronicle of the same group.
    pub fn diff(self, right: CaExpr) -> Result<CaExpr> {
        Self::check_compatible(&self, &right, "difference")?;
        let schema = self.schema.clone();
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::Diff {
                left: Box::new(self),
                right: Box::new(right),
            }),
            schema,
            group,
        })
    }

    fn check_compatible(left: &CaExpr, right: &CaExpr, what: &str) -> Result<()> {
        if left.group != right.group {
            return Err(ChronicleError::CrossGroupOperation {
                detail: format!("{what}: {} vs {}", left.group, right.group),
            });
        }
        if !left.schema.same_type(&right.schema) {
            return Err(ChronicleError::InvalidSchema(format!(
                "{what} operands have different types: {} vs {}",
                left.schema, right.schema
            )));
        }
        Ok(())
    }

    /// GROUPBY with aggregation; the grouping list (given by name) must
    /// include the sequencing attribute (Theorem 4.3 rejection 2
    /// otherwise).
    pub fn group_by_seq(self, group_names: &[&str], aggs: Vec<AggSpec>) -> Result<CaExpr> {
        let group_cols: Vec<usize> = group_names
            .iter()
            .map(|n| self.schema.position(n))
            .collect::<Result<_>>()?;
        self.group_by_seq_cols(group_cols, aggs)
    }

    /// GROUPBY with aggregation over positional grouping columns.
    pub fn group_by_seq_cols(self, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> Result<CaExpr> {
        let sn = self.schema.seq_attr().expect("CA schema has SN");
        if !group_cols.contains(&sn) {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "GROUPBY without the sequencing attribute in the grouping list does not \
                         produce a chronicle (Theorem 4.3). Use the SCA summarization step."
                    .into(),
            });
        }
        for spec in &aggs {
            spec.func.validate(&self.schema)?;
        }
        // Output schema: grouping attrs (in listed order) then aggregates.
        let mut attrs: Vec<chronicle_types::Attribute> =
            Vec::with_capacity(group_cols.len() + aggs.len());
        for &c in &group_cols {
            attrs.push(self.schema.attr(c).clone());
        }
        for spec in &aggs {
            attrs.push(chronicle_types::Attribute::new(
                &spec.name,
                spec.func.output_type(&self.schema),
            ));
        }
        let sn_out = group_cols
            .iter()
            .position(|&c| c == sn)
            .expect("checked above");
        let seq_name = attrs[sn_out].name.to_string();
        let schema = Schema::chronicle(attrs, &seq_name)?;
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::GroupBySeq {
                input: Box::new(self),
                group_cols,
                aggs,
            }),
            schema,
            group,
        })
    }

    /// C × R — cross product with a relation (the implicit temporal join of
    /// §2.3). This is the full-CA operator; prefer [`CaExpr::join_rel_key`]
    /// when a key join suffices, for the better IM class.
    pub fn product(self, rel: RelationRef) -> Result<CaExpr> {
        if rel.schema.is_chronicle() {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "cross product operand must be a relation, not a chronicle (Theorem 4.3)"
                    .into(),
            });
        }
        let schema = self.schema.concat(&rel.schema, &rel.name)?;
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::ProductRel {
                input: Box::new(self),
                rel,
            }),
            schema,
            group,
        })
    }

    /// C ⋈ R on the relation's declared key (Def. 4.2's CA⋈ operator):
    /// `chron_attrs` (chronicle side, by name) equi-join the full key of
    /// `rel`. The key guarantees at most one matching relation tuple per
    /// chronicle tuple.
    pub fn join_rel_key(self, rel: RelationRef, chron_attrs: &[&str]) -> Result<CaExpr> {
        if rel.schema.is_chronicle() {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "key-join operand must be a relation".into(),
            });
        }
        let Some(key) = rel.schema.key() else {
            return Err(ChronicleError::NotInLanguage {
                language: "CA_join",
                reason: format!(
                    "relation `{}` declares no key; the constant-fanout guarantee of CA_join \
                     (Definition 4.2) cannot be established — use product() for full CA",
                    rel.name
                ),
            });
        };
        let rel_cols: Vec<usize> = key.to_vec();
        if chron_attrs.len() != rel_cols.len() {
            return Err(ChronicleError::InvalidSchema(format!(
                "key join arity mismatch: {} chronicle attributes vs key of {} attributes",
                chron_attrs.len(),
                rel_cols.len()
            )));
        }
        let chron_cols: Vec<usize> = chron_attrs
            .iter()
            .map(|n| self.schema.position(n))
            .collect::<Result<_>>()?;
        for (&cc, &rc) in chron_cols.iter().zip(&rel_cols) {
            let ct = self.schema.attr(cc).ty;
            let rt = rel.schema.attr(rc).ty;
            if ct != rt {
                return Err(ChronicleError::TypeMismatch {
                    context: "key join".into(),
                    left: ct.to_string(),
                    right: rt.to_string(),
                });
            }
        }
        let schema = self.schema.concat(&rel.schema, &rel.name)?;
        let group = self.group;
        Ok(CaExpr {
            node: Arc::new(CaNode::JoinRelKey {
                input: Box::new(self),
                rel,
                chron_cols,
                rel_cols,
            }),
            schema,
            group,
        })
    }

    // ---- accessors ------------------------------------------------------

    /// The expression's output schema (always a chronicle schema —
    /// Lemma 4.1: every CA expression is a chronicle of the operand group).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The chronicle group of the result.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// All base chronicles referenced (deduplicated) — the router's
    /// dependency set (§5.2).
    pub fn base_chronicles(&self) -> Vec<ChronicleId> {
        let mut ids = Vec::new();
        self.visit(&mut |n| {
            if let CaNode::Base(r) = n {
                if !ids.contains(&r.id) {
                    ids.push(r.id);
                }
            }
        });
        ids
    }

    /// All relations referenced (deduplicated).
    pub fn relations(&self) -> Vec<RelationId> {
        let mut ids = Vec::new();
        self.visit(&mut |n| {
            let rel = match n {
                CaNode::ProductRel { rel, .. } | CaNode::JoinRelKey { rel, .. } => Some(rel.id),
                _ => None,
            };
            if let Some(id) = rel {
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
        });
        ids
    }

    /// For every base-chronicle occurrence, the conjunction of selection
    /// predicates applied *directly* above it (consecutive σ nodes). The
    /// §5.2 router uses these as a sound pre-filter: if no tuple of an
    /// append satisfies any occurrence's guard, every base delta is empty,
    /// so the whole expression's delta is empty and the view need not be
    /// maintained. Occurrences with an empty guard list are unconditional.
    pub fn base_guards(&self) -> Vec<(ChronicleId, Vec<Predicate>)> {
        fn walk(
            e: &CaExpr,
            acc: &mut Vec<Predicate>,
            out: &mut Vec<(ChronicleId, Vec<Predicate>)>,
        ) {
            match &*e.node {
                CaNode::Base(r) => out.push((r.id, acc.clone())),
                CaNode::Select { input, pred } => {
                    acc.push(pred.clone());
                    walk(input, acc, out);
                    acc.pop();
                }
                // Any schema-changing operator invalidates accumulated
                // predicates for the levels below it.
                CaNode::Project { input, .. }
                | CaNode::GroupBySeq { input, .. }
                | CaNode::ProductRel { input, .. }
                | CaNode::JoinRelKey { input, .. } => {
                    let mut fresh = Vec::new();
                    walk(input, &mut fresh, out);
                }
                CaNode::JoinSeq { left, right, .. }
                | CaNode::Union { left, right }
                | CaNode::Diff { left, right } => {
                    let mut fresh = Vec::new();
                    walk(left, &mut fresh, out);
                    let mut fresh = Vec::new();
                    walk(right, &mut fresh, out);
                }
            }
        }
        let mut out = Vec::new();
        let mut acc = Vec::new();
        walk(self, &mut acc, &mut out);
        out
    }

    fn visit(&self, f: &mut impl FnMut(&CaNode)) {
        f(&self.node);
        match &*self.node {
            CaNode::Base(_) => {}
            CaNode::Select { input, .. }
            | CaNode::Project { input, .. }
            | CaNode::GroupBySeq { input, .. }
            | CaNode::ProductRel { input, .. }
            | CaNode::JoinRelKey { input, .. } => input.visit(f),
            CaNode::JoinSeq { left, right, .. }
            | CaNode::Union { left, right }
            | CaNode::Diff { left, right } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Which fragment of CA this expression is in (Def. 4.2).
    pub fn fragment(&self) -> LanguageFragment {
        let mut frag = LanguageFragment::Ca1;
        self.visit(&mut |n| match n {
            CaNode::ProductRel { .. } => frag = frag.max(LanguageFragment::Ca),
            CaNode::JoinRelKey { .. } => frag = frag.max(LanguageFragment::CaKey),
            _ => {}
        });
        frag
    }

    /// The Theorem 4.2 cost model parameters of this expression.
    pub fn cost_model(&self) -> CostModel {
        let mut unions = 0u32;
        let mut joins = 0u32;
        self.visit(&mut |n| match n {
            CaNode::Union { .. } => unions += 1,
            CaNode::JoinSeq { .. } | CaNode::ProductRel { .. } | CaNode::JoinRelKey { .. } => {
                joins += 1
            }
            _ => {}
        });
        CostModel {
            unions,
            joins,
            fragment: self.fragment(),
        }
    }

    /// Position of the sequencing attribute in the output schema.
    pub fn seq_pos(&self) -> usize {
        self.schema.seq_attr().expect("CA result is a chronicle")
    }

    /// Extract the sequence number carried by an output tuple of this
    /// expression.
    pub fn seq_of(&self, t: &Tuple) -> Result<chronicle_types::SeqNo> {
        t.seq_at(self.seq_pos())
    }
}

impl fmt::Display for CaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.node {
            CaNode::Base(r) => write!(f, "{}", r.name),
            CaNode::Select { input, pred } => write!(f, "σ[{pred}]({input})"),
            CaNode::Project { input, cols } => write!(f, "Π{cols:?}({input})"),
            CaNode::JoinSeq { left, right, .. } => write!(f, "({left} ⋈SN {right})"),
            CaNode::Union { left, right } => write!(f, "({left} ∪ {right})"),
            CaNode::Diff { left, right } => write!(f, "({left} − {right})"),
            CaNode::GroupBySeq {
                input,
                group_cols,
                aggs,
            } => {
                write!(f, "GROUPBY({input}, {group_cols:?}, [")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} AS {}", a.func, a.name)?;
                }
                write!(f, "])")
            }
            CaNode::ProductRel { input, rel } => write!(f, "({input} × {})", rel.name),
            CaNode::JoinRelKey { input, rel, .. } => write!(f, "({input} ⋈key {})", rel.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::predicate::{CmpOp, Predicate};
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{AttrType, Attribute, Value};

    fn setup() -> (Catalog, CaExpr, CaExpr, RelationRef) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let calls = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let texts = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c1 = cat
            .create_chronicle("calls", g, calls, Retention::None)
            .unwrap();
        let c2 = cat
            .create_chronicle("texts", g, texts, Retention::None)
            .unwrap();
        let rschema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("rates", rschema.clone()).unwrap();
        let e1 = CaExpr::chronicle(cat.chronicle(c1));
        let e2 = CaExpr::chronicle(cat.chronicle(c2));
        let rr = RelationRef::new(r, rschema, "rates");
        (cat, e1, e2, rr)
    }

    #[test]
    fn base_schema_and_group() {
        let (_, e, _, _) = setup();
        assert!(e.schema().is_chronicle());
        assert_eq!(e.fragment(), LanguageFragment::Ca1);
        assert_eq!(e.base_chronicles().len(), 1);
    }

    #[test]
    fn select_validates_predicate() {
        let (_, e, _, _) = setup();
        let p =
            Predicate::attr_cmp_const(e.schema(), "minutes", CmpOp::Gt, Value::Float(5.0)).unwrap();
        let s = e.clone().select(p).unwrap();
        assert!(s.schema().same_type(e.schema()));
        // A predicate built against the wrong schema fails validation.
        let bad = Predicate::atom(
            9,
            CmpOp::Eq,
            crate::predicate::Operand::Const(Value::Int(1)),
        );
        assert!(e.select(bad).is_err());
    }

    #[test]
    fn project_must_keep_sn() {
        let (_, e, _, _) = setup();
        let ok = e.clone().project(&["sn", "minutes"]).unwrap();
        assert!(ok.schema().is_chronicle());
        let err = e.project(&["caller", "minutes"]).unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn join_seq_drops_right_sn() {
        let (_, e1, e2, _) = setup();
        let j = e1.join_seq(e2).unwrap();
        // 3 + 2 attributes (right sn dropped); collisions renamed.
        assert_eq!(j.schema().arity(), 5);
        assert!(j.schema().is_chronicle());
        assert_eq!(j.cost_model().joins, 1);
    }

    #[test]
    fn cross_group_join_rejected() {
        let (mut cat, e1, _, _) = setup();
        let g2 = cat.create_group("g2").unwrap();
        let other_schema =
            Schema::chronicle(vec![Attribute::new("sn", AttrType::Seq)], "sn").unwrap();
        let c3 = cat
            .create_chronicle("alien", g2, other_schema, Retention::None)
            .unwrap();
        let e3 = CaExpr::chronicle(cat.chronicle(c3));
        assert!(matches!(
            e1.clone().join_seq(e3.clone()).unwrap_err(),
            ChronicleError::CrossGroupOperation { .. }
        ));
        assert!(matches!(
            e1.union(e3).unwrap_err(),
            ChronicleError::CrossGroupOperation { .. }
        ));
    }

    #[test]
    fn union_diff_require_same_type() {
        let (_, e1, e2, _) = setup();
        assert!(e1.clone().union(e2.clone()).is_ok());
        assert!(e1.clone().diff(e2.clone()).is_ok());
        let narrowed = e2.project(&["sn", "caller"]).unwrap();
        assert!(matches!(
            e1.union(narrowed).unwrap_err(),
            ChronicleError::InvalidSchema(_)
        ));
    }

    #[test]
    fn group_by_must_include_sn() {
        let (_, e, _, _) = setup();
        let aggs = vec![AggSpec::new(AggFunc::Sum(2), "total")];
        let ok = e
            .clone()
            .group_by_seq(&["sn", "caller"], aggs.clone())
            .unwrap();
        assert!(ok.schema().is_chronicle());
        assert_eq!(ok.schema().arity(), 3); // sn, caller, total
        let err = e.group_by_seq(&["caller"], aggs).unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn product_with_relation_is_full_ca() {
        let (_, e, _, r) = setup();
        let p = e.product(r).unwrap();
        assert_eq!(p.fragment(), LanguageFragment::Ca);
        assert_eq!(p.schema().arity(), 5);
        assert_eq!(p.relations().len(), 1);
    }

    #[test]
    fn key_join_is_ca_key() {
        let (_, e, _, r) = setup();
        let j = e.join_rel_key(r, &["caller"]).unwrap();
        assert_eq!(j.fragment(), LanguageFragment::CaKey);
        assert_eq!(j.cost_model().joins, 1);
    }

    #[test]
    fn key_join_requires_declared_key() {
        let (_, e, _, _) = setup();
        let keyless = Schema::relation(vec![Attribute::new("acct", AttrType::Int)]).unwrap();
        let rr = RelationRef::new(RelationId(9), keyless, "keyless");
        let err = e.join_rel_key(rr, &["caller"]).unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn key_join_type_checks() {
        let (_, e, _, _) = setup();
        let rs = Schema::relation_with_key(vec![Attribute::new("acct", AttrType::Str)], &["acct"])
            .unwrap();
        let rr = RelationRef::new(RelationId(9), rs, "strkeys");
        // caller is INT, key is STR.
        assert!(matches!(
            e.join_rel_key(rr, &["caller"]).unwrap_err(),
            ChronicleError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn theorem_4_3_rejections() {
        let (_, e1, e2, _) = setup();
        assert!(matches!(
            e1.clone().product_chronicles(e2.clone()).unwrap_err(),
            ChronicleError::NotInLanguage { .. }
        ));
        assert!(matches!(
            e1.clone()
                .join_seq_theta(e2.clone(), CmpOp::Lt)
                .unwrap_err(),
            ChronicleError::NotInLanguage { .. }
        ));
        assert!(matches!(
            e1.join_seq_theta(e2, CmpOp::Eq).unwrap_err(),
            ChronicleError::NotInLanguage { .. }
        ));
    }

    #[test]
    fn fragment_maximum_over_tree() {
        let (_, e1, e2, r) = setup();
        let keyed = e1.join_rel_key(r.clone(), &["caller"]).unwrap();
        assert_eq!(keyed.fragment(), LanguageFragment::CaKey);
        // Union with a full-CA branch lifts the whole expression to CA.
        // (Build a same-typed branch: product then project back is not
        // same-typed, so test fragment on a product directly.)
        let prod = e2.product(r).unwrap();
        assert_eq!(prod.fragment(), LanguageFragment::Ca);
    }

    #[test]
    fn cost_model_counts() {
        let (_, e1, e2, r) = setup();
        let expr = e1
            .clone()
            .union(e2.clone())
            .unwrap()
            .join_seq(e1.clone().union(e2).unwrap())
            .unwrap();
        let cm = expr.cost_model();
        assert_eq!(cm.unions, 2);
        assert_eq!(cm.joins, 1);
        let keyed = e1.join_rel_key(r, &["caller"]).unwrap();
        assert_eq!(keyed.cost_model().fragment, LanguageFragment::CaKey);
    }

    #[test]
    fn display_renders_tree() {
        let (_, e1, e2, _) = setup();
        let u = e1.union(e2).unwrap();
        assert_eq!(u.to_string(), "(calls ∪ texts)");
    }
}
