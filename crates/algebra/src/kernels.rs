//! Vectorized σ/Π/γ delta kernels over columnar chunks.
//!
//! The scalar interpreter in [`crate::delta`] walks the operator tree once
//! per maintenance event and materializes an intermediate `ZSet` (a
//! `BTreeMap` of boxed tuples) at *every* operator boundary. For the
//! workhorse view shapes — `σ*/Π` chains over a single base chronicle,
//! summarized by projection or grouped aggregation — that constant factor
//! dominates the append hot path. The kernels here evaluate the same
//! delta batch column-at-a-time over a [`Chunk`]: predicates run as tight
//! typed loops over unboxed column lanes, no intermediate Z-sets exist,
//! and the whole chunk folds into one [`SummaryDelta`] (one signed delta
//! per group) in a single pass.
//!
//! **Equivalence contract.** A [`VectorPlan`] produces the *identical*
//! `SummaryDelta` — same tuples, same weights, same `BTreeMap` order —
//! and the *identical* [`WorkCounter`] charges as
//! [`crate::delta::DeltaEngine::delta_sca`] on the same batch. Work is
//! charged per logical tuple at each operator boundary; for an
//! insert-only append batch (all weights `+1`) per-row charging coincides
//! with the scalar path's per-|weight| charging even across
//! consolidation, because σ/Π preserve total absolute weight. Shapes the
//! planner does not recognize (joins, unions, differences, GROUPBY-SN,
//! relation products) return `None` from [`plan`] and stay on the scalar
//! interpreter. The `CHRONICLE_MUTATE=scalar_fallback` hook forces every
//! view onto the scalar path so CI can prove the vectorized kernels are
//! the ones producing benchmarked results.

use std::collections::BTreeMap;

use chronicle_store::{Chunk, ColumnSlice};
use chronicle_types::{ChronicleId, Result, Value};

use crate::delta::{DeltaBatch, SummaryDelta, WorkCounter};
use crate::expr::CaNode;
use crate::predicate::{Atom, Operand, Predicate};
use crate::sca::{ScaExpr, Summarize};
use crate::zset::ZSet;

/// Mutation hook: `CHRONICLE_MUTATE=scalar_fallback` disables the
/// vectorized kernels entirely, forcing every view onto the per-tuple
/// interpreter. Results are identical by design — the observable is the
/// `vectorized` execution counter, which CI asserts is non-zero.
pub fn scalar_fallback_forced() -> bool {
    std::env::var("CHRONICLE_MUTATE").is_ok_and(|v| v == "scalar_fallback")
}

/// One step of a compiled select/project chain, bottom-up order.
#[derive(Debug, Clone)]
enum PlanStep {
    /// σ_p over the current column mapping.
    Select(Predicate),
    /// Π — permutes the column mapping, never touches row data.
    Project(Vec<usize>),
}

/// A compiled vectorized plan: a `σ*/Π*` chain over one base chronicle
/// plus the summarization step. Built once per view registration and
/// reused for every append batch.
#[derive(Debug, Clone)]
pub struct VectorPlan {
    base: ChronicleId,
    steps: Vec<PlanStep>,
    summarize: Summarize,
}

impl VectorPlan {
    /// The base chronicle this plan consumes deltas of.
    pub fn base(&self) -> ChronicleId {
        self.base
    }
}

/// Compile `expr` into a vectorized plan, or `None` when the shape needs
/// the scalar interpreter (any join, union, difference, GROUPBY-SN or
/// relation operand).
pub fn plan(expr: &ScaExpr) -> Option<VectorPlan> {
    let mut steps = Vec::new();
    let mut node = expr.ca();
    let base = loop {
        match &*node.node {
            CaNode::Base(c) => break c.id,
            CaNode::Select { input, pred } => {
                steps.push(PlanStep::Select(pred.clone()));
                node = input;
            }
            CaNode::Project { input, cols } => {
                steps.push(PlanStep::Project(cols.clone()));
                node = input;
            }
            _ => return None,
        }
    };
    steps.reverse();
    Some(VectorPlan {
        base,
        steps,
        summarize: expr.summarize().clone(),
    })
}

/// Evaluate a plan over one append batch. `chunk` must be the columnar
/// transpose of `batch.tuples`. Charges `work` exactly as the scalar
/// interpreter would (see the module contract).
pub fn eval(
    plan: &VectorPlan,
    batch: &DeltaBatch,
    chunk: &Chunk,
    work: &mut WorkCounter,
) -> Result<SummaryDelta> {
    let empty = || match &plan.summarize {
        Summarize::Project { .. } => SummaryDelta::Rows(ZSet::new()),
        Summarize::GroupAgg { .. } => SummaryDelta::Groups(BTreeMap::new()),
    };
    if plan.base != batch.chronicle || chunk.is_empty() {
        // Scalar parity: a base mismatch yields an empty delta that flows
        // through every operator charging nothing.
        return Ok(empty());
    }
    debug_assert_eq!(chunk.len(), batch.tuples.len(), "chunk mirrors the batch");
    // Base: Δ is the batch itself, one output charge per tuple.
    work.tuples_out += chunk.len() as u64;
    // The live selection (row indices) and the mapping from the current
    // operator's output positions to physical chunk columns.
    let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
    let mut colmap: Vec<usize> = (0..chunk.arity()).collect();
    for step in &plan.steps {
        match step {
            PlanStep::Select(pred) => {
                work.tuples_in += sel.len() as u64;
                sel = filter(pred, chunk, &colmap, sel)?;
                work.tuples_out += sel.len() as u64;
            }
            PlanStep::Project(cols) => {
                let alive = sel.len() as u64;
                work.tuples_in += alive;
                work.tuples_out += alive;
                colmap = cols.iter().map(|&c| colmap[c]).collect();
            }
        }
    }
    // When the chain never projected, the χ-output tuple IS the appended
    // tuple — materialization is an `Arc` clone.
    let identity = colmap.len() == chunk.arity() && colmap.iter().enumerate().all(|(i, &c)| i == c);
    match &plan.summarize {
        Summarize::Project { cols } => {
            let final_cols: Vec<usize> = cols.iter().map(|&c| colmap[c]).collect();
            let mut rows = ZSet::new();
            for &i in &sel {
                work.tuples_in += 1;
                work.tuples_out += 1;
                rows.insert(batch.tuples[i as usize].project(&final_cols), 1);
            }
            Ok(SummaryDelta::Rows(rows))
        }
        Summarize::GroupAgg { group_cols, .. } => {
            let mut groups: BTreeMap<Vec<Value>, ZSet> = BTreeMap::new();
            for &i in &sel {
                work.tuples_in += 1;
                let t = if identity {
                    batch.tuples[i as usize].clone()
                } else {
                    batch.tuples[i as usize].project(&colmap)
                };
                let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                groups.entry(key).or_default().insert(t, 1);
            }
            groups.retain(|_, z| !z.is_empty());
            work.tuples_out += groups.len() as u64;
            Ok(SummaryDelta::Groups(groups))
        }
    }
}

/// Apply a disjunctive predicate to the selection, column-at-a-time: each
/// atom filters only the rows no earlier atom matched (the scalar
/// evaluator's short-circuit order), so per-row atom evaluations — and
/// therefore type errors — match the scalar path.
fn filter(pred: &Predicate, chunk: &Chunk, colmap: &[usize], sel: Vec<u32>) -> Result<Vec<u32>> {
    let atoms = match pred {
        Predicate::True => return Ok(sel),
        Predicate::Or(atoms) => atoms,
    };
    let mut passed = Vec::new();
    let mut undecided = sel;
    for atom in atoms {
        if undecided.is_empty() {
            break;
        }
        let test = atom_test(atom, chunk, colmap);
        let mut still = Vec::with_capacity(undecided.len());
        for &i in &undecided {
            if test(i as usize)? {
                passed.push(i);
            } else {
                still.push(i);
            }
        }
        undecided = still;
    }
    passed.sort_unstable();
    Ok(passed)
}

/// NULL mask probe (empty mask = no NULLs in the column).
fn masked(nulls: &[bool], i: usize) -> bool {
    !nulls.is_empty() && nulls[i]
}

type RowTest<'a> = Box<dyn Fn(usize) -> Result<bool> + 'a>;

/// Compile one atom into a per-row test. Runtime-uniform columns compared
/// against a compatible constant (or a same-shape column) run unboxed;
/// everything else — mixed columns, NULL constants, genuine type
/// mismatches — falls back to [`Value::sql_cmp`] per row, preserving the
/// scalar path's semantics including its type errors.
fn atom_test<'a>(atom: &'a Atom, chunk: &'a Chunk, colmap: &[usize]) -> RowTest<'a> {
    use ColumnSlice as S;
    let lc = colmap[atom.left];
    let op = atom.op;
    match &atom.right {
        Operand::Const(k) => match (chunk.slice(lc), k) {
            (S::Int { vals, nulls }, Value::Int(c)) => {
                let c = *c;
                Box::new(move |i| Ok(!masked(nulls, i) && op.test(Some(vals[i].cmp(&c)))))
            }
            (S::Int { vals, nulls }, Value::Float(c)) => {
                let c = *c;
                Box::new(move |i| {
                    Ok(!masked(nulls, i) && op.test(Some((vals[i] as f64).total_cmp(&c))))
                })
            }
            (S::Float { vals, nulls }, Value::Float(c)) => {
                let c = *c;
                Box::new(move |i| Ok(!masked(nulls, i) && op.test(Some(vals[i].total_cmp(&c)))))
            }
            (S::Float { vals, nulls }, Value::Int(c)) => {
                let c = *c as f64;
                Box::new(move |i| Ok(!masked(nulls, i) && op.test(Some(vals[i].total_cmp(&c)))))
            }
            (S::Bool { vals, nulls }, Value::Bool(c)) => {
                let c = *c;
                Box::new(move |i| Ok(!masked(nulls, i) && op.test(Some(vals[i].cmp(&c)))))
            }
            (S::Str { vals, nulls }, Value::Str(c)) => Box::new(move |i| {
                Ok(!masked(nulls, i) && op.test(Some(vals[i].as_ref().cmp(c.as_ref()))))
            }),
            (S::Seq { vals, nulls }, Value::Seq(c)) => {
                let c = c.0;
                Box::new(move |i| Ok(!masked(nulls, i) && op.test(Some(vals[i].cmp(&c)))))
            }
            _ => Box::new(move |i| Ok(op.test(chunk.value_at(i, lc).sql_cmp(k)?))),
        },
        Operand::Attr(r) => {
            let rc = colmap[*r];
            match (chunk.slice(lc), chunk.slice(rc)) {
                (S::Int { vals: a, nulls: na }, S::Int { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i) && !masked(nb, i) && op.test(Some(a[i].cmp(&b[i]))))
                    })
                }
                (S::Float { vals: a, nulls: na }, S::Float { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(
                            !masked(na, i)
                                && !masked(nb, i)
                                && op.test(Some(a[i].total_cmp(&b[i]))),
                        )
                    })
                }
                (S::Int { vals: a, nulls: na }, S::Float { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i)
                            && !masked(nb, i)
                            && op.test(Some((a[i] as f64).total_cmp(&b[i]))))
                    })
                }
                (S::Float { vals: a, nulls: na }, S::Int { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i)
                            && !masked(nb, i)
                            && op.test(Some(a[i].total_cmp(&(b[i] as f64)))))
                    })
                }
                (S::Str { vals: a, nulls: na }, S::Str { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i)
                            && !masked(nb, i)
                            && op.test(Some(a[i].as_ref().cmp(b[i].as_ref()))))
                    })
                }
                (S::Bool { vals: a, nulls: na }, S::Bool { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i) && !masked(nb, i) && op.test(Some(a[i].cmp(&b[i]))))
                    })
                }
                (S::Seq { vals: a, nulls: na }, S::Seq { vals: b, nulls: nb }) => {
                    Box::new(move |i| {
                        Ok(!masked(na, i) && !masked(nb, i) && op.test(Some(a[i].cmp(&b[i]))))
                    })
                }
                _ => Box::new(move |i| {
                    Ok(op.test(chunk.value_at(i, lc).sql_cmp(&chunk.value_at(i, rc))?))
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::delta::DeltaEngine;
    use crate::expr::CaExpr;
    use crate::predicate::CmpOp;
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, Schema, SeqNo, Tuple};

    fn fixture() -> (Catalog, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
                Attribute::new("tag", AttrType::Str),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("calls", g, cs, Retention::None)
            .unwrap();
        (cat, c)
    }

    fn batch(c: ChronicleId, rows: Vec<Tuple>) -> DeltaBatch {
        DeltaBatch {
            chronicle: c,
            seq: SeqNo(1),
            tuples: rows,
        }
    }

    fn rows() -> Vec<Tuple> {
        vec![
            tuple![SeqNo(1), 555i64, 2.0f64, "a"],
            tuple![SeqNo(1), 777i64, 9.0f64, "b"],
            tuple![SeqNo(1), 555i64, 4.5f64, "a"],
            tuple![SeqNo(1), 777i64, 9.0f64, "b"],
            tuple![SeqNo(1), 111i64, Value::Null, "c"],
        ]
    }

    /// Assert scalar and vectorized execution produce identical deltas
    /// AND identical work-counter charges for `expr` over `rows`.
    fn assert_equivalent(cat: &Catalog, c: ChronicleId, expr: &ScaExpr, rows: Vec<Tuple>) {
        let b = batch(c, rows);
        let chunk = Chunk::from_tuples(&b.tuples);
        let engine = DeltaEngine::new(cat);
        let mut scalar_work = WorkCounter::default();
        let scalar = engine.delta_sca(expr, &b, &mut scalar_work).unwrap();
        let plan = plan(expr).expect("shape is vectorizable");
        let mut vec_work = WorkCounter::default();
        let vectorized = eval(&plan, &b, &chunk, &mut vec_work).unwrap();
        assert_eq!(
            format!("{scalar:?}"),
            format!("{vectorized:?}"),
            "deltas must be identical"
        );
        assert_eq!(scalar_work, vec_work, "work charges must be identical");
    }

    #[test]
    fn select_chain_over_base_matches_scalar() {
        let (cat, c) = fixture();
        let e = CaExpr::chronicle(cat.chronicle(c));
        let p1 =
            Predicate::attr_cmp_const(e.schema(), "amount", CmpOp::Gt, Value::Float(1.0)).unwrap();
        let e = e.select(p1).unwrap();
        let p2 = Predicate::attr_cmp_const(e.schema(), "acct", CmpOp::Eq, Value::Int(555)).unwrap();
        let e = e.select(p2).unwrap();
        let expr = ScaExpr::project(e, &["acct", "amount"]).unwrap();
        assert_equivalent(&cat, c, &expr, rows());
    }

    #[test]
    fn grouped_aggregation_matches_scalar() {
        let (cat, c) = fixture();
        let e = CaExpr::chronicle(cat.chronicle(c));
        let expr = ScaExpr::group_agg(
            e,
            &["acct"],
            vec![
                AggSpec::new(AggFunc::CountStar, "n"),
                AggSpec::new(AggFunc::Sum(2), "total"),
            ],
        )
        .unwrap();
        assert_equivalent(&cat, c, &expr, rows());
    }

    #[test]
    fn projection_then_group_matches_scalar() {
        let (cat, c) = fixture();
        let e = CaExpr::chronicle(cat.chronicle(c));
        let p = Predicate::attr_cmp_const(e.schema(), "tag", CmpOp::Ne, Value::str("c")).unwrap();
        let e = e.select(p).unwrap().project(&["sn", "acct"]).unwrap();
        let expr =
            ScaExpr::group_agg(e, &["acct"], vec![AggSpec::new(AggFunc::CountStar, "n")]).unwrap();
        assert_equivalent(&cat, c, &expr, rows());
    }

    #[test]
    fn nulls_and_duplicates_match_scalar() {
        let (cat, c) = fixture();
        let e = CaExpr::chronicle(cat.chronicle(c));
        // amount > 1.0 is false for the NULL row on both paths.
        let p =
            Predicate::attr_cmp_const(e.schema(), "amount", CmpOp::Gt, Value::Float(1.0)).unwrap();
        let e = e.select(p).unwrap();
        let expr = ScaExpr::group_agg(
            e,
            &["acct"],
            vec![AggSpec::new(AggFunc::Avg(2), "avg_amount")],
        )
        .unwrap();
        // Rows include exact duplicates, which consolidate to weight 2.
        assert_equivalent(&cat, c, &expr, rows());
    }

    #[test]
    fn foreign_chronicle_yields_empty_delta_and_no_work() {
        let (mut cat, c) = fixture();
        let g2 = cat.create_group("g2").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("x", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let other = cat
            .create_chronicle("other", g2, cs, Retention::None)
            .unwrap();
        let e = CaExpr::chronicle(cat.chronicle(c));
        let expr =
            ScaExpr::group_agg(e, &["acct"], vec![AggSpec::new(AggFunc::CountStar, "n")]).unwrap();
        let p = plan(&expr).unwrap();
        let b = batch(other, vec![tuple![SeqNo(1), 1i64]]);
        let chunk = Chunk::from_tuples(&b.tuples);
        let mut w = WorkCounter::default();
        let d = eval(&p, &b, &chunk, &mut w).unwrap();
        assert!(d.is_empty());
        assert_eq!(w, WorkCounter::default());
    }

    #[test]
    fn join_shapes_are_not_planned() {
        let (cat, c) = fixture();
        let left = CaExpr::chronicle(cat.chronicle(c));
        let right = CaExpr::chronicle(cat.chronicle(c));
        let joined = left.join_seq(right).unwrap();
        let expr = ScaExpr::group_agg(
            joined,
            &["acct"],
            vec![AggSpec::new(AggFunc::CountStar, "n")],
        )
        .unwrap();
        assert!(plan(&expr).is_none());
    }

    #[test]
    fn mixed_runtime_tags_take_the_generic_lane_and_match_scalar() {
        let (cat, c) = fixture();
        // INT rows are legal in a FLOAT column, so `amount` holds mixed
        // runtime tags — the chunk demotes it to Mixed and the predicate
        // must fall back to the generic per-row comparison.
        let rows = vec![
            tuple![SeqNo(1), 555i64, 2i64, "a"],
            tuple![SeqNo(1), 777i64, 9.0f64, "b"],
            tuple![SeqNo(1), 555i64, 4i64, "a"],
            tuple![SeqNo(1), 111i64, Value::Null, "c"],
        ];
        let e = CaExpr::chronicle(cat.chronicle(c));
        let p =
            Predicate::attr_cmp_const(e.schema(), "amount", CmpOp::Gt, Value::Float(3.0)).unwrap();
        let e = e.select(p).unwrap();
        let expr = ScaExpr::project(e, &["acct", "amount"]).unwrap();
        assert_equivalent(&cat, c, &expr, rows);
    }

    #[test]
    fn attr_to_attr_comparison_matches_scalar() {
        let (cat, c) = fixture();
        let e = CaExpr::chronicle(cat.chronicle(c));
        // Cross-type column comparison: INT acct vs FLOAT amount.
        let p = Predicate::attr_cmp_attr(e.schema(), "acct", CmpOp::Gt, "amount").unwrap();
        let e = e.select(p).unwrap();
        let expr = ScaExpr::project(e, &["acct", "amount"]).unwrap();
        assert_equivalent(&cat, c, &expr, rows());
    }
}
