//! Relation-backed view queries — the retractable fragment.
//!
//! Chronicle views (SCA) are maintained under *appends only*; the
//! Theorem 4.1 delta rules lean on the new-sequence-number argument and
//! break under deletion. Relations, however, take updates and deletes, so
//! a view over a relation needs operators whose delta rules are valid for
//! arbitrary signed Z-set weights. That fragment is σ/Π/γ over a single
//! relation with **retractable** aggregates (COUNT/SUM/AVG/STDDEV —
//! [`crate::AggFunc::is_retractable`]); MIN/MAX/FIRST/LAST are rejected at
//! construction with a typed explanation, mirroring how [`crate::CaExpr`]
//! rejects the constructions Theorem 4.3 excludes.
//!
//! A [`RelQuery`] is the validated, stateless description; the
//! materialized state lives in `chronicle-views`' `RelationView`. Deltas
//! flow as [`crate::ZSet`]s (an insert is `+1`, a delete `−1`, an update a
//! `−old +new` pair) through [`RelQuery::delta`], producing the same
//! signed [`SummaryDelta`] that chronicle views apply — one delta path for
//! every maintenance event in the system.

use std::collections::{BTreeMap, BTreeSet};

use chronicle_store::Relation;
use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value};

use crate::aggregate::{aggregate_group, AggSpec};
use crate::delta::{SummaryDelta, WorkCounter};
use crate::expr::RelationRef;
use crate::predicate::Predicate;
use crate::sca::Summarize;
use crate::zset::ZSet;
use chronicle_types::RelationId;

/// A validated σ/Π/γ view definition over one relation, incrementally
/// maintainable under inserts, updates *and* deletes.
#[derive(Debug, Clone)]
pub struct RelQuery {
    relation: RelationId,
    rel_name: String,
    input: Schema,
    /// Conjunction of selection predicates (each itself a Def. 4.1
    /// disjunction): `σ_{p₁}∘σ_{p₂}∘…`. Empty = σ_true. Each σ is linear,
    /// so the stack commutes with signed deltas exactly like a single one.
    preds: Vec<Predicate>,
    summarize: Summarize,
    schema: Schema,
}

impl RelQuery {
    /// σ_preds(R) followed by a projection, columns given by name.
    pub fn project(rel: RelationRef, preds: Vec<Predicate>, names: &[&str]) -> Result<RelQuery> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| rel.schema.position(n))
            .collect::<Result<_>>()?;
        Self::project_cols(rel, preds, cols)
    }

    /// Positional variant of [`RelQuery::project`].
    pub fn project_cols(
        rel: RelationRef,
        preds: Vec<Predicate>,
        cols: Vec<usize>,
    ) -> Result<RelQuery> {
        for p in &preds {
            p.validate(&rel.schema)?;
        }
        let schema = rel.schema.project(&cols)?;
        Ok(RelQuery {
            relation: rel.id,
            rel_name: rel.name,
            input: rel.schema,
            preds,
            summarize: Summarize::Project { cols },
            schema,
        })
    }

    /// σ_preds(R) followed by GROUPBY with retractable aggregates, names
    /// resolved against the relation schema.
    pub fn group_agg(
        rel: RelationRef,
        preds: Vec<Predicate>,
        group_names: &[&str],
        aggs: Vec<AggSpec>,
    ) -> Result<RelQuery> {
        let group_cols: Vec<usize> = group_names
            .iter()
            .map(|n| rel.schema.position(n))
            .collect::<Result<_>>()?;
        Self::group_agg_cols(rel, preds, group_cols, aggs)
    }

    /// Positional variant of [`RelQuery::group_agg`].
    pub fn group_agg_cols(
        rel: RelationRef,
        preds: Vec<Predicate>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    ) -> Result<RelQuery> {
        for p in &preds {
            p.validate(&rel.schema)?;
        }
        if aggs.is_empty() {
            return Err(ChronicleError::BadAggregate {
                detail: "relation view GROUPBY needs at least one aggregate; use a projection \
                         for pure column selection"
                    .into(),
            });
        }
        for spec in &aggs {
            spec.func.validate(&rel.schema)?;
            if !spec.func.is_retractable() {
                return Err(ChronicleError::NotInLanguage {
                    language: "RQ",
                    reason: format!(
                        "{} over a relation is not incrementally maintainable: a delete can \
                         retract the current witness, forcing a rescan; relation views admit \
                         only the retractable aggregates (COUNT/SUM/AVG/STDDEV)",
                        spec.func
                    ),
                });
            }
        }
        let mut attrs = Vec::with_capacity(group_cols.len() + aggs.len());
        for &c in &group_cols {
            if c >= rel.schema.arity() {
                return Err(ChronicleError::UnknownAttribute {
                    name: format!("position {c}"),
                    context: "relation view GROUP BY".into(),
                });
            }
            attrs.push(rel.schema.attr(c).clone());
        }
        for spec in &aggs {
            attrs.push(chronicle_types::Attribute::new(
                &spec.name,
                spec.func.output_type(&rel.schema),
            ));
        }
        let schema = Schema::relation(attrs)?;
        Ok(RelQuery {
            relation: rel.id,
            rel_name: rel.name,
            input: rel.schema,
            preds,
            summarize: Summarize::GroupAgg { group_cols, aggs },
            schema,
        })
    }

    /// The backing relation's catalog id.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The backing relation's name (diagnostics).
    pub fn rel_name(&self) -> &str {
        &self.rel_name
    }

    /// The relation (input) schema this query was validated against.
    pub fn input_schema(&self) -> &Schema {
        &self.input
    }

    /// The selection predicates (a conjunction; empty = σ_true).
    pub fn preds(&self) -> &[Predicate] {
        &self.preds
    }

    /// Does `t` pass every selection predicate?
    pub fn matches(&self, t: &Tuple) -> Result<bool> {
        for p in &self.preds {
            if !p.eval(t)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The summarization step.
    pub fn summarize(&self) -> &Summarize {
        &self.summarize
    }

    /// The view's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Map a relation-level Z-set delta through σ and the summarization
    /// into the same signed [`SummaryDelta`] chronicle views apply —
    /// weights ride through σ/Π untouched and bucket per group for γ.
    /// Work is charged per logical tuple (by |weight|), exactly like the
    /// chronicle delta rules.
    pub fn delta(&self, delta: &ZSet, work: &mut WorkCounter) -> Result<SummaryDelta> {
        match &self.summarize {
            Summarize::Project { cols } => {
                let mut rows = ZSet::new();
                for (t, w) in delta.iter() {
                    work.tuples_in += w.unsigned_abs();
                    if !self.matches(t)? {
                        continue;
                    }
                    work.tuples_out += w.unsigned_abs();
                    rows.insert(t.project(cols), w);
                }
                Ok(SummaryDelta::Rows(rows))
            }
            Summarize::GroupAgg { group_cols, .. } => {
                let mut groups: BTreeMap<Vec<Value>, ZSet> = BTreeMap::new();
                for (t, w) in delta.iter() {
                    work.tuples_in += w.unsigned_abs();
                    if !self.matches(t)? {
                        continue;
                    }
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    groups.entry(key).or_default().insert(t.clone(), w);
                }
                groups.retain(|_, z| !z.is_empty());
                work.tuples_out += groups.len() as u64;
                Ok(SummaryDelta::Groups(groups))
            }
        }
    }

    /// Full (non-incremental) evaluation against a relation snapshot — the
    /// recomputation oracle the differential suite compares against, and
    /// the bootstrap source for views created over a non-empty relation.
    pub fn eval(&self, rel: &Relation) -> Result<Vec<Tuple>> {
        match &self.summarize {
            Summarize::Project { cols } => {
                let mut out: BTreeSet<Tuple> = BTreeSet::new();
                for t in rel.iter() {
                    if !self.matches(t)? {
                        continue;
                    }
                    out.insert(t.project(cols));
                }
                Ok(out.into_iter().collect())
            }
            Summarize::GroupAgg { group_cols, aggs } => {
                let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
                for t in rel.iter() {
                    if !self.matches(t)? {
                        continue;
                    }
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    groups.entry(key).or_default().push(t);
                }
                let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
                let mut out = Vec::with_capacity(groups.len());
                for (key, members) in groups {
                    let aggv = aggregate_group(&funcs, &members)?;
                    let mut row = key;
                    row.extend(aggv);
                    out.push(Tuple::new(row));
                }
                Ok(out)
            }
        }
    }
}

impl std::fmt::Display for RelQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sel: String = self.preds.iter().map(|p| format!("σ[{p}]")).collect();
        match &self.summarize {
            Summarize::Project { cols } => write!(f, "Π{cols:?}({sel}{})", self.rel_name),
            Summarize::GroupAgg { group_cols, aggs } => {
                write!(f, "GROUPBY({sel}{}, {group_cols:?}, [", self.rel_name)?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} AS {}", a.func, a.name)?;
                }
                write!(f, "])")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::predicate::CmpOp;
    use chronicle_store::Catalog;
    use chronicle_types::{tuple, AttrType, Attribute};

    fn setup() -> (Catalog, RelationRef) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("region", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("accounts", rs.clone()).unwrap();
        cat.relation_insert(r, g, tuple![1i64, 10i64, 0.5f64])
            .unwrap();
        cat.relation_insert(r, g, tuple![2i64, 10i64, 1.5f64])
            .unwrap();
        cat.relation_insert(r, g, tuple![3i64, 20i64, 2.0f64])
            .unwrap();
        (cat, RelationRef::new(r, rs, "accounts"))
    }

    #[test]
    fn non_retractable_aggregates_rejected() {
        let (_, rel) = setup();
        for func in [
            AggFunc::Min(2),
            AggFunc::Max(2),
            AggFunc::First(2),
            AggFunc::Last(2),
        ] {
            let err = RelQuery::group_agg(
                rel.clone(),
                vec![],
                &["region"],
                vec![AggSpec::new(func, "x")],
            )
            .unwrap_err();
            assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
        }
        // Retractable ones are fine.
        RelQuery::group_agg(
            rel,
            vec![],
            &["region"],
            vec![
                AggSpec::new(AggFunc::Sum(2), "s"),
                AggSpec::new(AggFunc::CountStar, "n"),
            ],
        )
        .unwrap();
    }

    #[test]
    fn delta_routes_updates_as_minus_plus() {
        let (cat, rel) = setup();
        let q = RelQuery::group_agg(
            rel,
            vec![],
            &["region"],
            vec![AggSpec::new(AggFunc::Sum(2), "s")],
        )
        .unwrap();
        // UPDATE acct 2: rate 1.5 -> 2.5 within region 10.
        let mut delta = ZSet::new();
        delta.insert(tuple![2i64, 10i64, 1.5f64], -1);
        delta.insert(tuple![2i64, 10i64, 2.5f64], 1);
        let mut w = WorkCounter::default();
        let d = q.delta(&delta, &mut w).unwrap();
        match d {
            SummaryDelta::Groups(g) => {
                assert_eq!(g.len(), 1, "only region 10 affected");
                let z = &g[&vec![Value::Int(10)]];
                assert_eq!(z.weight(&tuple![2i64, 10i64, 1.5f64]), -1);
                assert_eq!(z.weight(&tuple![2i64, 10i64, 2.5f64]), 1);
            }
            _ => panic!("expected groups"),
        }
        assert_eq!(w.tuples_in, 2);
        let _ = cat;
    }

    #[test]
    fn delta_respects_selection() {
        let (_, rel) = setup();
        let p =
            Predicate::attr_cmp_const(&rel.schema, "rate", CmpOp::Gt, Value::Float(1.0)).unwrap();
        let q = RelQuery::project(rel, vec![p], &["region"]).unwrap();
        let mut delta = ZSet::new();
        delta.insert(tuple![7i64, 30i64, 0.5f64], 1); // filtered out
        delta.insert(tuple![8i64, 30i64, 5.0f64], 1); // kept
        let mut w = WorkCounter::default();
        match q.delta(&delta, &mut w).unwrap() {
            SummaryDelta::Rows(rows) => {
                assert_eq!(rows.entry_count(), 1);
                assert_eq!(rows.weight(&tuple![30i64]), 1);
            }
            _ => panic!("expected rows"),
        }
    }

    #[test]
    fn eval_is_the_recomputation_oracle() {
        let (cat, rel) = setup();
        let q = RelQuery::group_agg(
            rel.clone(),
            vec![],
            &["region"],
            vec![
                AggSpec::new(AggFunc::Sum(2), "s"),
                AggSpec::new(AggFunc::CountStar, "n"),
            ],
        )
        .unwrap();
        let rows = q.eval(cat.relation(rel.id).current()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple![10i64, 2.0f64, 2i64]);
        assert_eq!(rows[1], tuple![20i64, 2.0f64, 1i64]);

        let proj = RelQuery::project(rel.clone(), vec![], &["region"]).unwrap();
        let rows = proj.eval(cat.relation(rel.id).current()).unwrap();
        assert_eq!(rows, vec![tuple![10i64], tuple![20i64]], "set semantics");
    }
}
