//! Language fragments and incremental-maintenance complexity classes.
//!
//! §3 of the paper defines the complexity of a chronicle model as the
//! complexity of incrementally maintaining views written in its language
//! `L`, and introduces the classes
//!
//! ```text
//! IM-Constant ⊂ IM-log(R) ⊂ IM-R^k ⊂ IM-C^k
//! ```
//!
//! Theorem 4.5 places SCA₁ in IM-Constant, SCA⋈ in IM-log(R) and SCA in
//! IM-R^k; Proposition 3.1 places full relational algebra in IM-C^k (and
//! not in IM-R^k). Theorem 4.2 gives the concrete cost model for change
//! computation that [`CostModel`] encodes.

use std::fmt;

/// Which sub-language of chronicle algebra an expression falls in
/// (Def. 4.2). Ordered by inclusion: `Ca1 ⊂ CaKey ⊂ Ca`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LanguageFragment {
    /// CA₁ — no relation operands at all.
    Ca1,
    /// CA⋈ — relations touched only through key joins (at most a constant
    /// number of relation tuples join each chronicle tuple).
    CaKey,
    /// Full CA — cross products with relations allowed.
    Ca,
}

impl LanguageFragment {
    /// The IM class of *summarized* views over this fragment (Thm 4.5).
    pub fn im_class(self) -> ImClass {
        match self {
            LanguageFragment::Ca1 => ImClass::Constant,
            LanguageFragment::CaKey => ImClass::LogR,
            LanguageFragment::Ca => ImClass::PolyR,
        }
    }

    /// Human-readable name matching the paper's notation.
    pub fn paper_name(self) -> &'static str {
        match self {
            LanguageFragment::Ca1 => "CA_1",
            LanguageFragment::CaKey => "CA_join",
            LanguageFragment::Ca => "CA",
        }
    }
}

impl fmt::Display for LanguageFragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The incremental-maintenance complexity classes of §3: the time to
/// maintain a persistent view in response to a single append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImClass {
    /// IM-Constant: constant time — not even index lookups.
    Constant,
    /// IM-log(R): logarithmic in the size of the relations.
    LogR,
    /// IM-R^k: polynomial in the size of the relations.
    PolyR,
    /// IM-C^k: polynomial in the size of the chronicle — "totally
    /// impractical for an operation to be executed after each append".
    PolyC,
}

impl ImClass {
    /// The paper's name for the class.
    pub fn paper_name(self) -> &'static str {
        match self {
            ImClass::Constant => "IM-Constant",
            ImClass::LogR => "IM-log(R)",
            ImClass::PolyR => "IM-R^k",
            ImClass::PolyC => "IM-C^k",
        }
    }

    /// Whether views in this class can be maintained without storing or
    /// accessing the chronicle.
    pub fn chronicle_free(self) -> bool {
        self != ImClass::PolyC
    }
}

impl fmt::Display for ImClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The Theorem 4.2 cost model for change computation of a chronicle-algebra
/// expression: with `u` unions and `j` equijoins/cross-products,
///
/// * CA:  time `O((u·|R|)^j · log|R|)`, space `O((u·|R|)^j)`
/// * CA⋈: time `O(u^j · log|R|)`,       space `O(u^j)`
/// * CA₁: time `O(u^j)`,                space `O(u^j)`
///
/// (independent of `|C|` and of the view size in every case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Number of union operators in the expression.
    pub unions: u32,
    /// Number of SN-equijoins, key joins, and chronicle×relation products.
    pub joins: u32,
    /// The fragment, which selects the formula.
    pub fragment: LanguageFragment,
}

impl CostModel {
    /// Predicted change-computation *time* bound for relation size `r`
    /// (arbitrary units; used by experiments to check curve shapes, not
    /// absolute constants). `u` is taken as `max(unions, 1)` so that the
    /// formulas stay meaningful when `u = 0`.
    pub fn predicted_time(&self, r: usize) -> f64 {
        let u = self.unions.max(1) as f64;
        let j = self.joins as f64;
        let r = r.max(2) as f64;
        match self.fragment {
            LanguageFragment::Ca => (u * r).powf(j) * r.log2(),
            LanguageFragment::CaKey => u.powf(j) * r.log2(),
            LanguageFragment::Ca1 => u.powf(j),
        }
    }

    /// Predicted change-computation *space* bound (number of delta tuples).
    pub fn predicted_space(&self, r: usize) -> f64 {
        let u = self.unions.max(1) as f64;
        let j = self.joins as f64;
        let r = r.max(2) as f64;
        match self.fragment {
            LanguageFragment::Ca => (u * r).powf(j),
            LanguageFragment::CaKey | LanguageFragment::Ca1 => u.powf(j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_inclusion_order() {
        assert!(LanguageFragment::Ca1 < LanguageFragment::CaKey);
        assert!(LanguageFragment::CaKey < LanguageFragment::Ca);
    }

    #[test]
    fn fragment_to_class_matches_theorem_4_5() {
        assert_eq!(LanguageFragment::Ca1.im_class(), ImClass::Constant);
        assert_eq!(LanguageFragment::CaKey.im_class(), ImClass::LogR);
        assert_eq!(LanguageFragment::Ca.im_class(), ImClass::PolyR);
    }

    #[test]
    fn class_strictness_order() {
        assert!(ImClass::Constant < ImClass::LogR);
        assert!(ImClass::LogR < ImClass::PolyR);
        assert!(ImClass::PolyR < ImClass::PolyC);
    }

    #[test]
    fn only_polyc_needs_the_chronicle() {
        assert!(ImClass::Constant.chronicle_free());
        assert!(ImClass::LogR.chronicle_free());
        assert!(ImClass::PolyR.chronicle_free());
        assert!(!ImClass::PolyC.chronicle_free());
    }

    #[test]
    fn cost_model_shapes() {
        // CA with one product: time grows ~ r log r.
        let ca = CostModel {
            unions: 0,
            joins: 1,
            fragment: LanguageFragment::Ca,
        };
        assert!(ca.predicted_time(1 << 16) > 100.0 * ca.predicted_time(64));

        // CA⋈ with one join: grows only logarithmically.
        let cak = CostModel {
            unions: 0,
            joins: 1,
            fragment: LanguageFragment::CaKey,
        };
        let growth = cak.predicted_time(1 << 20) / cak.predicted_time(1 << 10);
        assert!(growth < 3.0, "log growth expected, got {growth}");

        // CA₁: flat in r.
        let ca1 = CostModel {
            unions: 2,
            joins: 2,
            fragment: LanguageFragment::Ca1,
        };
        assert_eq!(ca1.predicted_time(10), ca1.predicted_time(1_000_000));
        assert_eq!(ca1.predicted_space(10), 4.0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ImClass::LogR.paper_name(), "IM-log(R)");
        assert_eq!(LanguageFragment::CaKey.paper_name(), "CA_join");
    }
}
