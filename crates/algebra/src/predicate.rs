//! The selection-predicate language of Definition 4.1.
//!
//! *"A selection on a chronicle, σ_p(C), where p is a predicate of the form
//! A₁θA₂, or A₁θk, or a disjunction of such terms, k is a constant, and θ
//! is one of {=, ≠, ≤, <, >, ≥}."*
//!
//! A conjunction is not part of the predicate language itself, but `σ_{p∧q}`
//! is expressible as `σ_p(σ_q(C))` — the SQL planner performs exactly that
//! decomposition, so the fragment loses no selection power on conjunctive
//! conditions.

use std::fmt;

use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value};

/// A comparison operator θ ∈ {=, ≠, <, ≤, >, ≥}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering outcome. `None` (NULL involved or
    /// incomparable) yields `false`, matching SQL's unknown-is-not-selected.
    pub fn test(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match (self, ord) {
            (_, None) => false,
            (CmpOp::Eq, Some(Equal)) => true,
            (CmpOp::Ne, Some(Less | Greater)) => true,
            (CmpOp::Lt, Some(Less)) => true,
            (CmpOp::Le, Some(Less | Equal)) => true,
            (CmpOp::Gt, Some(Greater)) => true,
            (CmpOp::Ge, Some(Greater | Equal)) => true,
            _ => false,
        }
    }

    /// The operator with its operands swapped (`a θ b` ⇔ `b θ' a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The right-hand side of an atom: another attribute or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An attribute, by position in the input schema.
    Attr(usize),
    /// A constant `k`.
    Const(Value),
}

/// One atomic term `A θ B` or `A θ k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Left attribute position.
    pub left: usize,
    /// The comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl Atom {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        let l = tuple.get(self.left);
        let r = match &self.right {
            Operand::Attr(p) => tuple.get(*p),
            Operand::Const(v) => v,
        };
        Ok(self.op.test(l.sql_cmp(r)?))
    }
}

/// A predicate: a disjunction of atoms (Def. 4.1). The empty disjunction is
/// not representable; use [`Predicate::always`] for the trivial predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Selects every tuple (σ_true).
    True,
    /// `atom₁ ∨ atom₂ ∨ …` (at least one atom).
    Or(Vec<Atom>),
}

impl Predicate {
    /// The trivially true predicate.
    pub fn always() -> Predicate {
        Predicate::True
    }

    /// A single-atom predicate `left θ right` with positional operands.
    pub fn atom(left: usize, op: CmpOp, right: Operand) -> Predicate {
        Predicate::Or(vec![Atom { left, op, right }])
    }

    /// A disjunction of atoms. Errors if `atoms` is empty.
    pub fn disjunction(atoms: Vec<Atom>) -> Result<Predicate> {
        if atoms.is_empty() {
            return Err(ChronicleError::NotInLanguage {
                language: "CA",
                reason: "empty disjunction".into(),
            });
        }
        Ok(Predicate::Or(atoms))
    }

    /// Name-based constructor: `attr θ constant`.
    pub fn attr_cmp_const(
        schema: &Schema,
        attr: &str,
        op: CmpOp,
        value: Value,
    ) -> Result<Predicate> {
        let left = schema.position(attr)?;
        Self::check_types(schema, left, &Operand::Const(value.clone()))?;
        Ok(Predicate::atom(left, op, Operand::Const(value)))
    }

    /// Name-based constructor: `attr₁ θ attr₂`.
    pub fn attr_cmp_attr(schema: &Schema, a: &str, op: CmpOp, b: &str) -> Result<Predicate> {
        let left = schema.position(a)?;
        let right = schema.position(b)?;
        Self::check_types(schema, left, &Operand::Attr(right))?;
        Ok(Predicate::atom(left, op, Operand::Attr(right)))
    }

    /// Validate that every atom's positions are in range and its operand
    /// types are comparable under `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let Predicate::Or(atoms) = self else {
            return Ok(());
        };
        for a in atoms {
            if a.left >= schema.arity() {
                return Err(ChronicleError::UnknownAttribute {
                    name: format!("position {}", a.left),
                    context: "selection predicate".into(),
                });
            }
            if let Operand::Attr(p) = a.right {
                if p >= schema.arity() {
                    return Err(ChronicleError::UnknownAttribute {
                        name: format!("position {p}"),
                        context: "selection predicate".into(),
                    });
                }
            }
            Self::check_types(schema, a.left, &a.right)?;
        }
        Ok(())
    }

    fn check_types(schema: &Schema, left: usize, right: &Operand) -> Result<()> {
        use chronicle_types::AttrType as T;
        let lt = schema.attr(left).ty;
        let rt = match right {
            Operand::Attr(p) => Some(schema.attr(*p).ty),
            Operand::Const(v) => v.attr_type(),
        };
        let Some(rt) = rt else { return Ok(()) }; // NULL constant: legal, never matches
        let compatible = lt == rt || matches!((lt, rt), (T::Int, T::Float) | (T::Float, T::Int));
        if !compatible {
            return Err(ChronicleError::TypeMismatch {
                context: "selection predicate".into(),
                left: lt.to_string(),
                right: rt.to_string(),
            });
        }
        Ok(())
    }

    /// Evaluate against a tuple: true iff any atom holds.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Or(atoms) => {
                for a in atoms {
                    if a.eval(tuple)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Remap every attribute position through `map` (used when predicates
    /// are pushed through projections). `map[i]` is the new position of old
    /// position `i`; `None` means the attribute was projected away, which
    /// is an error.
    pub fn remap(&self, map: &[Option<usize>]) -> Result<Predicate> {
        match self {
            Predicate::True => Ok(Predicate::True),
            Predicate::Or(atoms) => {
                let mut out = Vec::with_capacity(atoms.len());
                for a in atoms {
                    let left = map[a.left].ok_or_else(|| ChronicleError::UnknownAttribute {
                        name: format!("position {}", a.left),
                        context: "predicate remap".into(),
                    })?;
                    let right = match &a.right {
                        Operand::Attr(p) => Operand::Attr(map[*p].ok_or_else(|| {
                            ChronicleError::UnknownAttribute {
                                name: format!("position {p}"),
                                context: "predicate remap".into(),
                            }
                        })?),
                        Operand::Const(v) => Operand::Const(v.clone()),
                    };
                    out.push(Atom {
                        left,
                        op: a.op,
                        right,
                    });
                }
                Ok(Predicate::Or(out))
            }
        }
    }

    /// The attribute positions this predicate reads.
    pub fn referenced_attrs(&self) -> Vec<usize> {
        match self {
            Predicate::True => Vec::new(),
            Predicate::Or(atoms) => {
                let mut v = Vec::new();
                for a in atoms {
                    v.push(a.left);
                    if let Operand::Attr(p) = a.right {
                        v.push(p);
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// Quick satisfiability pre-filter for the view router (§5.2): if every
    /// atom is of the form `attr = const` on the *same* attribute with
    /// pairwise-distinct constants, a tuple can only match one of them; more
    /// usefully, a predicate whose atoms all compare attribute `a` to
    /// constants defines a residue set we can test a candidate value
    /// against without touching the full tuple. Returns `Some(positions)`
    /// of attributes that must be examined, `None` if the predicate always
    /// passes.
    pub fn filter_attrs(&self) -> Option<Vec<usize>> {
        match self {
            Predicate::True => None,
            Predicate::Or(_) => Some(self.referenced_attrs()),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Or(atoms) => {
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    match &a.right {
                        Operand::Attr(p) => write!(f, "${} {} ${}", a.left, a.op, p)?,
                        Operand::Const(v) => write!(f, "${} {} {}", a.left, a.op, v)?,
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::{tuple, AttrType, Attribute, SeqNo};

    fn schema() -> Schema {
        Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
                Attribute::new("dest", AttrType::Str),
            ],
            "sn",
        )
        .unwrap()
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Some(Equal)));
        assert!(!CmpOp::Eq.test(Some(Less)));
        assert!(CmpOp::Ne.test(Some(Greater)));
        assert!(CmpOp::Le.test(Some(Equal)));
        assert!(CmpOp::Ge.test(Some(Greater)));
        assert!(!CmpOp::Lt.test(None), "NULL comparisons select nothing");
    }

    #[test]
    fn flipped_round_trip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
    }

    #[test]
    fn attr_const_predicate() {
        let s = schema();
        let p = Predicate::attr_cmp_const(&s, "minutes", CmpOp::Gt, Value::Float(10.0)).unwrap();
        let t_hit = tuple![SeqNo(1), 555i64, 12.5f64, "NYC"];
        let t_miss = tuple![SeqNo(2), 555i64, 2.0f64, "NYC"];
        assert!(p.eval(&t_hit).unwrap());
        assert!(!p.eval(&t_miss).unwrap());
    }

    #[test]
    fn attr_attr_predicate() {
        let s = schema();
        let p = Predicate::attr_cmp_attr(&s, "caller", CmpOp::Lt, "minutes").unwrap();
        assert!(p.eval(&tuple![SeqNo(1), 5i64, 12.5f64, "x"]).unwrap());
        assert!(!p.eval(&tuple![SeqNo(1), 50i64, 12.5f64, "x"]).unwrap());
    }

    #[test]
    fn disjunction_any_atom_selects() {
        let s = schema();
        let p = Predicate::disjunction(vec![
            Atom {
                left: s.position("dest").unwrap(),
                op: CmpOp::Eq,
                right: Operand::Const(Value::str("NYC")),
            },
            Atom {
                left: s.position("minutes").unwrap(),
                op: CmpOp::Gt,
                right: Operand::Const(Value::Float(100.0)),
            },
        ])
        .unwrap();
        assert!(p.eval(&tuple![SeqNo(1), 1i64, 5.0f64, "NYC"]).unwrap());
        assert!(p.eval(&tuple![SeqNo(1), 1i64, 500.0f64, "LA"]).unwrap());
        assert!(!p.eval(&tuple![SeqNo(1), 1i64, 5.0f64, "LA"]).unwrap());
    }

    #[test]
    fn empty_disjunction_rejected() {
        assert!(Predicate::disjunction(vec![]).is_err());
    }

    #[test]
    fn type_mismatch_rejected_at_build() {
        let s = schema();
        let err = Predicate::attr_cmp_const(&s, "dest", CmpOp::Gt, Value::Int(3)).unwrap_err();
        assert!(matches!(err, ChronicleError::TypeMismatch { .. }));
        let err = Predicate::attr_cmp_attr(&s, "caller", CmpOp::Eq, "dest").unwrap_err();
        assert!(matches!(err, ChronicleError::TypeMismatch { .. }));
    }

    #[test]
    fn int_float_comparison_allowed() {
        let s = schema();
        // minutes FLOAT vs integer constant: fine.
        let p = Predicate::attr_cmp_const(&s, "minutes", CmpOp::Ge, Value::Int(10)).unwrap();
        assert!(p.eval(&tuple![SeqNo(1), 1i64, 10.0f64, "x"]).unwrap());
    }

    #[test]
    fn unknown_attribute_rejected() {
        let s = schema();
        assert!(Predicate::attr_cmp_const(&s, "ghost", CmpOp::Eq, Value::Int(1)).is_err());
    }

    #[test]
    fn validate_checks_positions() {
        let s = schema();
        let bad = Predicate::atom(99, CmpOp::Eq, Operand::Const(Value::Int(1)));
        assert!(bad.validate(&s).is_err());
        let bad = Predicate::atom(1, CmpOp::Eq, Operand::Attr(99));
        assert!(bad.validate(&s).is_err());
        let ok = Predicate::atom(1, CmpOp::Eq, Operand::Const(Value::Int(1)));
        assert!(ok.validate(&s).is_ok());
    }

    #[test]
    fn null_constant_never_matches() {
        let s = schema();
        let p = Predicate::attr_cmp_const(&s, "caller", CmpOp::Eq, Value::Null).unwrap();
        assert!(!p.eval(&tuple![SeqNo(1), 1i64, 1.0f64, "x"]).unwrap());
    }

    #[test]
    fn remap_through_projection() {
        // Project onto (sn, minutes): old positions 0,2 -> new 0,1.
        let p = Predicate::atom(2, CmpOp::Gt, Operand::Const(Value::Float(1.0)));
        let map = vec![Some(0), None, Some(1), None];
        let q = p.remap(&map).unwrap();
        assert!(q.eval(&tuple![SeqNo(1), 2.0f64]).unwrap());
        // Predicate on a projected-away attribute cannot be remapped.
        let p2 = Predicate::atom(1, CmpOp::Eq, Operand::Const(Value::Int(5)));
        assert!(p2.remap(&map).is_err());
    }

    #[test]
    fn referenced_attrs_sorted_dedup() {
        let p = Predicate::disjunction(vec![
            Atom {
                left: 2,
                op: CmpOp::Eq,
                right: Operand::Attr(1),
            },
            Atom {
                left: 1,
                op: CmpOp::Gt,
                right: Operand::Const(Value::Int(0)),
            },
        ])
        .unwrap();
        assert_eq!(p.referenced_attrs(), vec![1, 2]);
        assert_eq!(Predicate::True.referenced_attrs(), Vec::<usize>::new());
    }

    #[test]
    fn display_is_readable() {
        let s = schema();
        let p = Predicate::attr_cmp_const(&s, "minutes", CmpOp::Gt, Value::Float(10.0)).unwrap();
        assert_eq!(p.to_string(), "$2 > 10");
        assert_eq!(Predicate::True.to_string(), "true");
    }
}
