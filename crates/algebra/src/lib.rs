//! Chronicle algebra, summarized chronicle algebra, and the incremental
//! maintenance machinery — the formal core of the paper.
//!
//! * [`Predicate`] — the selection language of Def. 4.1: disjunctions of
//!   atomic comparisons `A θ B` / `A θ k`,
//! * [`AggFunc`] / [`Accumulator`] — incrementally computable (and
//!   decomposable) aggregation functions,
//! * [`CaExpr`] — chronicle algebra expressions with eager validation; the
//!   builders reject exactly the constructions Theorem 4.3 proves must be
//!   rejected (SN-dropping projection/grouping, chronicle×chronicle
//!   products, non-equi SN joins) with typed errors,
//! * [`ScaExpr`] / [`Summarize`] — the summarization step of Def. 4.3
//!   mapping a chronicle expression to a relation,
//! * [`LanguageFragment`] / [`ImClass`] — static classification into
//!   CA₁ ⊂ CA⋈ ⊂ CA and the incremental-maintenance complexity classes
//!   IM-Constant ⊂ IM-log(R) ⊂ IM-R^k ⊂ IM-C^k of §3, with the Theorem 4.2
//!   cost model,
//! * [`delta`] — the stateless delta-propagation engine implementing the
//!   Δ-rules from the Theorem 4.1 proof (no access to the chronicle, no
//!   materialized intermediates),
//! * [`eval`] — a full (non-incremental) evaluator over *stored* chronicles
//!   with exact temporal-join semantics; the correctness oracle,
//! * [`ra`] — general relational algebra over chronicles and relations
//!   (the Proposition 3.1 baseline: expressible, but maintainable only by
//!   recomputation in time polynomial in |C|).

#![warn(missing_docs)]

mod aggregate;
mod classify;
pub mod delta;
pub mod eval;
mod expr;
pub mod kernels;
mod predicate;
pub mod ra;
mod relq;
pub mod rewrite;
mod sca;
pub mod zset;

pub use aggregate::{AccState, Accumulator, AggFunc, AggSpec};
pub use classify::{CostModel, ImClass, LanguageFragment};
pub use delta::{DeltaBatch, SummaryDelta, WorkCounter};
pub use expr::{CaExpr, ChronicleRef, RelationRef};
pub use kernels::{plan as vector_plan, scalar_fallback_forced, VectorPlan};
pub use predicate::{Atom, CmpOp, Operand, Predicate};
pub use relq::RelQuery;
pub use rewrite::optimize;
pub use sca::{ScaExpr, Summarize};
pub use zset::ZSet;
