//! Full (non-incremental) evaluation of CA and SCA expressions over
//! *stored* chronicles — the correctness oracle.
//!
//! This evaluator implements the paper's exact semantics, including the
//! implicit temporal join of §2.3: every chronicle tuple joins the relation
//! *version associated with its sequence number* (reconstructed via
//! [`chronicle_store::TemporalRelation::version_at`]). The incremental
//! engine only ever joins deltas against the current version; the oracle
//! proves that, under the proactive-update rule, the two agree.
//!
//! It requires chronicles with [`chronicle_store::Retention::All`]; with a
//! smaller retention it fails with
//! [`chronicle_types::ChronicleError::ChronicleNotStored`] — the paper's
//! starting observation that recomputation is not an option in production.

use std::collections::{HashMap, HashSet};

use chronicle_store::{Catalog, Relation};
use chronicle_types::{Result, SeqNo, Tuple, Value};

use crate::aggregate::aggregate_group;
use crate::expr::{CaExpr, CaNode};
use crate::sca::{ScaExpr, Summarize};

/// Evaluate a chronicle-algebra expression over the fully stored
/// chronicles. The result is the complete chronicle view (a sequence of
/// tuples; order unspecified, compare as multisets).
pub fn eval_ca(catalog: &Catalog, expr: &CaExpr) -> Result<Vec<Tuple>> {
    let mut cache = VersionCache::default();
    eval_node(catalog, expr, &mut cache)
}

/// Per-evaluation cache of reconstructed relation versions, keyed by
/// (relation, sequence number). Keeps the oracle polynomial instead of
/// quadratic when many tuples share few sequence numbers.
#[derive(Default)]
struct VersionCache {
    versions: HashMap<(u32, SeqNo), Relation>,
}

impl VersionCache {
    fn version<'a>(
        &'a mut self,
        catalog: &Catalog,
        rel: chronicle_types::RelationId,
        seq: SeqNo,
    ) -> Result<&'a Relation> {
        use std::collections::hash_map::Entry;
        Ok(match self.versions.entry((rel.0, seq)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(catalog.relation(rel).version_at(seq)?),
        })
    }
}

fn eval_node(catalog: &Catalog, expr: &CaExpr, cache: &mut VersionCache) -> Result<Vec<Tuple>> {
    match &*expr.node {
        CaNode::Base(r) => {
            let c = catalog.chronicle(r.id);
            Ok(c.scan_all()?.cloned().collect())
        }
        CaNode::Select { input, pred } => {
            let rows = eval_node(catalog, input, cache)?;
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                if pred.eval(&t)? {
                    out.push(t);
                }
            }
            Ok(out)
        }
        CaNode::Project { input, cols } => {
            let rows = eval_node(catalog, input, cache)?;
            // Projection keeps the SN, so distinct inputs stay distinct
            // except for exact duplicates, which set semantics discard.
            let mut seen = HashSet::new();
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                let p = t.project(cols);
                if seen.insert(p.clone()) {
                    out.push(p);
                }
            }
            Ok(out)
        }
        CaNode::JoinSeq {
            left,
            right,
            right_keep,
        } => {
            let l = eval_node(catalog, left, cache)?;
            let r = eval_node(catalog, right, cache)?;
            let lsn = left.seq_pos();
            let rsn = right.seq_pos();
            let mut by_sn: HashMap<Value, Vec<&Tuple>> = HashMap::new();
            for t in &r {
                by_sn.entry(t.get(rsn).clone()).or_default().push(t);
            }
            let mut out = Vec::new();
            for lt in &l {
                if let Some(matches) = by_sn.get(lt.get(lsn)) {
                    for rt in matches {
                        let kept: Vec<Value> =
                            right_keep.iter().map(|&c| rt.get(c).clone()).collect();
                        out.push(lt.concat_values(&kept));
                    }
                }
            }
            Ok(out)
        }
        CaNode::Union { left, right } => {
            let l = eval_node(catalog, left, cache)?;
            let r = eval_node(catalog, right, cache)?;
            let mut seen: HashSet<Tuple> = HashSet::with_capacity(l.len() + r.len());
            let mut out = Vec::with_capacity(l.len() + r.len());
            for t in l.into_iter().chain(r) {
                if seen.insert(t.clone()) {
                    out.push(t);
                }
            }
            Ok(out)
        }
        CaNode::Diff { left, right } => {
            let l = eval_node(catalog, left, cache)?;
            let r: HashSet<Tuple> = eval_node(catalog, right, cache)?.into_iter().collect();
            Ok(l.into_iter().filter(|t| !r.contains(t)).collect())
        }
        CaNode::GroupBySeq {
            input,
            group_cols,
            aggs,
        } => {
            let rows = eval_node(catalog, input, cache)?;
            let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
            for t in &rows {
                let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                groups.entry(key).or_default().push(t);
            }
            let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
            let sn = input.seq_pos();
            let mut out = Vec::with_capacity(groups.len());
            for (key, mut members) in groups {
                sort_canonical(&mut members, sn);
                let aggv = aggregate_group(&funcs, &members)?;
                let mut row = key;
                row.extend(aggv);
                out.push(Tuple::new(row));
            }
            Ok(out)
        }
        CaNode::ProductRel { input, rel } => {
            let rows = eval_node(catalog, input, cache)?;
            let sn = input.seq_pos();
            let mut out = Vec::new();
            for lt in &rows {
                // Temporal join: the version of R at this tuple's SN.
                let seq = lt.seq_at(sn)?;
                let version = cache.version(catalog, rel.id, seq)?;
                for rt in version.iter() {
                    out.push(lt.concat(rt));
                }
            }
            Ok(out)
        }
        CaNode::JoinRelKey {
            input,
            rel,
            chron_cols,
            rel_cols,
        } => {
            let rows = eval_node(catalog, input, cache)?;
            let sn = input.seq_pos();
            let mut out = Vec::new();
            for lt in &rows {
                let seq = lt.seq_at(sn)?;
                let key: Vec<Value> = chron_cols.iter().map(|&c| lt.get(c).clone()).collect();
                let version = cache.version(catalog, rel.id, seq)?;
                let (hits, _) = version.lookup_cols(rel_cols, &key);
                for rt in hits {
                    out.push(lt.concat(rt));
                }
            }
            Ok(out)
        }
    }
}

/// Evaluate an SCA expression from scratch: the *contents of the persistent
/// view* as a relation (set semantics), used to check incremental
/// maintenance for exact equality.
pub fn eval_sca(catalog: &Catalog, expr: &ScaExpr) -> Result<Vec<Tuple>> {
    let chron = eval_ca(catalog, expr.ca())?;
    match expr.summarize() {
        Summarize::Project { cols } => {
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for t in chron {
                let p = t.project(cols);
                if seen.insert(p.clone()) {
                    out.push(p);
                }
            }
            Ok(out)
        }
        Summarize::GroupAgg { group_cols, aggs } => {
            let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
            for t in &chron {
                let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                groups.entry(key).or_default().push(t);
            }
            let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
            let sn = expr.ca().seq_pos();
            let mut out = Vec::with_capacity(groups.len());
            for (key, mut members) in groups {
                sort_canonical(&mut members, sn);
                let aggv = aggregate_group(&funcs, &members)?;
                let mut row = key;
                // Sequence numbers leaving the chronicle become plain
                // integers (see ScaExpr::group_agg_cols).
                row.extend(aggv.into_iter().map(seq_to_int));
                out.push(Tuple::new(row));
            }
            Ok(out)
        }
    }
}

/// Order group members by (sequence number, tuple). Chronicle storage
/// yields SN-ascending scans already, so this only permutes *within* one
/// sequence number, where arrival order is semantically unobservable (one
/// batch = one SN). Fixing the tie-break to tuple order makes the
/// order-sensitive aggregates (FIRST/LAST) agree exactly with the
/// incremental path, which applies batches as consolidated Z-sets in tuple
/// order.
fn sort_canonical(members: &mut [&Tuple], sn: usize) {
    members.sort_by(|a, b| {
        a.seq_at(sn)
            .ok()
            .cmp(&b.seq_at(sn).ok())
            .then_with(|| a.cmp(b))
    });
}

/// Convert `Seq` aggregate outputs (e.g. `MAX(sn)`) to `Int`, matching the
/// summarized schema.
pub fn seq_to_int(v: Value) -> Value {
    match v {
        Value::Seq(s) => Value::Int(s.0 as i64),
        other => other,
    }
}

/// Sort a tuple multiset into canonical order for comparisons in tests.
pub fn canon(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::expr::RelationRef;
    use crate::predicate::{CmpOp, Predicate};
    use chronicle_store::Retention;
    use chronicle_types::{tuple, AttrType, Attribute, Chronon, Schema};

    fn setup() -> (Catalog, chronicle_types::ChronicleId, RelationRef) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("calls", g, cs, Retention::All)
            .unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("rates", rs.clone()).unwrap();
        cat.relation_insert(r, g, tuple![555i64, 0.1f64]).unwrap();
        (cat, c, RelationRef::new(r, rs, "rates"))
    }

    #[test]
    fn eval_base_and_select() {
        let (mut cat, c, _) = setup();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 9.0f64]])
            .unwrap();
        let e = CaExpr::chronicle(cat.chronicle(c));
        assert_eq!(eval_ca(&cat, &e).unwrap().len(), 2);
        let p =
            Predicate::attr_cmp_const(e.schema(), "minutes", CmpOp::Gt, Value::Float(5.0)).unwrap();
        let s = e.select(p).unwrap();
        assert_eq!(eval_ca(&cat, &s).unwrap().len(), 1);
    }

    #[test]
    fn eval_requires_full_retention() {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("v", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("c", g, cs, Retention::LastTuples(1))
            .unwrap();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 1i64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 2i64]])
            .unwrap();
        let e = CaExpr::chronicle(cat.chronicle(c));
        assert!(matches!(
            eval_ca(&cat, &e).unwrap_err(),
            chronicle_types::ChronicleError::ChronicleNotStored { .. }
        ));
    }

    #[test]
    fn temporal_join_uses_version_at_sn() {
        // Example 2.2 in miniature: rate changes between two appends; each
        // chronicle tuple joins the version live at its SN.
        let (mut cat, c, rel) = setup();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        let g = cat.group_id("g").unwrap();
        cat.relation_update(rel.id, g, &[Value::Int(555)], tuple![555i64, 0.5f64])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 4.0f64]])
            .unwrap();
        let e = CaExpr::chronicle(cat.chronicle(c))
            .join_rel_key(rel, &["caller"])
            .unwrap();
        let rows = canon(eval_ca(&cat, &e).unwrap());
        assert_eq!(rows.len(), 2);
        // SN 1 joined the old rate, SN 2 the new one.
        assert_eq!(rows[0].get(4).as_float(), Some(0.1));
        assert_eq!(rows[1].get(4).as_float(), Some(0.5));
    }

    #[test]
    fn eval_sca_group_agg() {
        let (mut cat, c, _) = setup();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 3.0f64]])
            .unwrap();
        cat.append(c, Chronon(3), &[tuple![SeqNo(3), 777i64, 9.0f64]])
            .unwrap();
        let v = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        let rows = canon(eval_sca(&cat, &v).unwrap());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values(), &[Value::Int(555), Value::Float(5.0)]);
        assert_eq!(rows[1].values(), &[Value::Int(777), Value::Float(9.0)]);
    }

    #[test]
    fn eval_sca_projection_dedups() {
        let (mut cat, c, _) = setup();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 3.0f64]])
            .unwrap();
        let v = ScaExpr::project(CaExpr::chronicle(cat.chronicle(c)), &["caller"]).unwrap();
        let rows = eval_sca(&cat, &v).unwrap();
        assert_eq!(rows.len(), 1, "both tuples project to caller=555");
    }

    #[test]
    fn max_sn_finalizes_to_int() {
        let (mut cat, c, _) = setup();
        cat.append(c, Chronon(1), &[tuple![SeqNo(1), 555i64, 2.0f64]])
            .unwrap();
        cat.append(c, Chronon(2), &[tuple![SeqNo(2), 555i64, 3.0f64]])
            .unwrap();
        let v = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::Max(0), "last_sn")],
        )
        .unwrap();
        let rows = eval_sca(&cat, &v).unwrap();
        assert_eq!(rows[0].get(1), &Value::Int(2));
    }
}
