//! Algebraic rewriting: selection pushdown.
//!
//! The chronicle model rewards pushing selections toward the base
//! chronicles twice over:
//!
//! 1. **smaller deltas** — a tuple filtered out at the base never reaches
//!    the joins and products whose output sizes carry the `(u·|R|)^j`
//!    factors of Theorem 4.2, and
//! 2. **router guards** — the §5.2 affected-view router can only use
//!    predicates that sit *directly* above a base chronicle
//!    ([`CaExpr::base_guards`]); pushdown turns interior selections into
//!    guards.
//!
//! [`optimize`] applies the classical sound rewrites, adapted to CA:
//!
//! ```text
//! σ_p(E₁ ∪ E₂)      = σ_p(E₁) ∪ σ_p(E₂)
//! σ_p(E₁ − E₂)      = σ_p(E₁) − σ_p(E₂)
//! σ_p(Π_cols(E))    = Π_cols(σ_p′(E))         p′ = p remapped through cols
//! σ_p(E₁ ⋈SN E₂)    = σ_p(E₁) ⋈SN E₂          when p reads only E₁ columns
//!                   = E₁ ⋈SN σ_p′(E₂)         when p reads only E₂ columns
//! σ_p(E × R)        = σ_p(E) × R              when p reads only E columns
//! σ_p(E ⋈key R)     = σ_p(E) ⋈key R           when p reads only E columns
//! σ_p(GROUPBY(E,…)) = GROUPBY(σ_p′(E),…)      when p reads only grouping
//!                                             columns
//! ```
//!
//! Every rewrite goes through the validating [`CaExpr`] builders, so an
//! optimized expression is by construction still in the language (and in
//! the *same fragment* — pushdown never adds or removes joins/products).

use chronicle_types::Result;

use crate::expr::{CaExpr, CaNode};
use crate::predicate::Predicate;

/// Push selections down as far as soundness allows. Idempotent; returns an
/// expression equivalent on every database (see the property tests).
pub fn optimize(expr: &CaExpr) -> Result<CaExpr> {
    match &*expr.node {
        CaNode::Base(r) => Ok(CaExpr::from_ref(r.clone())),
        CaNode::Select { input, pred } => {
            let input = optimize(input)?;
            push_select(input, pred.clone())
        }
        CaNode::Project { input, cols } => optimize(input)?.project_cols(cols.clone()),
        CaNode::JoinSeq { left, right, .. } => optimize(left)?.join_seq(optimize(right)?),
        CaNode::Union { left, right } => optimize(left)?.union(optimize(right)?),
        CaNode::Diff { left, right } => optimize(left)?.diff(optimize(right)?),
        CaNode::GroupBySeq {
            input,
            group_cols,
            aggs,
        } => optimize(input)?.group_by_seq_cols(group_cols.clone(), aggs.clone()),
        CaNode::ProductRel { input, rel } => optimize(input)?.product(rel.clone()),
        CaNode::JoinRelKey {
            input,
            rel,
            chron_cols,
            ..
        } => {
            let input = optimize(input)?;
            let names: Vec<String> = chron_cols
                .iter()
                .map(|&c| input.schema().attr(c).name.to_string())
                .collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            input.join_rel_key(rel.clone(), &name_refs)
        }
    }
}

/// Place `pred` above `input`, pushing it below `input`'s top operator when
/// sound. `input` is already optimized.
fn push_select(input: CaExpr, pred: Predicate) -> Result<CaExpr> {
    let refs = pred.referenced_attrs();
    match &*input.node {
        CaNode::Union { left, right } => {
            let l = push_select(left.as_ref().clone(), pred.clone())?;
            let r = push_select(right.as_ref().clone(), pred)?;
            l.union(r)
        }
        CaNode::Diff { left, right } => {
            let l = push_select(left.as_ref().clone(), pred.clone())?;
            let r = push_select(right.as_ref().clone(), pred)?;
            l.diff(r)
        }
        CaNode::Project { input: inner, cols } => {
            // Remap projected positions back to the inner schema.
            let map: Vec<Option<usize>> = cols.iter().map(|&c| Some(c)).collect();
            let inner_pred = pred.remap(&map)?;
            push_select(inner.as_ref().clone(), inner_pred)?.project_cols(cols.clone())
        }
        CaNode::JoinSeq {
            left,
            right,
            right_keep,
        } => {
            let l_arity = left.schema().arity();
            if refs.iter().all(|&r| r < l_arity) {
                let l = push_select(left.as_ref().clone(), pred)?;
                l.join_seq(right.as_ref().clone())
            } else if refs.iter().all(|&r| r >= l_arity) {
                // Output position l_arity + i corresponds to right column
                // right_keep[i]; additionally the right SN column equals the
                // left SN (join condition), but predicates on it would have
                // resolved to the left copy, so only kept columns appear.
                let mut map = vec![None; input.schema().arity()];
                for (i, &rc) in right_keep.iter().enumerate() {
                    map[l_arity + i] = Some(rc);
                }
                let inner_pred = pred.remap(&map)?;
                let r = push_select(right.as_ref().clone(), inner_pred)?;
                left.as_ref().clone().join_seq(r)
            } else {
                input.select(pred)
            }
        }
        CaNode::ProductRel { input: inner, .. } | CaNode::JoinRelKey { input: inner, .. } => {
            let inner_arity = inner.schema().arity();
            if refs.iter().all(|&r| r < inner_arity) {
                let pushed = push_select(inner.as_ref().clone(), pred)?;
                rebuild_rel_op(&input, pushed)
            } else {
                input.select(pred)
            }
        }
        CaNode::GroupBySeq {
            input: inner,
            group_cols,
            ..
        } => {
            // Output positions 0..group_cols.len() are the grouping columns.
            if refs.iter().all(|&r| r < group_cols.len()) {
                let mut map = vec![None; input.schema().arity()];
                for (i, &gc) in group_cols.iter().enumerate() {
                    map[i] = Some(gc);
                }
                let inner_pred = pred.remap(&map)?;
                let pushed = push_select(inner.as_ref().clone(), inner_pred)?;
                rebuild_group(&input, pushed)
            } else {
                input.select(pred)
            }
        }
        // Base or Select: stacking here is already a router guard.
        CaNode::Base(_) | CaNode::Select { .. } => input.select(pred),
    }
}

/// Rebuild a relation operator (`× R` or `⋈key R`) over a new input.
fn rebuild_rel_op(original: &CaExpr, new_input: CaExpr) -> Result<CaExpr> {
    match &*original.node {
        CaNode::ProductRel { rel, .. } => new_input.product(rel.clone()),
        CaNode::JoinRelKey {
            rel, chron_cols, ..
        } => {
            let names: Vec<String> = chron_cols
                .iter()
                .map(|&c| new_input.schema().attr(c).name.to_string())
                .collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            new_input.join_rel_key(rel.clone(), &name_refs)
        }
        _ => unreachable!("caller matched a relation operator"),
    }
}

/// Rebuild a GROUPBY over a new input.
fn rebuild_group(original: &CaExpr, new_input: CaExpr) -> Result<CaExpr> {
    match &*original.node {
        CaNode::GroupBySeq {
            group_cols, aggs, ..
        } => new_input.group_by_seq_cols(group_cols.clone(), aggs.clone()),
        _ => unreachable!("caller matched a group operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::delta::{DeltaBatch, DeltaEngine, WorkCounter};
    use crate::eval::{canon, eval_ca};
    use crate::expr::RelationRef;
    use crate::predicate::CmpOp;
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::{tuple, AttrType, Attribute, ChronicleId, Chronon, Schema, SeqNo, Value};

    fn setup() -> (Catalog, ChronicleId, ChronicleId, RelationRef) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("k", AttrType::Int),
                Attribute::new("v", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c1 = cat
            .create_chronicle("c1", g, cs.clone(), Retention::All)
            .unwrap();
        let c2 = cat.create_chronicle("c2", g, cs, Retention::All).unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("k", AttrType::Int),
                Attribute::new("w", AttrType::Float),
            ],
            &["k"],
        )
        .unwrap();
        let r = cat.create_relation("r", rs.clone()).unwrap();
        for i in 0..4i64 {
            cat.relation_insert(r, g, tuple![i, 0.5f64]).unwrap();
        }
        (cat, c1, c2, RelationRef::new(r, rs, "r"))
    }

    fn populate(cat: &mut Catalog, c1: ChronicleId, c2: ChronicleId) {
        let mut seq = 0u64;
        for i in 0..12i64 {
            seq += 1;
            let target = if i % 2 == 0 { c1 } else { c2 };
            cat.append_at(
                target,
                SeqNo(seq),
                Chronon(seq as i64),
                &[tuple![SeqNo(seq), i % 4, (i % 5) as f64]],
            )
            .unwrap();
        }
    }

    fn gt(e: &CaExpr, attr: &str, v: f64) -> Predicate {
        Predicate::attr_cmp_const(e.schema(), attr, CmpOp::Gt, Value::Float(v)).unwrap()
    }

    /// Assert optimize() preserves full-evaluation semantics and delta
    /// semantics, and return the optimized expression.
    fn check_equiv(cat: &Catalog, expr: &CaExpr, c1: ChronicleId) -> CaExpr {
        let opt = optimize(expr).unwrap();
        assert_eq!(
            canon(eval_ca(cat, expr).unwrap()),
            canon(eval_ca(cat, &opt).unwrap()),
            "full evaluation diverged"
        );
        let engine = DeltaEngine::new(cat);
        let batch = DeltaBatch {
            chronicle: c1,
            seq: SeqNo(1000),
            tuples: vec![tuple![SeqNo(1000), 2i64, 3.0f64]],
        };
        let mut w1 = WorkCounter::default();
        let mut w2 = WorkCounter::default();
        let d1 = canon(engine.delta_ca(expr, &batch, &mut w1).unwrap());
        let d2 = canon(engine.delta_ca(&opt, &batch, &mut w2).unwrap());
        assert_eq!(d1, d2, "delta diverged");
        assert_eq!(expr.fragment(), opt.fragment(), "fragment changed");
        opt
    }

    #[test]
    fn select_pushes_through_union() {
        let (mut cat, c1, c2, _) = setup();
        populate(&mut cat, c1, c2);
        let e = CaExpr::chronicle(cat.chronicle(c1))
            .union(CaExpr::chronicle(cat.chronicle(c2)))
            .unwrap();
        let p = gt(&e, "v", 2.0);
        let expr = e.select(p).unwrap();
        assert!(expr.base_guards().iter().all(|(_, g)| g.is_empty()));
        let opt = check_equiv(&cat, &expr, c1);
        // After pushdown both bases carry the guard.
        assert!(opt.base_guards().iter().all(|(_, g)| g.len() == 1));
    }

    #[test]
    fn select_pushes_through_diff_and_project() {
        let (mut cat, c1, c2, _) = setup();
        populate(&mut cat, c1, c2);
        let e = CaExpr::chronicle(cat.chronicle(c1))
            .diff(CaExpr::chronicle(cat.chronicle(c2)))
            .unwrap()
            .project(&["sn", "v"])
            .unwrap();
        let p = gt(&e, "v", 1.0);
        let expr = e.select(p).unwrap();
        let opt = check_equiv(&cat, &expr, c1);
        assert!(
            opt.base_guards().iter().all(|(_, g)| g.len() == 1),
            "guard should reach both diff operands through the projection"
        );
    }

    #[test]
    fn select_pushes_below_relation_ops() {
        let (mut cat, c1, c2, rel) = setup();
        populate(&mut cat, c1, c2);
        for (expr, label) in [
            (
                CaExpr::chronicle(cat.chronicle(c1))
                    .join_rel_key(rel.clone(), &["k"])
                    .unwrap(),
                "key join",
            ),
            (
                CaExpr::chronicle(cat.chronicle(c1))
                    .product(rel.clone())
                    .unwrap(),
                "product",
            ),
        ] {
            let p = gt(&expr, "v", 2.0); // chronicle column only
            let selected = expr.select(p).unwrap();
            let opt = check_equiv(&cat, &selected, c1);
            assert_eq!(
                opt.base_guards()[0].1.len(),
                1,
                "{label}: predicate should reach the base"
            );
            // Predicate on the relation column must NOT be pushed.
            let p = gt(&opt, "w", 0.1);
            let stay = optimize(&opt.clone().select(p).unwrap()).unwrap();
            assert!(
                stay.base_guards()[0].1.len() == 1,
                "{label}: rel pred stays"
            );
        }
    }

    #[test]
    fn select_pushes_through_group_by_on_group_cols_only() {
        let (mut cat, c1, c2, _) = setup();
        populate(&mut cat, c1, c2);
        let grouped = CaExpr::chronicle(cat.chronicle(c1))
            .group_by_seq(&["sn", "k"], vec![AggSpec::new(AggFunc::Sum(2), "s")])
            .unwrap();
        // Predicate on grouping column k (output position 1): pushable.
        let p = Predicate::attr_cmp_const(grouped.schema(), "k", CmpOp::Eq, Value::Int(2)).unwrap();
        let expr = grouped.clone().select(p).unwrap();
        let opt = check_equiv(&cat, &expr, c1);
        assert_eq!(opt.base_guards()[0].1.len(), 1);
        // Predicate on the aggregate output: must stay above.
        let p = gt(&grouped, "s", 1.0);
        let expr = grouped.select(p).unwrap();
        let opt = check_equiv(&cat, &expr, c1);
        assert!(opt.base_guards()[0].1.is_empty());
    }

    #[test]
    fn join_seq_pushdown_left_and_right() {
        let (mut cat, c1, c2, _) = setup();
        populate(&mut cat, c1, c2);
        let joined = CaExpr::chronicle(cat.chronicle(c1))
            .join_seq(CaExpr::chronicle(cat.chronicle(c2)))
            .unwrap();
        // Left-side predicate.
        let p = gt(&joined, "v", 1.0);
        let opt = check_equiv(&cat, &joined.clone().select(p).unwrap(), c1);
        let guards = opt.base_guards();
        assert_eq!(guards[0].1.len(), 1, "left base guarded");
        assert_eq!(guards[1].1.len(), 0, "right base untouched");
        // Right-side predicate (renamed column `r.v`).
        let p = gt(&joined, "r.v", 1.0);
        let opt = check_equiv(&cat, &joined.select(p).unwrap(), c1);
        let guards = opt.base_guards();
        assert_eq!(guards[0].1.len(), 0);
        assert_eq!(guards[1].1.len(), 1, "right base guarded");
    }

    #[test]
    fn optimize_is_idempotent() {
        let (mut cat, c1, c2, rel) = setup();
        populate(&mut cat, c1, c2);
        let e = CaExpr::chronicle(cat.chronicle(c1))
            .union(CaExpr::chronicle(cat.chronicle(c2)))
            .unwrap()
            .join_rel_key(rel, &["k"])
            .unwrap();
        let expr = e.clone().select(gt(&e, "v", 2.0)).unwrap();
        let once = optimize(&expr).unwrap();
        let twice = optimize(&once).unwrap();
        assert_eq!(once.to_string(), twice.to_string());
    }

    #[test]
    fn stacked_selects_all_push() {
        let (mut cat, c1, c2, _) = setup();
        populate(&mut cat, c1, c2);
        let e = CaExpr::chronicle(cat.chronicle(c1))
            .union(CaExpr::chronicle(cat.chronicle(c2)))
            .unwrap();
        let expr = e
            .clone()
            .select(gt(&e, "v", 1.0))
            .unwrap()
            .select(Predicate::attr_cmp_const(e.schema(), "k", CmpOp::Ge, Value::Int(1)).unwrap())
            .unwrap();
        let opt = check_equiv(&cat, &expr, c1);
        assert!(opt.base_guards().iter().all(|(_, g)| g.len() == 2));
    }
}
