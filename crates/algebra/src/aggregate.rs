//! Incrementally computable aggregation functions.
//!
//! The paper (Preliminaries) admits aggregation functions that are
//! *incrementally computable, or decomposable into incremental computation
//! functions*: computable in O(n) over a group of size n and in O(1) per
//! increment of size 1. MIN, MAX, SUM and COUNT are the paper's examples.
//!
//! Because chronicles are append-only, MIN and MAX are genuinely
//! incrementally computable here (no deletions ever retract a witness).
//! AVG and STDDEV are *decomposable*: maintained as (SUM, COUNT) and
//! (SUM, SUMSQ, COUNT) respectively and finalized on read. FIRST/LAST
//! exploit the sequence order of chronicles.
//!
//! The Z-set delta core additionally distinguishes the **retractable**
//! functions — COUNT/SUM/AVG/STDDEV, whose states form a group, so a
//! deleted input can be undone in O(1) via [`Accumulator::update_weighted`]
//! with a negative weight — from MIN/MAX/FIRST/LAST, whose states only
//! form a monoid (a retracted witness would force a rescan). Relation-
//! backed views, which face deletes, are restricted to the retractable
//! set; chronicle views may use all nine.

use std::fmt;

use chronicle_types::{ChronicleError, Result, Schema, Tuple, Value};

/// An aggregation function over one attribute (or over whole tuples for
/// `CountStar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — number of tuples in the group.
    CountStar,
    /// `COUNT(a)` — number of non-NULL values of attribute `a`.
    Count(usize),
    /// `SUM(a)`.
    Sum(usize),
    /// `MIN(a)` — incrementally computable because chronicles never delete.
    Min(usize),
    /// `MAX(a)`.
    Max(usize),
    /// `AVG(a)` — decomposed into (SUM, COUNT).
    Avg(usize),
    /// Population standard deviation — decomposed into (SUM, SUMSQ, COUNT).
    StdDev(usize),
    /// First value of `a` in sequence order (well defined on chronicles).
    First(usize),
    /// Last value of `a` in sequence order.
    Last(usize),
}

impl AggFunc {
    /// The attribute this aggregate reads, if any.
    pub fn input_attr(&self) -> Option<usize> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(a)
            | AggFunc::Sum(a)
            | AggFunc::Min(a)
            | AggFunc::Max(a)
            | AggFunc::Avg(a)
            | AggFunc::StdDev(a)
            | AggFunc::First(a)
            | AggFunc::Last(a) => Some(*a),
        }
    }

    /// Validate against a schema: positions in range, numeric input for the
    /// arithmetic aggregates.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        use chronicle_types::AttrType as T;
        let Some(a) = self.input_attr() else {
            return Ok(());
        };
        if a >= schema.arity() {
            return Err(ChronicleError::UnknownAttribute {
                name: format!("position {a}"),
                context: "aggregate".into(),
            });
        }
        let ty = schema.attr(a).ty;
        let needs_numeric = matches!(self, AggFunc::Sum(_) | AggFunc::Avg(_) | AggFunc::StdDev(_));
        if needs_numeric && !matches!(ty, T::Int | T::Float) {
            return Err(ChronicleError::BadAggregate {
                detail: format!("{self} requires a numeric attribute, found {ty}"),
            });
        }
        if matches!(self, AggFunc::Min(_) | AggFunc::Max(_)) && matches!(ty, T::Seq) {
            // MIN/MAX over the sequencing attribute is legal but suspicious;
            // allow it (it is just the first/last SN).
        }
        Ok(())
    }

    /// The output type of the aggregate under `schema`.
    pub fn output_type(&self, schema: &Schema) -> chronicle_types::AttrType {
        use chronicle_types::AttrType as T;
        match self {
            AggFunc::CountStar | AggFunc::Count(_) => T::Int,
            AggFunc::Avg(_) | AggFunc::StdDev(_) => T::Float,
            AggFunc::Sum(a) => match schema.attr(*a).ty {
                T::Int => T::Int,
                _ => T::Float,
            },
            AggFunc::Min(a) | AggFunc::Max(a) | AggFunc::First(a) | AggFunc::Last(a) => {
                schema.attr(*a).ty
            }
        }
    }

    /// Whether this function can undo a deleted input in O(1): its state
    /// forms a group under the update operation. MIN/MAX/FIRST/LAST are
    /// not retractable — removing the current witness would require a
    /// rescan of the group.
    pub fn is_retractable(&self) -> bool {
        matches!(
            self,
            AggFunc::CountStar
                | AggFunc::Count(_)
                | AggFunc::Sum(_)
                | AggFunc::Avg(_)
                | AggFunc::StdDev(_)
        )
    }

    /// Create the empty accumulator for this function.
    pub fn new_state(&self) -> AccState {
        match self {
            AggFunc::CountStar | AggFunc::Count(_) => AccState::Count(0),
            AggFunc::Sum(_) => AccState::Sum {
                int: 0,
                float: 0.0,
                floats: 0,
                n: 0,
            },
            AggFunc::Min(_) => AccState::Extreme(None),
            AggFunc::Max(_) => AccState::Extreme(None),
            AggFunc::Avg(_) => AccState::SumCount { sum: 0.0, n: 0 },
            AggFunc::StdDev(_) => AccState::Moments {
                sum: 0.0,
                sumsq: 0.0,
                n: 0,
            },
            AggFunc::First(_) => AccState::Held(None),
            AggFunc::Last(_) => AccState::Held(None),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "COUNT(*)"),
            AggFunc::Count(a) => write!(f, "COUNT(${a})"),
            AggFunc::Sum(a) => write!(f, "SUM(${a})"),
            AggFunc::Min(a) => write!(f, "MIN(${a})"),
            AggFunc::Max(a) => write!(f, "MAX(${a})"),
            AggFunc::Avg(a) => write!(f, "AVG(${a})"),
            AggFunc::StdDev(a) => write!(f, "STDDEV(${a})"),
            AggFunc::First(a) => write!(f, "FIRST(${a})"),
            AggFunc::Last(a) => write!(f, "LAST(${a})"),
        }
    }
}

/// An aggregate with its output attribute name, as written in a GROUPBY's
/// aggregation list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Output attribute name.
    pub name: String,
}

impl AggSpec {
    /// Construct a named aggregate.
    pub fn new(func: AggFunc, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            name: name.into(),
        }
    }
}

/// The decomposed running state of one aggregate over one group.
///
/// Every variant updates in O(1) per inserted tuple — the paper's
/// incremental-computability requirement.
#[derive(Debug, Clone, PartialEq)]
pub enum AccState {
    /// COUNT state.
    Count(i64),
    /// SUM state. Keeps an exact integer sum while all inputs are ints and
    /// switches to float while any float input is live, so `SUM(INT)`
    /// stays exact over billions of tuples. The float-input *count* (not a
    /// sticky bool) makes the representation retractable: deleting the
    /// last float input returns the sum to the exact integer domain.
    Sum {
        /// Exact integer partial sum.
        int: i64,
        /// Float partial sum (used while `floats > 0`).
        float: f64,
        /// Number of live float inputs.
        floats: u64,
        /// Number of non-NULL inputs.
        n: u64,
    },
    /// MIN/MAX state: the current extreme value.
    Extreme(Option<Value>),
    /// AVG state.
    SumCount {
        /// Running sum.
        sum: f64,
        /// Non-NULL input count.
        n: u64,
    },
    /// STDDEV state.
    Moments {
        /// Running sum.
        sum: f64,
        /// Running sum of squares.
        sumsq: f64,
        /// Non-NULL input count.
        n: u64,
    },
    /// FIRST/LAST state: the held value.
    Held(Option<Value>),
}

/// One aggregate function bound to its running state.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    func: AggFunc,
    state: AccState,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            state: func.new_state(),
        }
    }

    /// The function this accumulator runs.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// The decomposed running state (read-only; used by snapshotting).
    pub fn state(&self) -> &AccState {
        &self.state
    }

    /// Reassemble an accumulator from a function and a state (snapshot
    /// restore). Fails if the state variant does not belong to the
    /// function.
    pub fn from_parts(func: AggFunc, state: AccState) -> Result<Accumulator> {
        let compatible = matches!(
            (&state, func),
            (AccState::Count(_), AggFunc::CountStar | AggFunc::Count(_))
                | (AccState::Sum { .. }, AggFunc::Sum(_))
                | (AccState::Extreme(_), AggFunc::Min(_) | AggFunc::Max(_))
                | (AccState::SumCount { .. }, AggFunc::Avg(_))
                | (AccState::Moments { .. }, AggFunc::StdDev(_))
                | (AccState::Held(_), AggFunc::First(_) | AggFunc::Last(_))
        );
        if !compatible {
            return Err(ChronicleError::Internal(format!(
                "accumulator state {state:?} does not belong to {func}"
            )));
        }
        Ok(Accumulator { func, state })
    }

    /// Fold one tuple into the state — O(1), the incremental step.
    pub fn update(&mut self, tuple: &Tuple) -> Result<()> {
        let input = self.func.input_attr().map(|a| tuple.get(a));
        match (&mut self.state, self.func) {
            (AccState::Count(n), AggFunc::CountStar) => *n += 1,
            (AccState::Count(n), AggFunc::Count(_)) => {
                if !input.expect("Count has input").is_null() {
                    *n += 1;
                }
            }
            (
                AccState::Sum {
                    int,
                    float,
                    floats,
                    n,
                },
                AggFunc::Sum(_),
            ) => {
                let v = input.expect("Sum has input");
                match v {
                    Value::Null => {}
                    Value::Int(i) => {
                        *int = int.wrapping_add(*i);
                        *float += *i as f64;
                        *n += 1;
                    }
                    Value::Float(f) => {
                        *floats += 1;
                        *float += f;
                        *n += 1;
                    }
                    other => {
                        return Err(ChronicleError::BadAggregate {
                            detail: format!("SUM over non-numeric value {other:?}"),
                        })
                    }
                }
            }
            (AccState::Extreme(cur), AggFunc::Min(_)) => {
                let v = input.expect("Min has input");
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            (AccState::Extreme(cur), AggFunc::Max(_)) => {
                let v = input.expect("Max has input");
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
            (AccState::SumCount { sum, n }, AggFunc::Avg(_)) => {
                let v = input.expect("Avg has input");
                if let Some(f) = v.as_float() {
                    *sum += f;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(ChronicleError::BadAggregate {
                        detail: format!("AVG over non-numeric value {v:?}"),
                    });
                }
            }
            (AccState::Moments { sum, sumsq, n }, AggFunc::StdDev(_)) => {
                let v = input.expect("StdDev has input");
                if let Some(f) = v.as_float() {
                    *sum += f;
                    *sumsq += f * f;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(ChronicleError::BadAggregate {
                        detail: format!("STDDEV over non-numeric value {v:?}"),
                    });
                }
            }
            (AccState::Held(cur), AggFunc::First(_)) => {
                let v = input.expect("First has input");
                if cur.is_none() && !v.is_null() {
                    *cur = Some(v.clone());
                }
            }
            (AccState::Held(cur), AggFunc::Last(_)) => {
                let v = input.expect("Last has input");
                if !v.is_null() {
                    *cur = Some(v.clone());
                }
            }
            (state, func) => {
                return Err(ChronicleError::Internal(format!(
                    "accumulator state {state:?} does not match function {func}"
                )))
            }
        }
        Ok(())
    }

    /// Fold one tuple into the state `weight` times — the Z-set form of
    /// [`Self::update`]. Positive weights insert; negative weights retract
    /// (only for [`AggFunc::is_retractable`] functions — MIN/MAX and
    /// FIRST/LAST reject negative weights with a typed error instead of
    /// silently keeping a dead witness).
    pub fn update_weighted(&mut self, tuple: &Tuple, weight: i64) -> Result<()> {
        if weight == 0 {
            return Ok(());
        }
        if weight < 0 && !self.func.is_retractable() {
            return Err(ChronicleError::BadAggregate {
                detail: format!(
                    "{} is not retractable: undoing a deleted input needs a group rescan",
                    self.func
                ),
            });
        }
        // Presence-based states (MIN/MAX/FIRST/LAST): folding the same
        // tuple once or `weight > 0` times is identical.
        if matches!(self.state, AccState::Extreme(_) | AccState::Held(_)) {
            return self.update(tuple);
        }
        let input = self.func.input_attr().map(|a| tuple.get(a));
        match (&mut self.state, self.func) {
            (AccState::Count(n), AggFunc::CountStar) => *n += weight,
            (AccState::Count(n), AggFunc::Count(_)) => {
                if !input.expect("Count has input").is_null() {
                    *n += weight;
                }
            }
            (
                AccState::Sum {
                    int,
                    float,
                    floats,
                    n,
                },
                AggFunc::Sum(_),
            ) => {
                let v = input.expect("Sum has input");
                match v {
                    Value::Null => {}
                    Value::Int(i) => {
                        *int = int.wrapping_add(i.wrapping_mul(weight));
                        *float += *i as f64 * weight as f64;
                        adjust_count(n, weight, "SUM")?;
                    }
                    Value::Float(f) => {
                        *float += f * weight as f64;
                        adjust_count(floats, weight, "SUM")?;
                        adjust_count(n, weight, "SUM")?;
                    }
                    other => {
                        return Err(ChronicleError::BadAggregate {
                            detail: format!("SUM over non-numeric value {other:?}"),
                        })
                    }
                }
            }
            (AccState::SumCount { sum, n }, AggFunc::Avg(_)) => {
                let v = input.expect("Avg has input");
                if let Some(f) = v.as_float() {
                    *sum += f * weight as f64;
                    adjust_count(n, weight, "AVG")?;
                } else if !v.is_null() {
                    return Err(ChronicleError::BadAggregate {
                        detail: format!("AVG over non-numeric value {v:?}"),
                    });
                }
            }
            (AccState::Moments { sum, sumsq, n }, AggFunc::StdDev(_)) => {
                let v = input.expect("StdDev has input");
                if let Some(f) = v.as_float() {
                    *sum += f * weight as f64;
                    *sumsq += f * f * weight as f64;
                    adjust_count(n, weight, "STDDEV")?;
                } else if !v.is_null() {
                    return Err(ChronicleError::BadAggregate {
                        detail: format!("STDDEV over non-numeric value {v:?}"),
                    });
                }
            }
            (state, func) => {
                return Err(ChronicleError::Internal(format!(
                    "accumulator state {state:?} does not match function {func}"
                )))
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the *same function* into this one —
    /// the decomposability property, used by the sliding-window cyclic
    /// buffer (§5.1) to combine per-bucket sub-aggregates.
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        if self.func != other.func {
            return Err(ChronicleError::BadAggregate {
                detail: format!("cannot merge {} into {}", other.func, self.func),
            });
        }
        match (&mut self.state, &other.state) {
            (AccState::Count(a), AccState::Count(b)) => *a += b,
            (
                AccState::Sum {
                    int: ai,
                    float: af,
                    floats: afl,
                    n: an,
                },
                AccState::Sum {
                    int: bi,
                    float: bf,
                    floats: bfl,
                    n: bn,
                },
            ) => {
                *ai = ai.wrapping_add(*bi);
                *af += bf;
                *afl += bfl;
                *an += bn;
            }
            (AccState::Extreme(a), AccState::Extreme(b)) => {
                if let Some(bv) = b {
                    let better = match self.func {
                        AggFunc::Min(_) => a.as_ref().is_none_or(|av| bv < av),
                        AggFunc::Max(_) => a.as_ref().is_none_or(|av| bv > av),
                        _ => false,
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AccState::SumCount { sum: a, n: an }, AccState::SumCount { sum: b, n: bn }) => {
                *a += b;
                *an += bn;
            }
            (
                AccState::Moments {
                    sum: a,
                    sumsq: aq,
                    n: an,
                },
                AccState::Moments {
                    sum: b,
                    sumsq: bq,
                    n: bn,
                },
            ) => {
                *a += b;
                *aq += bq;
                *an += bn;
            }
            (AccState::Held(a), AccState::Held(b)) => match self.func {
                AggFunc::First(_) => {
                    if a.is_none() {
                        *a = b.clone();
                    }
                }
                AggFunc::Last(_) => {
                    if b.is_some() {
                        *a = b.clone();
                    }
                }
                _ => unreachable!("Held state only for First/Last"),
            },
            _ => {
                return Err(ChronicleError::Internal(
                    "mismatched accumulator states in merge".into(),
                ))
            }
        }
        Ok(())
    }

    /// Subtract another accumulator of the same function from this one —
    /// the inverse of [`Self::merge`], used by the sliding-window engine to
    /// retire an expired bucket as an ordinary negative-weight delta.
    /// Only defined for retractable functions; MIN/MAX/FIRST/LAST states
    /// cannot be unmerged and return a typed error.
    pub fn unmerge(&mut self, other: &Accumulator) -> Result<()> {
        if self.func != other.func {
            return Err(ChronicleError::BadAggregate {
                detail: format!("cannot unmerge {} from {}", other.func, self.func),
            });
        }
        match (&mut self.state, &other.state) {
            (AccState::Count(a), AccState::Count(b)) => *a -= b,
            (
                AccState::Sum {
                    int: ai,
                    float: af,
                    floats: afl,
                    n: an,
                },
                AccState::Sum {
                    int: bi,
                    float: bf,
                    floats: bfl,
                    n: bn,
                },
            ) => {
                *ai = ai.wrapping_sub(*bi);
                *af -= bf;
                sub_count(afl, *bfl, "SUM")?;
                sub_count(an, *bn, "SUM")?;
            }
            (AccState::SumCount { sum: a, n: an }, AccState::SumCount { sum: b, n: bn }) => {
                *a -= b;
                sub_count(an, *bn, "AVG")?;
            }
            (
                AccState::Moments {
                    sum: a,
                    sumsq: aq,
                    n: an,
                },
                AccState::Moments {
                    sum: b,
                    sumsq: bq,
                    n: bn,
                },
            ) => {
                *a -= b;
                *aq -= bq;
                sub_count(an, *bn, "STDDEV")?;
            }
            _ => {
                return Err(ChronicleError::BadAggregate {
                    detail: format!(
                        "{} is not retractable: expired buckets need recomputation",
                        self.func
                    ),
                })
            }
        }
        Ok(())
    }

    /// True when every live input has been retracted again — the group is
    /// observationally empty and may be consolidated away.
    pub fn is_drained(&self) -> bool {
        match &self.state {
            AccState::Count(n) => *n == 0,
            AccState::Sum { n, .. } => *n == 0,
            AccState::SumCount { n, .. } => *n == 0,
            AccState::Moments { n, .. } => *n == 0,
            AccState::Extreme(v) | AccState::Held(v) => v.is_none(),
        }
    }

    /// Finalize to the SQL result value.
    pub fn finalize(&self) -> Value {
        match &self.state {
            AccState::Count(n) => Value::Int(*n),
            AccState::Sum {
                int,
                float,
                floats,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *floats > 0 {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            AccState::Extreme(v) | AccState::Held(v) => v.clone().unwrap_or(Value::Null),
            AccState::SumCount { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AccState::Moments { sum, sumsq, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    let nf = *n as f64;
                    let mean = sum / nf;
                    let var = (sumsq / nf - mean * mean).max(0.0);
                    Value::Float(var.sqrt())
                }
            }
        }
    }
}

/// Adjust an unsigned live-input count by a signed weight; underflow is a
/// logic error (retracting an input that was never inserted), reported
/// rather than wrapped.
fn adjust_count(n: &mut u64, weight: i64, what: &str) -> Result<()> {
    if weight >= 0 {
        *n += weight as u64;
        Ok(())
    } else {
        sub_count(n, weight.unsigned_abs(), what)
    }
}

fn sub_count(n: &mut u64, by: u64, what: &str) -> Result<()> {
    *n = n.checked_sub(by).ok_or_else(|| {
        ChronicleError::Internal(format!(
            "{what} retraction underflow: more inputs retracted than inserted"
        ))
    })?;
    Ok(())
}

/// Compute `aggs` over a complete group in one pass (the O(n) batch form
/// the paper requires each function to also have). Used by the oracle and
/// by CA's GROUPBY-with-SN, whose groups are always brand new.
pub fn aggregate_group(aggs: &[AggFunc], tuples: &[&Tuple]) -> Result<Vec<Value>> {
    let mut accs: Vec<Accumulator> = aggs.iter().map(|&f| Accumulator::new(f)).collect();
    for t in tuples {
        for acc in &mut accs {
            acc.update(t)?;
        }
    }
    Ok(accs.iter().map(Accumulator::finalize).collect())
}

/// The weighted form of [`aggregate_group`]: fold Z-set entries, each
/// carrying a signed multiplicity, into fresh accumulators.
pub fn aggregate_group_weighted(aggs: &[AggFunc], members: &[(&Tuple, i64)]) -> Result<Vec<Value>> {
    let mut accs: Vec<Accumulator> = aggs.iter().map(|&f| Accumulator::new(f)).collect();
    for (t, w) in members {
        for acc in &mut accs {
            acc.update_weighted(t, *w)?;
        }
    }
    Ok(accs.iter().map(Accumulator::finalize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    fn rows() -> Vec<Tuple> {
        vec![
            tuple![1i64, 10.0f64],
            tuple![2i64, 30.0f64],
            tuple![3i64, 20.0f64],
        ]
    }

    fn run(func: AggFunc, rows: &[Tuple]) -> Value {
        let mut acc = Accumulator::new(func);
        for r in rows {
            acc.update(r).unwrap();
        }
        acc.finalize()
    }

    #[test]
    fn count_star_and_count_attr() {
        let mut r = rows();
        r.push(tuple![Value::Null, 5.0f64]);
        assert_eq!(run(AggFunc::CountStar, &r), Value::Int(4));
        assert_eq!(run(AggFunc::Count(0), &r), Value::Int(3));
    }

    #[test]
    fn sum_int_stays_exact() {
        assert_eq!(run(AggFunc::Sum(0), &rows()), Value::Int(6));
    }

    #[test]
    fn sum_switches_to_float() {
        assert_eq!(run(AggFunc::Sum(1), &rows()), Value::Float(60.0));
        let mixed = vec![tuple![1i64, 1i64], tuple![1i64, 0.5f64]];
        assert_eq!(run(AggFunc::Sum(1), &mixed), Value::Float(1.5));
    }

    #[test]
    fn min_max_insert_only() {
        assert_eq!(run(AggFunc::Min(1), &rows()), Value::Float(10.0));
        assert_eq!(run(AggFunc::Max(1), &rows()), Value::Float(30.0));
    }

    #[test]
    fn avg_decomposed() {
        assert_eq!(run(AggFunc::Avg(0), &rows()), Value::Float(2.0));
    }

    #[test]
    fn stddev_population() {
        // Values 10, 30, 20: mean 20, variance (100+100+0)/3.
        let v = run(AggFunc::StdDev(1), &rows());
        let f = v.as_float().unwrap();
        assert!((f - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn first_and_last_follow_sequence_order() {
        assert_eq!(run(AggFunc::First(1), &rows()), Value::Float(10.0));
        assert_eq!(run(AggFunc::Last(1), &rows()), Value::Float(20.0));
    }

    #[test]
    fn empty_group_finalization() {
        assert_eq!(
            Accumulator::new(AggFunc::CountStar).finalize(),
            Value::Int(0)
        );
        assert_eq!(Accumulator::new(AggFunc::Sum(0)).finalize(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Min(0)).finalize(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Avg(0)).finalize(), Value::Null);
    }

    #[test]
    fn nulls_skipped_by_all() {
        let r = vec![tuple![Value::Null, Value::Null]];
        assert_eq!(run(AggFunc::Sum(0), &r), Value::Null);
        assert_eq!(run(AggFunc::Min(0), &r), Value::Null);
        assert_eq!(run(AggFunc::Avg(0), &r), Value::Null);
        assert_eq!(run(AggFunc::Last(0), &r), Value::Null);
    }

    #[test]
    fn sum_over_string_errors() {
        let mut acc = Accumulator::new(AggFunc::Sum(0));
        assert!(acc.update(&tuple!["oops"]).is_err());
    }

    #[test]
    fn merge_matches_single_pass() {
        let r = rows();
        for func in [
            AggFunc::CountStar,
            AggFunc::Sum(1),
            AggFunc::Min(1),
            AggFunc::Max(1),
            AggFunc::Avg(1),
            AggFunc::StdDev(1),
            AggFunc::First(1),
            AggFunc::Last(1),
        ] {
            let mut left = Accumulator::new(func);
            left.update(&r[0]).unwrap();
            let mut right = Accumulator::new(func);
            right.update(&r[1]).unwrap();
            right.update(&r[2]).unwrap();
            left.merge(&right).unwrap();
            assert_eq!(left.finalize(), run(func, &r), "merge mismatch for {func}");
        }
    }

    #[test]
    fn merge_wrong_function_errors() {
        let mut a = Accumulator::new(AggFunc::Sum(0));
        let b = Accumulator::new(AggFunc::CountStar);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn aggregate_group_batch_form() {
        let r = rows();
        let refs: Vec<&Tuple> = r.iter().collect();
        let out = aggregate_group(&[AggFunc::CountStar, AggFunc::Sum(0)], &refs).unwrap();
        assert_eq!(out, vec![Value::Int(3), Value::Int(6)]);
    }

    #[test]
    fn weighted_update_retracts_exactly() {
        for func in [
            AggFunc::CountStar,
            AggFunc::Count(1),
            AggFunc::Sum(1),
            AggFunc::Avg(1),
            AggFunc::StdDev(1),
        ] {
            let mut acc = Accumulator::new(func);
            acc.update_weighted(&tuple![1i64, 10.0f64], 1).unwrap();
            acc.update_weighted(&tuple![2i64, 30.0f64], 2).unwrap();
            acc.update_weighted(&tuple![2i64, 30.0f64], -2).unwrap();
            let mut expect = Accumulator::new(func);
            expect.update(&tuple![1i64, 10.0f64]).unwrap();
            assert_eq!(
                acc.finalize(),
                expect.finalize(),
                "insert+retract must cancel exactly for {func}"
            );
            assert!(!acc.is_drained());
            acc.update_weighted(&tuple![1i64, 10.0f64], -1).unwrap();
            assert!(acc.is_drained(), "{func} fully retracted must drain");
        }
    }

    #[test]
    fn sum_reverts_to_int_when_floats_retracted() {
        let mut acc = Accumulator::new(AggFunc::Sum(0));
        acc.update(&tuple![2i64]).unwrap();
        acc.update_weighted(&tuple![0.5f64], 1).unwrap();
        assert_eq!(acc.finalize(), Value::Float(2.5));
        acc.update_weighted(&tuple![0.5f64], -1).unwrap();
        assert_eq!(
            acc.finalize(),
            Value::Int(2),
            "retracting the last float input returns SUM to the exact integer domain"
        );
    }

    #[test]
    fn non_retractable_functions_reject_negative_weights() {
        for func in [
            AggFunc::Min(0),
            AggFunc::Max(0),
            AggFunc::First(0),
            AggFunc::Last(0),
        ] {
            assert!(!func.is_retractable());
            let mut acc = Accumulator::new(func);
            acc.update(&tuple![1i64]).unwrap();
            assert!(acc.update_weighted(&tuple![1i64], -1).is_err());
            // Positive weights still work (presence semantics).
            acc.update_weighted(&tuple![0i64], 3).unwrap();
        }
    }

    #[test]
    fn unmerge_inverts_merge() {
        let r = rows();
        for func in [
            AggFunc::CountStar,
            AggFunc::Sum(1),
            AggFunc::Avg(1),
            AggFunc::StdDev(1),
        ] {
            let mut total = Accumulator::new(func);
            for t in &r {
                total.update(t).unwrap();
            }
            let mut bucket = Accumulator::new(func);
            bucket.update(&r[2]).unwrap();
            total.unmerge(&bucket).unwrap();
            let mut expect = Accumulator::new(func);
            expect.update(&r[0]).unwrap();
            expect.update(&r[1]).unwrap();
            assert_eq!(total.finalize(), expect.finalize(), "unmerge for {func}");
        }
        let mut m = Accumulator::new(AggFunc::Min(0));
        assert!(m.unmerge(&Accumulator::new(AggFunc::Min(0))).is_err());
    }

    #[test]
    fn retraction_underflow_is_loud() {
        let mut acc = Accumulator::new(AggFunc::Sum(0));
        assert!(acc.update_weighted(&tuple![1i64], -1).is_err());
    }

    #[test]
    fn aggregate_group_weighted_matches_expansion() {
        let r = rows();
        let weighted: Vec<(&Tuple, i64)> = vec![(&r[0], 2), (&r[1], 1)];
        let expanded = vec![r[0].clone(), r[0].clone(), r[1].clone()];
        let refs: Vec<&Tuple> = expanded.iter().collect();
        let funcs = [AggFunc::CountStar, AggFunc::Sum(0), AggFunc::Avg(1)];
        assert_eq!(
            aggregate_group_weighted(&funcs, &weighted).unwrap(),
            aggregate_group(&funcs, &refs).unwrap()
        );
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        use chronicle_types::{AttrType, Attribute, Schema};
        let s = Schema::relation(vec![
            Attribute::new("name", AttrType::Str),
            Attribute::new("x", AttrType::Int),
        ])
        .unwrap();
        assert!(AggFunc::Sum(0).validate(&s).is_err());
        assert!(AggFunc::Sum(1).validate(&s).is_ok());
        assert!(
            AggFunc::Min(0).validate(&s).is_ok(),
            "MIN over strings is fine"
        );
        assert!(AggFunc::Sum(9).validate(&s).is_err());
        assert!(AggFunc::CountStar.validate(&s).is_ok());
    }

    #[test]
    fn output_types() {
        use chronicle_types::{AttrType, Attribute, Schema};
        let s = Schema::relation(vec![
            Attribute::new("i", AttrType::Int),
            Attribute::new("f", AttrType::Float),
            Attribute::new("s", AttrType::Str),
        ])
        .unwrap();
        assert_eq!(AggFunc::Sum(0).output_type(&s), AttrType::Int);
        assert_eq!(AggFunc::Sum(1).output_type(&s), AttrType::Float);
        assert_eq!(AggFunc::Avg(0).output_type(&s), AttrType::Float);
        assert_eq!(AggFunc::Min(2).output_type(&s), AttrType::Str);
        assert_eq!(AggFunc::CountStar.output_type(&s), AttrType::Int);
    }
}
