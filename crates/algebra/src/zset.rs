//! Z-sets: tuple collections with signed integer multiplicities.
//!
//! A Z-set generalizes both sets and multisets: each tuple carries a
//! weight in ℤ, positive weights meaning insertions and negative weights
//! retractions (DBSP, PAPERS.md). The chronicle engine uses Z-sets as the
//! single delta currency — chronicle appends are Z-sets whose weights are
//! all `+1`, relation updates/deletes are `−old +new` pairs, and sliding-
//! window expiration is a negative-weight delta at bucket granularity —
//! so every maintenance path consumes one representation.
//!
//! The invariant that makes Z-sets a *collection* rather than a log is
//! **consolidation**: weights for equal tuples merge, and entries whose
//! merged weight reaches zero are eliminated. Dropping the elimination is
//! observable (a deleted tuple would linger as a zero-weight ghost), which
//! is exactly what the `CHRONICLE_MUTATE=skip_consolidation` test backdoor
//! does so the differential oracle suite can prove it would notice.

use std::collections::btree_map::{self, BTreeMap};

use chronicle_types::{ChronicleError, Result, Tuple};

/// Test-only sabotage switch: `CHRONICLE_MUTATE=skip_consolidation`
/// disables zero-weight elimination everywhere it is load-bearing (here
/// and in the materialized view states). verify.sh runs the differential
/// oracle suite under this mutation and requires it to FAIL.
pub fn consolidation_disabled() -> bool {
    std::env::var("CHRONICLE_MUTATE").is_ok_and(|v| v == "skip_consolidation")
}

/// A weighted tuple collection with consolidation-on-insert.
///
/// Entries are kept in a `BTreeMap` so iteration order is deterministic —
/// deltas built from the same history are byte-identical across runs and
/// shards, which the sharded-equivalence and simulation suites rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZSet {
    entries: BTreeMap<Tuple, i64>,
}

impl ZSet {
    /// The empty Z-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single tuple with the given weight.
    pub fn singleton(tuple: Tuple, weight: i64) -> Self {
        let mut z = Self::new();
        z.insert(tuple, weight);
        z
    }

    /// Lift plain tuples into a Z-set with weight `+1` each; duplicate
    /// tuples consolidate to higher weights.
    pub fn from_tuples<'a, I: IntoIterator<Item = &'a Tuple>>(tuples: I) -> Self {
        let mut z = Self::new();
        for t in tuples {
            z.insert(t.clone(), 1);
        }
        z
    }

    /// Merge `weight` into the entry for `tuple`, eliminating the entry if
    /// the merged weight reaches zero (unless the `skip_consolidation`
    /// mutation is active — see module docs).
    pub fn insert(&mut self, tuple: Tuple, weight: i64) {
        match self.entries.entry(tuple) {
            btree_map::Entry::Vacant(v) => {
                if weight != 0 || consolidation_disabled() {
                    v.insert(weight);
                }
            }
            btree_map::Entry::Occupied(mut o) => {
                let w = *o.get() + weight;
                if w == 0 && !consolidation_disabled() {
                    o.remove();
                } else {
                    *o.get_mut() = w;
                }
            }
        }
    }

    /// The weight of `tuple` (zero if absent).
    pub fn weight(&self, tuple: &Tuple) -> i64 {
        self.entries.get(tuple).copied().unwrap_or(0)
    }

    /// Merge every entry of `other` into `self`.
    pub fn merge(&mut self, other: &ZSet) {
        for (t, w) in other.iter() {
            self.insert(t.clone(), w);
        }
    }

    /// The Z-set with every weight negated — the retraction of `self`.
    pub fn negated(&self) -> ZSet {
        ZSet {
            entries: self.entries.iter().map(|(t, w)| (t.clone(), -w)).collect(),
        }
    }

    /// Iterate entries in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> + '_ {
        self.entries.iter().map(|(t, w)| (t, *w))
    }

    /// Number of distinct tuples carried (after consolidation).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Sum of signed weights.
    pub fn total_weight(&self) -> i64 {
        self.entries.values().sum()
    }

    /// Sum of |weight| over all entries — the number of *logical* tuple
    /// changes carried, which is the currency the Theorem 4.1 work
    /// counters charge in.
    pub fn abs_weight(&self) -> u64 {
        self.entries.values().map(|w| w.unsigned_abs()).sum()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expand a non-negative Z-set back into plain tuples, repeating each
    /// tuple `weight` times. Errors on negative weights: the append-only
    /// chronicle paths that call this can never produce retractions, so a
    /// negative weight there is a logic bug, not data.
    pub fn expand_positive(&self) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (t, w) in self.iter() {
            if w < 0 {
                return Err(ChronicleError::Internal(format!(
                    "negative delta weight {w} in append-only context for {t}"
                )));
            }
            for _ in 0..w {
                out.push(t.clone());
            }
        }
        Ok(out)
    }
}

impl FromIterator<(Tuple, i64)> for ZSet {
    fn from_iter<I: IntoIterator<Item = (Tuple, i64)>>(iter: I) -> Self {
        let mut z = ZSet::new();
        for (t, w) in iter {
            z.insert(t, w);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_types::tuple;

    #[test]
    fn weights_merge_and_zero_entries_vanish() {
        let mut z = ZSet::new();
        z.insert(tuple![1i64, 2i64], 1);
        z.insert(tuple![1i64, 2i64], 2);
        assert_eq!(z.weight(&tuple![1i64, 2i64]), 3);
        assert_eq!(z.entry_count(), 1);
        z.insert(tuple![1i64, 2i64], -3);
        assert!(z.is_empty(), "+3 then −3 must leave no residue");
    }

    #[test]
    fn zero_weight_insert_is_a_no_op() {
        let mut z = ZSet::new();
        z.insert(tuple![7i64], 0);
        assert!(z.is_empty());
    }

    #[test]
    fn from_tuples_consolidates_duplicates() {
        let ts = vec![tuple![1i64], tuple![2i64], tuple![1i64]];
        let z = ZSet::from_tuples(&ts);
        assert_eq!(z.weight(&tuple![1i64]), 2);
        assert_eq!(z.weight(&tuple![2i64]), 1);
        assert_eq!(z.entry_count(), 2);
        assert_eq!(z.abs_weight(), 3);
        assert_eq!(z.total_weight(), 3);
    }

    #[test]
    fn negation_and_merge_cancel() {
        let ts = vec![tuple![1i64], tuple![2i64], tuple![1i64]];
        let z = ZSet::from_tuples(&ts);
        let mut m = z.clone();
        m.merge(&z.negated());
        assert!(m.is_empty());
    }

    #[test]
    fn expand_positive_repeats_by_weight_and_rejects_negative() {
        let mut z = ZSet::new();
        z.insert(tuple![5i64], 2);
        z.insert(tuple![6i64], 1);
        let rows = z.expand_positive().unwrap();
        assert_eq!(rows.len(), 3);
        z.insert(tuple![9i64], -1);
        assert!(z.expand_positive().is_err());
    }

    #[test]
    fn iteration_is_deterministic_tuple_order() {
        let mut z = ZSet::new();
        z.insert(tuple![3i64], 1);
        z.insert(tuple![1i64], 1);
        z.insert(tuple![2i64], 1);
        let order: Vec<i64> = z
            .iter()
            .map(|(t, _)| match t.values()[0] {
                chronicle_types::Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
