//! Stateless delta propagation — the Theorem 4.1 / 4.2 machinery over
//! weighted collections.
//!
//! Given an append of tuples (all carrying one new sequence number) into a
//! base chronicle, [`DeltaEngine::delta_ca_z`] computes the change ΔE of
//! any chronicle-algebra expression E **without reading any chronicle and
//! without materializing any intermediate view**. Deltas are [`ZSet`]s —
//! tuples with signed multiplicities — so one representation carries
//! chronicle appends (all weights `+1`), relation updates/deletes
//! (`−old +new`), and window expiration (negative weights). The
//! per-operator rules are exactly those in the proof of Theorem 4.1:
//!
//! ```text
//! Δ(σ_p E)        = σ_p(ΔE)                (linear: weights preserved)
//! Δ(Π E)          = Π(ΔE)                  (linear: weights merge)
//! Δ(E₁ ∪ E₂)      = ΔE₁ ∪ ΔE₂
//! Δ(E₁ − E₂)      = ΔE₁ − ΔE₂             (old terms provably empty)
//! Δ(E₁ ⋈SN E₂)    = ΔE₁ ⋈SN ΔE₂           (bilinear: weights multiply)
//! Δ(GROUPBY∋SN E) = GROUPBY(ΔE)           (groups are brand new)
//! Δ(C × R)        = ΔC × R_now            (proactive ⇒ current version)
//! Δ(C ⋈key R)     = ΔC ⋈key R_now         (one index probe per tuple)
//! ```
//!
//! σ/Π/⋈ are (bi)linear in the Z-set semiring, so their rules hold for
//! arbitrary signed weights. ∪/−/GROUPBY-SN additionally lean on the
//! Theorem 4.1 new-sequence-number argument (the pre-state cannot contain
//! the new SN), which only holds for insert-only deltas; those operators
//! therefore reject negative input weights rather than silently producing
//! wrong answers. Retractions against *relations* flow through the
//! separate [`crate::RelQuery`] path, whose operators (σ/Π/γ) are all
//! retractable.
//!
//! Every rule's work is charged to a [`WorkCounter`] **per logical tuple**
//! (by |weight|, not per consolidated entry), giving deterministic
//! operation counts that are independent of both wall-clock noise and
//! batch-internal consolidation.

use std::collections::{BTreeMap, HashMap};

use chronicle_store::Catalog;
use chronicle_types::{ChronicleError, ChronicleId, Result, SeqNo, Tuple, Value};

use crate::aggregate::aggregate_group_weighted;
use crate::expr::{CaExpr, CaNode};
use crate::sca::{ScaExpr, Summarize};
use crate::zset::ZSet;

/// A batch of tuples appended to one chronicle at one sequence number — the
/// unit of maintenance work ("Each time a transaction completes, a record
/// ... is appended to the chronicle", §3).
#[derive(Debug, Clone)]
pub struct DeltaBatch {
    /// The chronicle that received the append.
    pub chronicle: ChronicleId,
    /// The admitted sequence number.
    pub seq: SeqNo,
    /// The appended tuples (all carry `seq` in their sequencing attribute).
    pub tuples: Vec<Tuple>,
}

impl DeltaBatch {
    /// The batch as a Z-set: weight `+1` per tuple, duplicates
    /// consolidated to higher weights.
    pub fn as_zset(&self) -> ZSet {
        ZSet::from_tuples(&self.tuples)
    }
}

/// Deterministic work counters, the experiment currency of this crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounter {
    /// Tuples produced by any operator (the Theorem 4.2 output-size terms).
    pub tuples_out: u64,
    /// Tuples examined by selections, joins, set ops and aggregation.
    pub tuples_in: u64,
    /// Index probes against relations or views (each `O(log)` per the cost
    /// model).
    pub index_probes: u64,
    /// Relation tuples scanned by cross products (the `|R|` factors).
    pub rel_tuples_scanned: u64,
}

impl WorkCounter {
    /// Total abstract work units: inputs + outputs + scans, with each index
    /// probe charged once (the `log` factor is applied by the analysis, not
    /// the counter).
    pub fn total(&self) -> u64 {
        self.tuples_in + self.tuples_out + self.index_probes + self.rel_tuples_scanned
    }

    /// Merge another counter into this one.
    pub fn absorb(&mut self, other: WorkCounter) {
        self.tuples_out += other.tuples_out;
        self.tuples_in += other.tuples_in;
        self.index_probes += other.index_probes;
        self.rel_tuples_scanned += other.rel_tuples_scanned;
    }
}

/// Reject negative weights for the operators whose delta rules rest on the
/// new-SN argument (∪, −, GROUPBY-SN) and therefore only hold insert-only.
fn require_insert_only(op: &str, w: i64, t: &Tuple) -> Result<()> {
    if w < 0 {
        return Err(ChronicleError::Internal(format!(
            "{op} delta rule is insert-only (Theorem 4.1 new-SN argument); \
             got weight {w} for {t}"
        )));
    }
    Ok(())
}

/// The stateless delta evaluator. Borrows the catalog for relation access
/// only (chronicles are never read — enforced by construction: there is no
/// code path from here into chronicle storage).
pub struct DeltaEngine<'a> {
    catalog: &'a Catalog,
}

impl<'a> DeltaEngine<'a> {
    /// Create an engine over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        DeltaEngine { catalog }
    }

    /// Compute ΔE for chronicle-algebra expression `expr` under `batch`,
    /// expanded back to plain tuples (each tuple repeated by its weight).
    ///
    /// Chronicle appends only ever produce non-negative weights, so the
    /// expansion is total; the weighted core is [`Self::delta_ca_z`].
    pub fn delta_ca(
        &self,
        expr: &CaExpr,
        batch: &DeltaBatch,
        work: &mut WorkCounter,
    ) -> Result<Vec<Tuple>> {
        self.delta_ca_z(expr, batch, work)?.expand_positive()
    }

    /// Compute ΔE for chronicle-algebra expression `expr` under `batch` as
    /// a [`ZSet`] — the weighted core every other delta entry point wraps.
    pub fn delta_ca_z(
        &self,
        expr: &CaExpr,
        batch: &DeltaBatch,
        work: &mut WorkCounter,
    ) -> Result<ZSet> {
        match &*expr.node {
            CaNode::Base(r) => {
                if r.id == batch.chronicle {
                    let z = batch.as_zset();
                    work.tuples_out += z.abs_weight();
                    Ok(z)
                } else {
                    Ok(ZSet::new())
                }
            }
            CaNode::Select { input, pred } => {
                let d = self.delta_ca_z(input, batch, work)?;
                let mut out = ZSet::new();
                for (t, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    if pred.eval(t)? {
                        work.tuples_out += w.unsigned_abs();
                        out.insert(t.clone(), w);
                    }
                }
                Ok(out)
            }
            CaNode::Project { input, cols } => {
                let d = self.delta_ca_z(input, batch, work)?;
                let mut out = ZSet::new();
                for (t, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    work.tuples_out += w.unsigned_abs();
                    out.insert(t.project(cols), w);
                }
                Ok(out)
            }
            CaNode::JoinSeq {
                left,
                right,
                right_keep,
            } => {
                let dl = self.delta_ca_z(left, batch, work)?;
                let dr = self.delta_ca_z(right, batch, work)?;
                // Theorem 4.1: the old×new and new×old terms are empty, so
                // ΔE = Δleft ⋈SN Δright. Within one batch all SNs are equal,
                // but we join on the actual value to stay honest. The join
                // is bilinear: output weights multiply.
                let lsn = left.seq_pos();
                let rsn = right.seq_pos();
                let mut by_sn: HashMap<Value, Vec<(&Tuple, i64)>> = HashMap::new();
                for (t, w) in dr.iter() {
                    work.tuples_in += w.unsigned_abs();
                    by_sn.entry(t.get(rsn).clone()).or_default().push((t, w));
                }
                let mut out = ZSet::new();
                for (lt, lw) in dl.iter() {
                    work.tuples_in += lw.unsigned_abs();
                    if let Some(matches) = by_sn.get(lt.get(lsn)) {
                        for (rt, rw) in matches {
                            let kept: Vec<Value> =
                                right_keep.iter().map(|&c| rt.get(c).clone()).collect();
                            let w = lw * rw;
                            work.tuples_out += w.unsigned_abs();
                            out.insert(lt.concat_values(&kept), w);
                        }
                    }
                }
                Ok(out)
            }
            CaNode::Union { left, right } => {
                let dl = self.delta_ca_z(left, batch, work)?;
                let dr = self.delta_ca_z(right, batch, work)?;
                // Set semantics within the batch: discard exact duplicates
                // ("We want to discard tuples common to E₁ and E₂") — in
                // Z-set terms, every tuple present in either delta gets
                // weight exactly 1.
                let mut out = ZSet::new();
                for d in [&dl, &dr] {
                    for (t, w) in d.iter() {
                        require_insert_only("union", w, t)?;
                        work.tuples_in += w.unsigned_abs();
                        if out.weight(t) == 0 {
                            work.tuples_out += 1;
                            out.insert(t.clone(), 1);
                        }
                    }
                }
                Ok(out)
            }
            CaNode::Diff { left, right } => {
                let dl = self.delta_ca_z(left, batch, work)?;
                let dr = self.delta_ca_z(right, batch, work)?;
                // ΔE = ΔE₁ − ΔE₂: the new sequence number cannot occur in
                // the pre-batch value of either operand, so only intra-batch
                // cancellation is possible.
                work.tuples_in += dr.entry_count() as u64;
                let mut out = ZSet::new();
                for (t, w) in dl.iter() {
                    require_insert_only("difference", w, t)?;
                    work.tuples_in += w.unsigned_abs();
                    if dr.weight(t) == 0 {
                        work.tuples_out += w.unsigned_abs();
                        out.insert(t.clone(), w);
                    }
                }
                Ok(out)
            }
            CaNode::GroupBySeq {
                input,
                group_cols,
                aggs,
            } => {
                let d = self.delta_ca_z(input, batch, work)?;
                // SN ∈ GL and the SN is brand new ⇒ every group in Δ is a
                // brand-new group; aggregate each one completely.
                let mut groups: BTreeMap<Vec<Value>, Vec<(&Tuple, i64)>> = BTreeMap::new();
                for (t, w) in d.iter() {
                    require_insert_only("GROUPBY-SN", w, t)?;
                    work.tuples_in += w.unsigned_abs();
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    groups.entry(key).or_default().push((t, w));
                }
                let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
                let mut out = ZSet::new();
                for (key, members) in groups {
                    let aggv = aggregate_group_weighted(&funcs, &members)?;
                    let mut row = key;
                    row.extend(aggv);
                    work.tuples_out += 1;
                    out.insert(Tuple::new(row), 1);
                }
                Ok(out)
            }
            CaNode::ProductRel { input, rel } => {
                let d = self.delta_ca_z(input, batch, work)?;
                // Proactive updates ⇒ the temporal join for *new* tuples is
                // the join with the current relation version.
                let relation = self.catalog.relation(rel.id).current();
                let mut out = ZSet::new();
                for (lt, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    for rt in relation.iter() {
                        work.rel_tuples_scanned += w.unsigned_abs();
                        work.tuples_out += w.unsigned_abs();
                        out.insert(lt.concat(rt), w);
                    }
                }
                Ok(out)
            }
            CaNode::JoinRelKey {
                input,
                rel,
                chron_cols,
                rel_cols,
            } => {
                let d = self.delta_ca_z(input, batch, work)?;
                let relation = self.catalog.relation(rel.id).current();
                let mut out = ZSet::new();
                for (lt, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    let key: Vec<Value> = chron_cols.iter().map(|&c| lt.get(c).clone()).collect();
                    work.index_probes += w.unsigned_abs();
                    // rel_cols is the relation's declared key, so this is
                    // one indexed probe with at most one match.
                    let (hits, indexed) = relation.lookup_cols(rel_cols, &key);
                    debug_assert!(indexed, "key join must be index-backed");
                    for rt in hits {
                        work.tuples_out += w.unsigned_abs();
                        out.insert(lt.concat(rt), w);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Compute the summarized delta of an SCA expression: the CA delta of χ
    /// followed by the summarization step, producing a signed
    /// [`SummaryDelta`] that a persistent view applies in `O(t log |V|)`
    /// (Theorem 4.4).
    pub fn delta_sca(
        &self,
        expr: &ScaExpr,
        batch: &DeltaBatch,
        work: &mut WorkCounter,
    ) -> Result<SummaryDelta> {
        let d = self.delta_ca_z(expr.ca(), batch, work)?;
        match expr.summarize() {
            Summarize::Project { cols } => {
                let mut rows = ZSet::new();
                for (t, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    work.tuples_out += w.unsigned_abs();
                    rows.insert(t.project(cols), w);
                }
                Ok(SummaryDelta::Rows(rows))
            }
            Summarize::GroupAgg { group_cols, .. } => {
                let mut groups: BTreeMap<Vec<Value>, ZSet> = BTreeMap::new();
                for (t, w) in d.iter() {
                    work.tuples_in += w.unsigned_abs();
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    groups.entry(key).or_default().insert(t.clone(), w);
                }
                // A group whose members fully cancelled carries no change.
                groups.retain(|_, z| !z.is_empty());
                work.tuples_out += groups.len() as u64;
                Ok(SummaryDelta::Groups(groups))
            }
        }
    }
}

/// The summarized change produced by one maintenance event, ready for a
/// persistent view to apply. Both arms are signed: positive weights insert,
/// negative weights retract.
#[derive(Debug, Clone)]
pub enum SummaryDelta {
    /// Projection summarization: projected rows with signed multiplicities
    /// (the view's multiplicity counts absorb them).
    Rows(ZSet),
    /// Group summarization: χ-delta tuples bucketed by group key; the view
    /// folds each bucket into the group's accumulators, weight by weight.
    /// Ordered so application order is deterministic across runs/shards.
    Groups(BTreeMap<Vec<Value>, ZSet>),
}

impl SummaryDelta {
    /// Number of affected rows/groups — the `t` of Theorem 4.4.
    pub fn affected(&self) -> usize {
        match self {
            SummaryDelta::Rows(r) => r.entry_count(),
            SummaryDelta::Groups(g) => g.len(),
        }
    }

    /// True iff the delta is empty (the view is unaffected).
    pub fn is_empty(&self) -> bool {
        self.affected() == 0
    }
}

/// Validate that a batch is well formed against a base chronicle's schema:
/// every tuple carries `batch.seq` and conforms. The catalog append path
/// already guarantees this; standalone engine users (benches) call it
/// directly.
pub fn validate_batch(catalog: &Catalog, batch: &DeltaBatch) -> Result<()> {
    let c = catalog.chronicle(batch.chronicle);
    let sp = c.seq_pos();
    for t in &batch.tuples {
        t.check_against(c.schema())?;
        if t.seq_at(sp)? != batch.seq {
            return Err(ChronicleError::NonMonotonicAppend {
                high_water: batch.seq.0,
                attempted: t.seq_at(sp)?.0,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::expr::RelationRef;
    use crate::predicate::{CmpOp, Predicate};
    use chronicle_store::Retention;
    use chronicle_types::{tuple, AttrType, Attribute, Schema};

    struct Fixture {
        cat: Catalog,
        calls: ChronicleId,
        texts: ChronicleId,
        rates: RelationRef,
    }

    fn fixture() -> Fixture {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let calls = cat
            .create_chronicle("calls", g, cs.clone(), Retention::None)
            .unwrap();
        let texts = cat
            .create_chronicle("texts", g, cs, Retention::None)
            .unwrap();
        let rschema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("rates", rschema.clone()).unwrap();
        cat.relation_insert(r, g, tuple![555i64, 0.1f64]).unwrap();
        cat.relation_insert(r, g, tuple![777i64, 0.2f64]).unwrap();
        Fixture {
            cat,
            calls,
            texts,
            rates: RelationRef::new(r, rschema, "rates"),
        }
    }

    fn batch(c: ChronicleId, seq: u64, rows: Vec<Tuple>) -> DeltaBatch {
        DeltaBatch {
            chronicle: c,
            seq: SeqNo(seq),
            tuples: rows,
        }
    }

    #[test]
    fn base_delta_routes_by_chronicle() {
        let f = fixture();
        let e_calls = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let e_texts = CaExpr::chronicle(f.cat.chronicle(f.texts));
        let eng = DeltaEngine::new(&f.cat);
        let b = batch(f.calls, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        let mut w = WorkCounter::default();
        assert_eq!(eng.delta_ca(&e_calls, &b, &mut w).unwrap().len(), 1);
        assert_eq!(eng.delta_ca(&e_texts, &b, &mut w).unwrap().len(), 0);
    }

    #[test]
    fn select_filters_delta() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let p =
            Predicate::attr_cmp_const(e.schema(), "minutes", CmpOp::Gt, Value::Float(5.0)).unwrap();
        let e = e.select(p).unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 777i64, 9.0f64],
            ],
        );
        let mut w = WorkCounter::default();
        let d = eng.delta_ca(&e, &b, &mut w).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get(1).as_int(), Some(777));
    }

    #[test]
    fn select_preserves_signed_weights() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let p =
            Predicate::attr_cmp_const(e.schema(), "minutes", CmpOp::Gt, Value::Float(5.0)).unwrap();
        let sel = e.select(p).unwrap();
        // Hand the select a signed delta by driving the weighted core with
        // a synthetic retraction merged over the base: σ is linear, so the
        // weight must ride through unchanged.
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(f.calls, 1, vec![tuple![SeqNo(1), 777i64, 9.0f64]]);
        let d = eng.delta_ca_z(&sel, &b, &mut w).unwrap();
        assert_eq!(d.weight(&tuple![SeqNo(1), 777i64, 9.0f64]), 1);
        let neg = d.negated();
        assert_eq!(neg.weight(&tuple![SeqNo(1), 777i64, 9.0f64]), -1);
        let mut sum = d.clone();
        sum.merge(&neg);
        assert!(sum.is_empty(), "insert then retract leaves no residue");
    }

    #[test]
    fn project_keeps_sn_column() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .project(&["sn", "minutes"])
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let b = batch(f.calls, 3, vec![tuple![SeqNo(3), 555i64, 2.5f64]]);
        let mut w = WorkCounter::default();
        let d = eng.delta_ca(&e, &b, &mut w).unwrap();
        assert_eq!(d[0].arity(), 2);
        assert_eq!(d[0].seq_at(0).unwrap(), SeqNo(3));
    }

    #[test]
    fn join_seq_combines_same_batch() {
        let f = fixture();
        // Self-join pattern: long calls ⋈SN expensive calls.
        let base = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let long = base
            .clone()
            .select(
                Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(5.0))
                    .unwrap(),
            )
            .unwrap();
        let caller_777 = base
            .clone()
            .select(
                Predicate::attr_cmp_const(base.schema(), "caller", CmpOp::Eq, Value::Int(777))
                    .unwrap(),
            )
            .unwrap();
        let joined = long.join_seq(caller_777).unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        // Batch where one tuple satisfies both sides.
        let b = batch(f.calls, 1, vec![tuple![SeqNo(1), 777i64, 9.0f64]]);
        let d = eng.delta_ca(&joined, &b, &mut w).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].arity(), 5);
        // Batch where sides are satisfied by *different* tuples of the same
        // SN: the join still pairs them (same sequence number).
        let b = batch(
            f.calls,
            2,
            vec![
                tuple![SeqNo(2), 555i64, 9.0f64],
                tuple![SeqNo(2), 777i64, 1.0f64],
            ],
        );
        let d = eng.delta_ca(&joined, &b, &mut w).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get(1).as_int(), Some(555));
        assert_eq!(d[0].get(3).as_int(), Some(777));
    }

    #[test]
    fn union_dedups_within_batch() {
        let f = fixture();
        let base = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let a = base
            .clone()
            .select(
                Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(1.0))
                    .unwrap(),
            )
            .unwrap();
        let b_expr = base
            .clone()
            .select(
                Predicate::attr_cmp_const(base.schema(), "caller", CmpOp::Eq, Value::Int(555))
                    .unwrap(),
            )
            .unwrap();
        let u = a.union(b_expr).unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        // A tuple satisfying both branches appears once, with weight 1.
        let b = batch(f.calls, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        let d = eng.delta_ca_z(&u, &b, &mut w).unwrap();
        assert_eq!(d.entry_count(), 1);
        assert_eq!(d.weight(&tuple![SeqNo(1), 555i64, 2.0f64]), 1);
    }

    #[test]
    fn diff_cancels_within_batch() {
        let f = fixture();
        let base = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let all = base.clone();
        let short = base
            .clone()
            .select(
                Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Lt, Value::Float(5.0))
                    .unwrap(),
            )
            .unwrap();
        let long_only = all.diff(short).unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 777i64, 9.0f64],
            ],
        );
        let d = eng.delta_ca(&long_only, &b, &mut w).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get(1).as_int(), Some(777));
    }

    #[test]
    fn group_by_seq_aggregates_new_groups() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .group_by_seq(
                &["sn", "caller"],
                vec![
                    AggSpec::new(AggFunc::CountStar, "n"),
                    AggSpec::new(AggFunc::Sum(2), "total"),
                ],
            )
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 555i64, 3.0f64],
                tuple![SeqNo(1), 777i64, 9.0f64],
            ],
        );
        let mut d = eng.delta_ca(&e, &b, &mut w).unwrap();
        d.sort();
        assert_eq!(d.len(), 2);
        // Group (1, 555): n=2, total=5.0.
        assert_eq!(d[0].get(2).as_int(), Some(2));
        assert_eq!(d[0].get(3).as_float(), Some(5.0));
    }

    #[test]
    fn product_scans_relation() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .product(f.rates.clone())
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(f.calls, 1, vec![tuple![SeqNo(1), 555i64, 2.0f64]]);
        let d = eng.delta_ca(&e, &b, &mut w).unwrap();
        assert_eq!(d.len(), 2, "one output per relation tuple");
        assert_eq!(w.rel_tuples_scanned, 2);
        assert_eq!(w.index_probes, 0);
    }

    #[test]
    fn key_join_probes_index() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .join_rel_key(f.rates.clone(), &["caller"])
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 999i64, 4.0f64], // no rate row -> dropped
            ],
        );
        let d = eng.delta_ca(&e, &b, &mut w).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].get(4).as_float(), Some(0.1));
        assert_eq!(w.index_probes, 2);
        assert_eq!(w.rel_tuples_scanned, 0);
    }

    #[test]
    fn duplicate_tuples_consolidate_but_charge_full_work() {
        // Two identical tuples in one batch consolidate to one weight-2
        // entry, yet the Theorem 4.1 counters still charge per logical
        // tuple — batch-internal consolidation must not perturb the
        // experiment currency.
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .join_rel_key(f.rates.clone(), &["caller"])
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let row = tuple![SeqNo(1), 555i64, 2.0f64];
        let b = batch(f.calls, 1, vec![row.clone(), row.clone()]);
        let d = eng.delta_ca_z(&e, &b, &mut w).unwrap();
        assert_eq!(d.entry_count(), 1, "consolidated to one entry");
        assert_eq!(d.abs_weight(), 2, "weight carries the multiplicity");
        assert_eq!(w.index_probes, 2, "probes charged per logical tuple");
        // And the plain-tuple expansion repeats the row.
        assert_eq!(
            eng.delta_ca(&e, &b, &mut WorkCounter::default())
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn sca_group_delta_buckets_by_key() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let v = ScaExpr::group_agg(e, &["caller"], vec![AggSpec::new(AggFunc::Sum(2), "total")])
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 555i64, 3.0f64],
                tuple![SeqNo(1), 777i64, 9.0f64],
            ],
        );
        let d = eng.delta_sca(&v, &b, &mut w).unwrap();
        match d {
            SummaryDelta::Groups(g) => {
                assert_eq!(g.len(), 2);
                assert_eq!(g[&vec![Value::Int(555)]].abs_weight(), 2);
            }
            _ => panic!("expected groups"),
        }
    }

    #[test]
    fn sca_projection_delta() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls));
        let v = ScaExpr::project(e, &["caller"]).unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(
            f.calls,
            1,
            vec![
                tuple![SeqNo(1), 555i64, 2.0f64],
                tuple![SeqNo(1), 555i64, 3.0f64],
            ],
        );
        let d = eng.delta_sca(&v, &b, &mut w).unwrap();
        match d {
            SummaryDelta::Rows(rows) => {
                // Both tuples project to caller=555: the Z-set consolidates
                // them into one entry of weight 2, which the view's
                // multiplicity counts absorb.
                assert_eq!(rows.entry_count(), 1);
                assert_eq!(rows.weight(&tuple![555i64]), 2);
            }
            _ => panic!("expected rows"),
        }
    }

    #[test]
    fn delta_never_touches_chronicle_storage() {
        // Retention::None means any attempt to read the chronicle fails
        // once something has been appended; delta propagation succeeds
        // anyway.
        let mut f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .join_rel_key(f.rates.clone(), &["caller"])
            .unwrap();
        f.cat
            .append(
                f.calls,
                chronicle_types::Chronon(1),
                &[tuple![SeqNo(1), 555i64, 3.0f64]],
            )
            .unwrap();
        assert!(f.cat.chronicle(f.calls).scan_all().is_err());
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(f.calls, 7, vec![tuple![SeqNo(7), 555i64, 1.0f64]]);
        assert_eq!(eng.delta_ca(&e, &b, &mut w).unwrap().len(), 1);
    }

    #[test]
    fn monotonicity_deltas_carry_only_new_sn() {
        let f = fixture();
        let e = CaExpr::chronicle(f.cat.chronicle(f.calls))
            .project(&["sn", "caller"])
            .unwrap();
        let eng = DeltaEngine::new(&f.cat);
        let mut w = WorkCounter::default();
        let b = batch(f.calls, 42, vec![tuple![SeqNo(42), 555i64, 1.0f64]]);
        let d = eng.delta_ca(&e, &b, &mut w).unwrap();
        for t in &d {
            assert_eq!(e.seq_of(t).unwrap(), SeqNo(42));
        }
    }

    #[test]
    fn validate_batch_checks_seq_and_schema() {
        let f = fixture();
        let good = batch(f.calls, 1, vec![tuple![SeqNo(1), 555i64, 1.0f64]]);
        assert!(validate_batch(&f.cat, &good).is_ok());
        let bad_seq = batch(f.calls, 1, vec![tuple![SeqNo(2), 555i64, 1.0f64]]);
        assert!(validate_batch(&f.cat, &bad_seq).is_err());
        let bad_schema = batch(f.calls, 1, vec![tuple![SeqNo(1), "x", 1.0f64]]);
        assert!(validate_batch(&f.cat, &bad_schema).is_err());
    }

    #[test]
    fn work_counter_absorb_and_total() {
        let mut a = WorkCounter {
            tuples_out: 1,
            tuples_in: 2,
            index_probes: 3,
            rel_tuples_scanned: 4,
        };
        let b = WorkCounter {
            tuples_out: 10,
            tuples_in: 20,
            index_probes: 30,
            rel_tuples_scanned: 40,
        };
        a.absorb(b);
        assert_eq!(a.total(), 11 + 22 + 33 + 44);
    }
}
