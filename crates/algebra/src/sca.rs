//! The summarized chronicle algebra (Definition 4.3).
//!
//! SCA adds, on top of a chronicle-algebra expression χ, exactly one
//! summarization step that eliminates the sequencing attribute and maps χ
//! into a *relation*:
//!
//! * projection with the SN projected out, or
//! * grouping with aggregation where the SN is not in the grouping list and
//!   every aggregation function is incrementally computable (or
//!   decomposable).
//!
//! If χ ∈ CA₁ the result language is SCA₁ (IM-Constant); if χ ∈ CA⋈ it is
//! SCA⋈ (IM-log(R)); χ ∈ CA gives SCA (IM-R^k) — Theorem 4.5.

use std::fmt;

use chronicle_types::{Attribute, ChronicleError, Result, Schema};

use crate::aggregate::AggSpec;
use crate::classify::{CostModel, ImClass, LanguageFragment};
use crate::expr::CaExpr;

/// The summarization step.
#[derive(Debug, Clone)]
pub enum Summarize {
    /// Π with the sequencing attribute projected out. The result is a
    /// *set* of tuples; the persistent view keeps multiplicity counts so
    /// that set semantics survive incremental inserts.
    Project {
        /// Kept columns of χ's output schema (SN excluded).
        cols: Vec<usize>,
    },
    /// GROUPBY(χ, GL, AL) with SN ∉ GL.
    GroupAgg {
        /// Grouping columns of χ's output schema (SN excluded; may be
        /// empty — a single global group, e.g. `SELECT SUM(x) FROM c`).
        group_cols: Vec<usize>,
        /// Aggregation list.
        aggs: Vec<AggSpec>,
    },
}

/// A summarized chronicle-algebra expression: a validated pair (χ, step).
#[derive(Debug, Clone)]
pub struct ScaExpr {
    ca: CaExpr,
    summarize: Summarize,
    schema: Schema,
}

impl ScaExpr {
    /// χ followed by an SN-dropping projection, columns given by name.
    pub fn project(ca: CaExpr, names: &[&str]) -> Result<ScaExpr> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| ca.schema().position(n))
            .collect::<Result<_>>()?;
        Self::project_cols(ca, cols)
    }

    /// χ followed by an SN-dropping projection over positional columns.
    pub fn project_cols(ca: CaExpr, cols: Vec<usize>) -> Result<ScaExpr> {
        let sn = ca.seq_pos();
        if cols.contains(&sn) {
            return Err(ChronicleError::NotInLanguage {
                language: "SCA",
                reason: "the summarization projection must project the sequencing attribute out \
                         (Definition 4.3); keep it with CaExpr::project instead"
                    .into(),
            });
        }
        let schema = ca.schema().project(&cols)?;
        debug_assert!(!schema.is_chronicle());
        Ok(ScaExpr {
            ca,
            summarize: Summarize::Project { cols },
            schema,
        })
    }

    /// χ followed by GROUPBY(χ, GL, AL) with SN ∉ GL, names resolved
    /// against χ's output schema.
    pub fn group_agg(ca: CaExpr, group_names: &[&str], aggs: Vec<AggSpec>) -> Result<ScaExpr> {
        let group_cols: Vec<usize> = group_names
            .iter()
            .map(|n| ca.schema().position(n))
            .collect::<Result<_>>()?;
        Self::group_agg_cols(ca, group_cols, aggs)
    }

    /// Positional variant of [`ScaExpr::group_agg`].
    pub fn group_agg_cols(
        ca: CaExpr,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    ) -> Result<ScaExpr> {
        let sn = ca.seq_pos();
        if group_cols.contains(&sn) {
            return Err(ChronicleError::NotInLanguage {
                language: "SCA",
                reason: "the summarization GROUPBY must not group by the sequencing attribute \
                         (Definition 4.3); use CaExpr::group_by_seq to stay in CA"
                    .into(),
            });
        }
        if aggs.is_empty() {
            return Err(ChronicleError::BadAggregate {
                detail: "summarization GROUPBY needs at least one aggregate; use a projection \
                         for pure column selection"
                    .into(),
            });
        }
        for spec in &aggs {
            spec.func.validate(ca.schema())?;
            if spec.func.input_attr() == Some(sn) {
                // Aggregating the SN itself (e.g. MAX(sn) = last seen
                // sequence number) is well defined and occasionally useful;
                // allow it.
            }
        }
        let mut attrs: Vec<Attribute> = Vec::with_capacity(group_cols.len() + aggs.len());
        for &c in &group_cols {
            attrs.push(ca.schema().attr(c).clone());
        }
        for spec in &aggs {
            attrs.push(Attribute::new(
                &spec.name,
                spec.func.output_type(ca.schema()),
            ));
        }
        // The output may legitimately contain a SEQ-typed column if an
        // aggregate like MAX(sn) is used; model it as a relation schema by
        // retyping SEQ outputs — no: Schema::relation rejects SEQ columns.
        // Retype any SEQ aggregate output as INT (a sequence number is an
        // integer once it leaves the chronicle).
        for a in &mut attrs {
            if a.ty == chronicle_types::AttrType::Seq {
                *a = Attribute::new(a.name.as_ref(), chronicle_types::AttrType::Int);
            }
        }
        let schema = Schema::relation(attrs)?;
        Ok(ScaExpr {
            ca,
            summarize: Summarize::GroupAgg { group_cols, aggs },
            schema,
        })
    }

    /// The underlying chronicle-algebra expression χ.
    pub fn ca(&self) -> &CaExpr {
        &self.ca
    }

    /// The summarization step.
    pub fn summarize(&self) -> &Summarize {
        &self.summarize
    }

    /// The persistent view's (relation) schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The fragment of χ, which determines the SCA variant.
    pub fn fragment(&self) -> LanguageFragment {
        self.ca.fragment()
    }

    /// The IM complexity class of this view (Theorem 4.5): SCA₁ →
    /// IM-Constant, SCA⋈ → IM-log(R), SCA → IM-R^k.
    pub fn im_class(&self) -> ImClass {
        self.fragment().im_class()
    }

    /// The paper's name for this view's language: `SCA_1`, `SCA_join` or
    /// `SCA`.
    pub fn language_name(&self) -> &'static str {
        match self.fragment() {
            LanguageFragment::Ca1 => "SCA_1",
            LanguageFragment::CaKey => "SCA_join",
            LanguageFragment::Ca => "SCA",
        }
    }

    /// Cost model of the change-computation phase (Theorem 4.2; the apply
    /// phase adds `O(t log |V|)` per Theorem 4.4).
    pub fn cost_model(&self) -> CostModel {
        self.ca.cost_model()
    }
}

impl fmt::Display for ScaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.summarize {
            Summarize::Project { cols } => write!(f, "Π{cols:?}({})", self.ca),
            Summarize::GroupAgg { group_cols, aggs } => {
                write!(f, "GROUPBY({}, {group_cols:?}, [", self.ca)?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} AS {}", a.func, a.name)?;
                }
                write!(f, "])")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::expr::RelationRef;
    use chronicle_store::{Catalog, Retention};
    use chronicle_types::AttrType;

    fn setup() -> (CaExpr, RelationRef) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let calls = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("calls", g, calls, Retention::None)
            .unwrap();
        let rschema = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("rate", AttrType::Float),
            ],
            &["acct"],
        )
        .unwrap();
        let r = cat.create_relation("rates", rschema.clone()).unwrap();
        (
            CaExpr::chronicle(cat.chronicle(c)),
            RelationRef::new(r, rschema, "rates"),
        )
    }

    #[test]
    fn projection_must_drop_sn() {
        let (ca, _) = setup();
        let ok = ScaExpr::project(ca.clone(), &["caller"]).unwrap();
        assert!(!ok.schema().is_chronicle());
        assert_eq!(ok.schema().arity(), 1);
        let err = ScaExpr::project(ca, &["sn", "caller"]).unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn group_agg_must_exclude_sn() {
        let (ca, _) = setup();
        let aggs = vec![AggSpec::new(AggFunc::Sum(2), "total")];
        let ok = ScaExpr::group_agg(ca.clone(), &["caller"], aggs.clone()).unwrap();
        assert_eq!(ok.schema().arity(), 2);
        let err = ScaExpr::group_agg(ca, &["sn", "caller"], aggs).unwrap_err();
        assert!(matches!(err, ChronicleError::NotInLanguage { .. }));
    }

    #[test]
    fn global_group_allowed() {
        let (ca, _) = setup();
        let v = ScaExpr::group_agg(ca, &[], vec![AggSpec::new(AggFunc::CountStar, "n")]).unwrap();
        assert_eq!(v.schema().arity(), 1);
    }

    #[test]
    fn empty_agg_list_rejected() {
        let (ca, _) = setup();
        assert!(ScaExpr::group_agg(ca, &["caller"], vec![]).is_err());
    }

    #[test]
    fn language_names_follow_fragment() {
        let (ca, rel) = setup();
        let aggs = vec![AggSpec::new(AggFunc::CountStar, "n")];
        let v1 = ScaExpr::group_agg(ca.clone(), &["caller"], aggs.clone()).unwrap();
        assert_eq!(v1.language_name(), "SCA_1");
        assert_eq!(v1.im_class(), ImClass::Constant);

        let keyed = ca.clone().join_rel_key(rel.clone(), &["caller"]).unwrap();
        let v2 = ScaExpr::group_agg(keyed, &["caller"], aggs.clone()).unwrap();
        assert_eq!(v2.language_name(), "SCA_join");
        assert_eq!(v2.im_class(), ImClass::LogR);

        let prod = ca.product(rel).unwrap();
        let v3 = ScaExpr::group_agg(prod, &["caller"], aggs).unwrap();
        assert_eq!(v3.language_name(), "SCA");
        assert_eq!(v3.im_class(), ImClass::PolyR);
    }

    #[test]
    fn max_sn_aggregate_retypes_to_int() {
        let (ca, _) = setup();
        let v = ScaExpr::group_agg(
            ca,
            &["caller"],
            vec![AggSpec::new(AggFunc::Max(0), "last_sn")],
        )
        .unwrap();
        assert_eq!(v.schema().attr(1).ty, AttrType::Int);
    }

    #[test]
    fn display_shows_summarization() {
        let (ca, _) = setup();
        let v = ScaExpr::group_agg(
            ca,
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "total")],
        )
        .unwrap();
        let s = v.to_string();
        assert!(s.contains("GROUPBY") && s.contains("SUM"));
    }
}
