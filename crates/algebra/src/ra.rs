//! General relational algebra over chronicles and relations — the
//! Proposition 3.1 / Theorem 4.3 comparators.
//!
//! RA (with grouping and aggregation) can express everything CA can, *plus*
//! the constructions CA rejects: projections that drop the sequencing
//! attribute mid-expression, grouping without the SN, cross products and
//! θ-joins between chronicles. The price (Prop. 3.1): such views are only
//! maintainable by recomputation over the stored chronicle — time
//! polynomial in |C|, class IM-C^k.
//!
//! RA treats the sequencing attribute as an ordinary integer column: base
//! chronicle schemas are imported with `SEQ` retyped to `INT` so that
//! multiple SN columns can coexist in a join result.

use std::collections::{HashMap, HashSet};

use chronicle_store::{Catalog, Chronicle};
use chronicle_types::{
    Attribute, ChronicleError, ChronicleId, RelationId, Result, Schema, Tuple, Value,
};

use crate::aggregate::{aggregate_group, AggSpec};
use crate::predicate::{CmpOp, Predicate};

/// A join condition: `left.a θ right.b`.
#[derive(Debug, Clone, Copy)]
pub struct JoinCond {
    /// Attribute position in the left operand.
    pub left: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Attribute position in the right operand.
    pub right: usize,
}

#[derive(Debug, Clone)]
enum RaNode {
    Chronicle(ChronicleId),
    Relation(RelationId),
    Select {
        input: Box<RaExpr>,
        pred: Predicate,
    },
    Project {
        input: Box<RaExpr>,
        cols: Vec<usize>,
    },
    Join {
        left: Box<RaExpr>,
        right: Box<RaExpr>,
        /// Empty conditions = cross product.
        conds: Vec<JoinCond>,
    },
    Union {
        left: Box<RaExpr>,
        right: Box<RaExpr>,
    },
    Diff {
        left: Box<RaExpr>,
        right: Box<RaExpr>,
    },
    GroupBy {
        input: Box<RaExpr>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
}

/// A relational-algebra expression with schema tracking and set semantics.
#[derive(Debug, Clone)]
pub struct RaExpr {
    node: RaNode,
    schema: Schema,
}

/// Retype `SEQ` attributes to `INT` (RA sees sequence numbers as data).
fn demote_seq(schema: &Schema) -> Schema {
    let attrs: Vec<Attribute> = schema
        .attrs()
        .iter()
        .map(|a| {
            if a.ty == chronicle_types::AttrType::Seq {
                Attribute::new(a.name.as_ref(), chronicle_types::AttrType::Int)
            } else {
                a.clone()
            }
        })
        .collect();
    Schema::relation(attrs).expect("demoted schema is valid")
}

impl RaExpr {
    /// Scan a base chronicle (requires full retention at eval time).
    pub fn chronicle(c: &Chronicle) -> RaExpr {
        RaExpr {
            schema: demote_seq(c.schema()),
            node: RaNode::Chronicle(c.id()),
        }
    }

    /// Scan a base relation (current version).
    pub fn relation(id: RelationId, schema: Schema) -> RaExpr {
        RaExpr {
            schema: demote_seq(&schema),
            node: RaNode::Relation(id),
        }
    }

    /// σ_p.
    pub fn select(self, pred: Predicate) -> Result<RaExpr> {
        pred.validate(&self.schema)?;
        let schema = self.schema.clone();
        Ok(RaExpr {
            node: RaNode::Select {
                input: Box::new(self),
                pred,
            },
            schema,
        })
    }

    /// Π over names — *any* columns, including dropping the SN (legal in RA).
    pub fn project(self, names: &[&str]) -> Result<RaExpr> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| self.schema.position(n))
            .collect::<Result<_>>()?;
        let schema = self.schema.project(&cols)?;
        Ok(RaExpr {
            node: RaNode::Project {
                input: Box::new(self),
                cols,
            },
            schema,
        })
    }

    /// θ-join (empty `conds` = cross product) — including between two
    /// chronicles, the IM-C^k construction of Theorem 4.3.
    pub fn join(self, right: RaExpr, conds: Vec<JoinCond>) -> Result<RaExpr> {
        for c in &conds {
            if c.left >= self.schema.arity() || c.right >= right.schema.arity() {
                return Err(ChronicleError::UnknownAttribute {
                    name: format!("join positions ({}, {})", c.left, c.right),
                    context: "RA join".into(),
                });
            }
        }
        let schema = self.schema.concat(&right.schema, "r")?;
        Ok(RaExpr {
            node: RaNode::Join {
                left: Box::new(self),
                right: Box::new(right),
                conds,
            },
            schema,
        })
    }

    /// Cross product.
    pub fn product(self, right: RaExpr) -> Result<RaExpr> {
        self.join(right, Vec::new())
    }

    /// Union (set semantics; operand types must match).
    pub fn union(self, right: RaExpr) -> Result<RaExpr> {
        if !self.schema.same_type(&right.schema) {
            return Err(ChronicleError::InvalidSchema(format!(
                "union operands differ: {} vs {}",
                self.schema, right.schema
            )));
        }
        let schema = self.schema.clone();
        Ok(RaExpr {
            node: RaNode::Union {
                left: Box::new(self),
                right: Box::new(right),
            },
            schema,
        })
    }

    /// Difference.
    pub fn diff(self, right: RaExpr) -> Result<RaExpr> {
        if !self.schema.same_type(&right.schema) {
            return Err(ChronicleError::InvalidSchema(format!(
                "difference operands differ: {} vs {}",
                self.schema, right.schema
            )));
        }
        let schema = self.schema.clone();
        Ok(RaExpr {
            node: RaNode::Diff {
                left: Box::new(self),
                right: Box::new(right),
            },
            schema,
        })
    }

    /// GROUPBY over *any* columns — including none of the SN (legal in RA;
    /// this is what summary views look like when written naively).
    pub fn group_by(self, group_names: &[&str], aggs: Vec<AggSpec>) -> Result<RaExpr> {
        let group_cols: Vec<usize> = group_names
            .iter()
            .map(|n| self.schema.position(n))
            .collect::<Result<_>>()?;
        for a in &aggs {
            a.func.validate(&self.schema)?;
        }
        let mut attrs = Vec::with_capacity(group_cols.len() + aggs.len());
        for &c in &group_cols {
            attrs.push(self.schema.attr(c).clone());
        }
        for a in &aggs {
            attrs.push(Attribute::new(&a.name, a.func.output_type(&self.schema)));
        }
        let schema = Schema::relation(attrs)?;
        Ok(RaExpr {
            node: RaNode::GroupBy {
                input: Box::new(self),
                group_cols,
                aggs,
            },
            schema,
        })
    }

    /// Output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Evaluate from scratch (set semantics). This *is* the maintenance
    /// algorithm for RA views in the chronicle setting — Proposition 3.1:
    /// recomputation over the stored chronicle, O(|C|^k).
    pub fn eval(&self, catalog: &Catalog) -> Result<Vec<Tuple>> {
        let rows = self.eval_inner(catalog)?;
        // Global set semantics at the top.
        let mut seen = HashSet::new();
        Ok(rows
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect())
    }

    fn eval_inner(&self, catalog: &Catalog) -> Result<Vec<Tuple>> {
        match &self.node {
            RaNode::Chronicle(id) => {
                let c = catalog.chronicle(*id);
                Ok(c.scan_all()?
                    .map(|t| {
                        Tuple::new(
                            t.values()
                                .iter()
                                .map(|v| crate::eval::seq_to_int(v.clone()))
                                .collect(),
                        )
                    })
                    .collect())
            }
            RaNode::Relation(id) => Ok(catalog.relation(*id).current().to_vec()),
            RaNode::Select { input, pred } => {
                let rows = input.eval_inner(catalog)?;
                let mut out = Vec::with_capacity(rows.len());
                for t in rows {
                    if pred.eval(&t)? {
                        out.push(t);
                    }
                }
                Ok(out)
            }
            RaNode::Project { input, cols } => {
                let rows = input.eval_inner(catalog)?;
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for t in rows {
                    let p = t.project(cols);
                    if seen.insert(p.clone()) {
                        out.push(p);
                    }
                }
                Ok(out)
            }
            RaNode::Join { left, right, conds } => {
                let l = left.eval_inner(catalog)?;
                let r = right.eval_inner(catalog)?;
                let mut out = Vec::new();
                // Nested loops with θ conditions — the honest cost of RA
                // over chronicles. (Equi-conditions could be hashed, but
                // the baseline's point is the |C|-dependence, which no join
                // algorithm removes for θ-joins.)
                for lt in &l {
                    'rt: for rt in &r {
                        for c in conds {
                            let ord = lt.get(c.left).sql_cmp(rt.get(c.right))?;
                            if !c.op.test(ord) {
                                continue 'rt;
                            }
                        }
                        out.push(lt.concat(rt));
                    }
                }
                Ok(out)
            }
            RaNode::Union { left, right } => {
                let mut l = left.eval_inner(catalog)?;
                l.extend(right.eval_inner(catalog)?);
                let mut seen = HashSet::new();
                Ok(l.into_iter().filter(|t| seen.insert(t.clone())).collect())
            }
            RaNode::Diff { left, right } => {
                let l = left.eval_inner(catalog)?;
                let r: HashSet<Tuple> = right.eval_inner(catalog)?.into_iter().collect();
                Ok(l.into_iter().filter(|t| !r.contains(t)).collect())
            }
            RaNode::GroupBy {
                input,
                group_cols,
                aggs,
            } => {
                let rows = input.eval_inner(catalog)?;
                let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
                for t in &rows {
                    let key: Vec<Value> = group_cols.iter().map(|&c| t.get(c).clone()).collect();
                    groups.entry(key).or_default().push(t);
                }
                let funcs: Vec<_> = aggs.iter().map(|a| a.func).collect();
                let mut out = Vec::with_capacity(groups.len());
                for (key, members) in groups {
                    let aggv = aggregate_group(&funcs, &members)?;
                    let mut row = key;
                    row.extend(aggv.into_iter().map(crate::eval::seq_to_int));
                    out.push(Tuple::new(row));
                }
                Ok(out)
            }
        }
    }

    /// The number of *stored chronicle tuples* this expression reads when
    /// evaluated — the |C| term that Proposition 3.1 says cannot be
    /// avoided. Used by experiment E1/E7 as the work counter.
    pub fn chronicle_tuples_read(&self, catalog: &Catalog) -> u64 {
        match &self.node {
            RaNode::Chronicle(id) => catalog.chronicle(*id).stored_len() as u64,
            RaNode::Relation(_) => 0,
            RaNode::Select { input, .. }
            | RaNode::Project { input, .. }
            | RaNode::GroupBy { input, .. } => input.chronicle_tuples_read(catalog),
            RaNode::Join { left, right, .. }
            | RaNode::Union { left, right }
            | RaNode::Diff { left, right } => {
                left.chronicle_tuples_read(catalog) + right.chronicle_tuples_read(catalog)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use chronicle_store::Retention;
    use chronicle_types::{tuple, AttrType, Chronon, SeqNo};

    fn setup() -> (Catalog, ChronicleId) {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let c = cat
            .create_chronicle("calls", g, cs, Retention::All)
            .unwrap();
        for i in 1..=4u64 {
            cat.append(
                c,
                Chronon(i as i64),
                &[tuple![SeqNo(i), (500 + (i % 2)) as i64, i as f64]],
            )
            .unwrap();
        }
        (cat, c)
    }

    #[test]
    fn chronicle_scan_demotes_sn_to_int() {
        let (cat, c) = setup();
        let e = RaExpr::chronicle(cat.chronicle(c));
        let rows = e.eval(&cat).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].get(0).attr_type(), Some(AttrType::Int));
    }

    #[test]
    fn sn_dropping_projection_is_legal_in_ra() {
        let (cat, c) = setup();
        let e = RaExpr::chronicle(cat.chronicle(c))
            .project(&["caller"])
            .unwrap();
        let rows = e.eval(&cat).unwrap();
        assert_eq!(rows.len(), 2, "set semantics dedup callers");
    }

    #[test]
    fn sn_free_group_by_is_legal_in_ra() {
        let (cat, c) = setup();
        let e = RaExpr::chronicle(cat.chronicle(c))
            .group_by(&["caller"], vec![AggSpec::new(AggFunc::Sum(2), "total")])
            .unwrap();
        let mut rows = e.eval(&cat).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 2);
        // caller 500 received SNs 2 and 4 (even i), total = 6.0.
        assert_eq!(rows[0].values(), &[Value::Int(500), Value::Float(6.0)]);
    }

    #[test]
    fn chronicle_cross_chronicle_product() {
        let (cat, c) = setup();
        let e = RaExpr::chronicle(cat.chronicle(c))
            .product(RaExpr::chronicle(cat.chronicle(c)))
            .unwrap();
        let rows = e.eval(&cat).unwrap();
        assert_eq!(rows.len(), 16, "|C|^2 — the Theorem 4.3 blow-up");
        assert_eq!(e.chronicle_tuples_read(&cat), 8);
    }

    #[test]
    fn non_equi_sn_self_join() {
        let (cat, c) = setup();
        // pairs (t1, t2) with t1.sn < t2.sn: 4 choose 2 = 6.
        let e = RaExpr::chronicle(cat.chronicle(c))
            .join(
                RaExpr::chronicle(cat.chronicle(c)),
                vec![JoinCond {
                    left: 0,
                    op: CmpOp::Lt,
                    right: 0,
                }],
            )
            .unwrap();
        assert_eq!(e.eval(&cat).unwrap().len(), 6);
    }

    #[test]
    fn union_diff_set_semantics() {
        let (cat, c) = setup();
        let a = RaExpr::chronicle(cat.chronicle(c));
        let b = RaExpr::chronicle(cat.chronicle(c));
        assert_eq!(
            a.clone()
                .union(b.clone())
                .unwrap()
                .eval(&cat)
                .unwrap()
                .len(),
            4
        );
        assert_eq!(a.diff(b).unwrap().eval(&cat).unwrap().len(), 0);
    }

    #[test]
    fn select_filters() {
        let (cat, c) = setup();
        let e = RaExpr::chronicle(cat.chronicle(c));
        let p =
            Predicate::attr_cmp_const(e.schema(), "minutes", CmpOp::Ge, Value::Float(3.0)).unwrap();
        assert_eq!(e.select(p).unwrap().eval(&cat).unwrap().len(), 2);
    }

    #[test]
    fn type_mismatch_in_union_rejected() {
        let (cat, c) = setup();
        let a = RaExpr::chronicle(cat.chronicle(c));
        let b = RaExpr::chronicle(cat.chronicle(c))
            .project(&["caller"])
            .unwrap();
        assert!(a.union(b).is_err());
    }

    #[test]
    fn join_position_bounds_checked() {
        let (cat, c) = setup();
        let a = RaExpr::chronicle(cat.chronicle(c));
        let b = RaExpr::chronicle(cat.chronicle(c));
        assert!(a
            .join(
                b,
                vec![JoinCond {
                    left: 99,
                    op: CmpOp::Eq,
                    right: 0
                }]
            )
            .is_err());
    }
}
