//! The delta frame rule (Theorem 4.1, operationally): for any CA
//! expression E and any admissible append Δ,
//!
//! ```text
//! eval(E, db after Δ)  ==  eval(E, db before Δ)  ⊎  delta(E, Δ)
//! ```
//!
//! as multisets — the delta engine computes *exactly* the new tuples, no
//! more, no less, for every operator combination. This is checked here for
//! randomly generated expressions and append histories.

use chronicle_testkit::prop::{boxed, ints, just, map, pair, triple, vec_of, weighted, Gen};
use chronicle_testkit::{prop_assert_eq, prop_test};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::eval::{canon, eval_ca};
use chronicle_algebra::{
    AggFunc, AggSpec, CaExpr, CmpOp, Operand, Predicate, RelationRef, WorkCounter,
};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{
    tuple, AttrType, Attribute, ChronicleId, Chronon, Schema, SeqNo, Tuple, Value,
};

#[derive(Debug, Clone)]
enum Shape {
    Select(i8),
    Union,
    Diff,
    JoinSeqSelves,
    GroupBySeq,
    KeyJoin,
    Product,
}

fn shape_gen() -> impl Gen<Value = Vec<Shape>> {
    vec_of(
        weighted(vec![
            (3, boxed(map(ints(-1..6i8), Shape::Select))),
            (2, boxed(just(Shape::Union))),
            (2, boxed(just(Shape::Diff))),
            (1, boxed(just(Shape::JoinSeqSelves))),
            (1, boxed(just(Shape::GroupBySeq))),
            (1, boxed(just(Shape::KeyJoin))),
            (1, boxed(just(Shape::Product))),
        ]),
        0..5,
    )
}

fn setup() -> (Catalog, ChronicleId, ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("k", AttrType::Int),
            Attribute::new("v", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let c1 = cat
        .create_chronicle("c1", g, cs.clone(), Retention::All)
        .unwrap();
    let c2 = cat.create_chronicle("c2", g, cs, Retention::All).unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("k", AttrType::Int),
            Attribute::new("w", AttrType::Float),
        ],
        &["k"],
    )
    .unwrap();
    let r = cat.create_relation("r", rs.clone()).unwrap();
    for i in 0..4i64 {
        cat.relation_insert(r, g, tuple![i, 0.5f64]).unwrap();
    }
    (cat, c1, c2, RelationRef::new(r, rs, "r"))
}

fn build(
    cat: &Catalog,
    c1: ChronicleId,
    c2: ChronicleId,
    rel: &RelationRef,
    shapes: &[Shape],
) -> CaExpr {
    let base1 = CaExpr::chronicle(cat.chronicle(c1));
    let base2 = CaExpr::chronicle(cat.chronicle(c2));
    let mut expr = base1.clone();
    for s in shapes {
        expr = match s {
            Shape::Select(t) => {
                let Ok(pos) = expr.schema().position("v") else {
                    continue;
                };
                expr.clone()
                    .select(Predicate::atom(
                        pos,
                        CmpOp::Gt,
                        Operand::Const(Value::Float(*t as f64)),
                    ))
                    .unwrap_or(expr)
            }
            Shape::Union if expr.schema().same_type(base1.schema()) => {
                expr.union(base2.clone()).unwrap()
            }
            Shape::Diff if expr.schema().same_type(base1.schema()) => {
                expr.diff(base2.clone()).unwrap()
            }
            Shape::JoinSeqSelves if expr.schema().arity() <= 3 => {
                match expr.clone().join_seq(base2.clone()) {
                    Ok(e) => e,
                    Err(_) => expr,
                }
            }
            Shape::GroupBySeq => {
                let sn = expr.seq_pos();
                let Ok(k) = expr.schema().position("k") else {
                    continue;
                };
                let Ok(v) = expr.schema().position("v") else {
                    continue;
                };
                expr.clone()
                    .group_by_seq_cols(
                        vec![sn, k],
                        vec![
                            AggSpec::new(AggFunc::Sum(v), "v"), // keep the name for later steps
                            AggSpec::new(AggFunc::CountStar, "n"),
                        ],
                    )
                    .unwrap_or(expr)
            }
            Shape::KeyJoin if expr.schema().arity() <= 5 => {
                if expr.schema().position("k").is_ok() {
                    match expr.clone().join_rel_key(rel.clone(), &["k"]) {
                        Ok(e) => e,
                        Err(_) => expr,
                    }
                } else {
                    expr
                }
            }
            Shape::Product if expr.schema().arity() <= 5 => {
                expr.clone().product(rel.clone()).unwrap_or(expr)
            }
            _ => expr,
        };
    }
    expr
}

prop_test! {
    fn delta_is_exactly_the_difference(cases = 96, seed = 0xDE17A;
        shapes in shape_gen(),
        history in vec_of(triple(ints(0..2u8), ints(0..5i64), ints(0..9i64)), 1..20),
        batch_rows in vec_of(pair(ints(0..5i64), ints(0..9i64)), 1..3),
        target in ints(0..2u8),
    ) {
        let (mut cat, c1, c2, rel) = setup();
        let expr = build(&cat, c1, c2, &rel, &shapes);

        // Replay the random history.
        let mut seq = 0u64;
        for (t, k, v) in &history {
            seq += 1;
            let target = if *t == 0 { c1 } else { c2 };
            cat.append_at(
                target,
                SeqNo(seq),
                Chronon(seq as i64),
                &[tuple![SeqNo(seq), *k, *v as f64]],
            )
            .unwrap();
        }

        // Evaluate before.
        let before = canon(eval_ca(&cat, &expr).unwrap());

        // Compute the delta for the next batch, then actually append it.
        seq += 1;
        let tuples: Vec<Tuple> = batch_rows
            .iter()
            .map(|(k, v)| tuple![SeqNo(seq), *k, *v as f64])
            .collect();
        let chron = if target == 0 { c1 } else { c2 };
        let engine = DeltaEngine::new(&cat);
        let mut w = WorkCounter::default();
        let delta = engine
            .delta_ca(
                &expr,
                &DeltaBatch {
                    chronicle: chron,
                    seq: SeqNo(seq),
                    tuples: tuples.clone(),
                },
                &mut w,
            )
            .unwrap();
        cat.append_at(chron, SeqNo(seq), Chronon(seq as i64), &tuples).unwrap();

        // Evaluate after: must equal before ⊎ delta.
        let after = canon(eval_ca(&cat, &expr).unwrap());
        let mut expected = before.clone();
        expected.extend(delta.iter().cloned());
        let expected = canon(expected);
        prop_assert_eq!(
            after, expected,
            "frame rule violated for {} (|before|={}, |delta|={})",
            expr, before.len(), delta.len()
        );

        // Theorem 4.1 monotonicity: every delta tuple carries the new SN.
        for t in &delta {
            prop_assert_eq!(expr.seq_of(t).unwrap(), SeqNo(seq));
        }
    }
}
