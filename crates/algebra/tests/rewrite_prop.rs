//! Property test: `optimize` (selection pushdown) preserves both the full
//! evaluation semantics and the delta semantics of randomly generated
//! chronicle-algebra expressions, never changes the language fragment, and
//! never *loses* router guards.

use chronicle_testkit::prop::{boxed, ints, just, map, triple, vec_of, weighted, Gen};
use chronicle_testkit::{prop_assert, prop_assert_eq, prop_test};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::eval::{canon, eval_ca};
use chronicle_algebra::rewrite::optimize;
use chronicle_algebra::{CaExpr, CmpOp, Predicate, RelationRef, WorkCounter};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{tuple, AttrType, Attribute, ChronicleId, Chronon, Schema, SeqNo, Value};

/// Recipe for one randomly structured expression.
#[derive(Debug, Clone)]
enum Step {
    Select { attr: u8, op: u8, threshold: i8 },
    ProjectSwap,
    UnionOther,
    DiffOther,
    JoinSeqSelf,
    KeyJoin,
    Product,
}

fn step_gen() -> impl Gen<Value = Step> {
    weighted(vec![
        (
            4,
            boxed(map(
                triple(ints(0..2u8), ints(0..6u8), ints(-2..8i8)),
                |(attr, op, threshold)| Step::Select {
                    attr,
                    op,
                    threshold,
                },
            )),
        ),
        (1, boxed(just(Step::ProjectSwap))),
        (2, boxed(just(Step::UnionOther))),
        (2, boxed(just(Step::DiffOther))),
        (1, boxed(just(Step::JoinSeqSelf))),
        (1, boxed(just(Step::KeyJoin))),
        (1, boxed(just(Step::Product))),
    ])
}

fn setup() -> (Catalog, ChronicleId, ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("k", AttrType::Int),
            Attribute::new("v", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let c1 = cat
        .create_chronicle("c1", g, cs.clone(), Retention::All)
        .unwrap();
    let c2 = cat.create_chronicle("c2", g, cs, Retention::All).unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("k", AttrType::Int),
            Attribute::new("w", AttrType::Float),
        ],
        &["k"],
    )
    .unwrap();
    let r = cat.create_relation("r", rs.clone()).unwrap();
    for i in 0..5i64 {
        cat.relation_insert(r, g, tuple![i, (i as f64) * 0.5])
            .unwrap();
    }
    (cat, c1, c2, RelationRef::new(r, rs, "r"))
}

/// Apply a recipe; steps that don't type-check against the current shape
/// are skipped (the recipe space is generous on purpose).
fn build(
    cat: &Catalog,
    c1: ChronicleId,
    c2: ChronicleId,
    rel: &RelationRef,
    steps: &[Step],
) -> CaExpr {
    let base1 = CaExpr::chronicle(cat.chronicle(c1));
    let base2 = CaExpr::chronicle(cat.chronicle(c2));
    let mut expr = base1.clone();
    for step in steps {
        expr = match step {
            Step::Select {
                attr,
                op,
                threshold,
            } => {
                // Pick a numeric attribute that exists in the current
                // schema: k or v of the *original* names if still present,
                // else fall back to position 1.
                let name = if *attr == 0 { "k" } else { "v" };
                let Ok(pos) = expr.schema().position(name) else {
                    continue;
                };
                let op = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ][*op as usize % 6];
                let value = if name == "k" {
                    Value::Int(*threshold as i64)
                } else {
                    Value::Float(*threshold as f64)
                };
                let pred = Predicate::atom(pos, op, chronicle_algebra::Operand::Const(value));
                match expr.clone().select(pred) {
                    Ok(e) => e,
                    Err(_) => continue,
                }
            }
            Step::ProjectSwap => {
                // Keep SN plus every other column, reversed — an
                // order-shuffling projection.
                let sn = expr.seq_pos();
                let mut cols: Vec<usize> =
                    (0..expr.schema().arity()).filter(|&i| i != sn).collect();
                cols.reverse();
                cols.insert(0, sn);
                match expr.clone().project_cols(cols) {
                    Ok(e) => e,
                    Err(_) => continue,
                }
            }
            Step::UnionOther => {
                if expr.schema().same_type(base1.schema()) {
                    expr.clone().union(base2.clone()).unwrap()
                } else {
                    continue;
                }
            }
            Step::DiffOther => {
                if expr.schema().same_type(base1.schema()) {
                    expr.clone().diff(base2.clone()).unwrap()
                } else {
                    continue;
                }
            }
            Step::JoinSeqSelf => {
                if expr.schema().arity() <= 3 {
                    match expr.clone().join_seq(base2.clone()) {
                        Ok(e) => e,
                        Err(_) => continue,
                    }
                } else {
                    continue;
                }
            }
            Step::KeyJoin => {
                if expr.schema().position("k").is_ok() && expr.schema().arity() <= 5 {
                    match expr.clone().join_rel_key(rel.clone(), &["k"]) {
                        Ok(e) => e,
                        Err(_) => continue,
                    }
                } else {
                    continue;
                }
            }
            Step::Product => {
                if expr.schema().arity() <= 5 {
                    match expr.clone().product(rel.clone()) {
                        Ok(e) => e,
                        Err(_) => continue,
                    }
                } else {
                    continue;
                }
            }
        };
    }
    expr
}

fn populate(cat: &mut Catalog, c1: ChronicleId, c2: ChronicleId) {
    let mut seq = 0u64;
    for i in 0..16i64 {
        seq += 1;
        let target = if i % 2 == 0 { c1 } else { c2 };
        cat.append_at(
            target,
            SeqNo(seq),
            Chronon(seq as i64),
            &[tuple![SeqNo(seq), i % 5, (i % 7) as f64]],
        )
        .unwrap();
    }
}

prop_test! {
    fn pushdown_preserves_semantics(cases = 128, seed = 0x5E1EC7;
        steps in vec_of(step_gen(), 1..8),
    ) {
        let (mut cat, c1, c2, rel) = setup();
        populate(&mut cat, c1, c2);
        let expr = build(&cat, c1, c2, &rel, &steps);
        let opt = optimize(&expr).unwrap();

        // Full-evaluation equivalence (multisets).
        prop_assert_eq!(
            canon(eval_ca(&cat, &expr).unwrap()),
            canon(eval_ca(&cat, &opt).unwrap()),
            "eval diverged for {} => {}", expr, opt
        );

        // Delta equivalence for appends to either base chronicle.
        let engine = DeltaEngine::new(&cat);
        for (target, seq) in [(c1, 100u64), (c2, 101u64)] {
            let batch = DeltaBatch {
                chronicle: target,
                seq: SeqNo(seq),
                tuples: vec![
                    tuple![SeqNo(seq), 2i64, 3.0f64],
                    tuple![SeqNo(seq), 4i64, 6.0f64],
                ],
            };
            let mut w1 = WorkCounter::default();
            let mut w2 = WorkCounter::default();
            let d1 = canon(engine.delta_ca(&expr, &batch, &mut w1).unwrap());
            let d2 = canon(engine.delta_ca(&opt, &batch, &mut w2).unwrap());
            prop_assert_eq!(d1, d2, "delta diverged for {} => {}", expr, opt);
        }

        // Structural invariants.
        prop_assert_eq!(expr.fragment(), opt.fragment());
        prop_assert_eq!(expr.cost_model().joins, opt.cost_model().joins);
        let guards_before: usize = expr.base_guards().iter().map(|(_, g)| g.len()).sum();
        let guards_after: usize = opt.base_guards().iter().map(|(_, g)| g.len()).sum();
        prop_assert!(
            guards_after >= guards_before,
            "pushdown lost guards: {} -> {}", guards_before, guards_after
        );

        // Idempotence.
        let twice = optimize(&opt).unwrap();
        prop_assert_eq!(opt.to_string(), twice.to_string());
    }
}
