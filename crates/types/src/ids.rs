//! Identifier newtypes for catalog objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a chronicle in the catalog.
    ChronicleId,
    "chronicle:"
);
id_type!(
    /// Identifies a relation in the catalog.
    RelationId,
    "relation:"
);
id_type!(
    /// Identifies a persistent view.
    ViewId,
    "view:"
);
id_type!(
    /// Identifies a chronicle group — the set of chronicles sharing one
    /// sequence-number domain (paper §4).
    GroupId,
    "group:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ChronicleId(1).to_string(), "chronicle:1");
        assert_eq!(RelationId(2).to_string(), "relation:2");
        assert_eq!(ViewId(3).to_string(), "view:3");
        assert_eq!(GroupId(4).to_string(), "group:4");
    }

    #[test]
    fn ids_are_distinct_types_but_orderable() {
        assert!(ChronicleId(1) < ChronicleId(2));
        assert_eq!(ViewId::from(7u32), ViewId(7));
    }
}
