//! Foundational types for the chronicle data model.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Value`] — the dynamically typed cell value stored in tuples,
//! * [`Tuple`] — an immutable, cheaply clonable row,
//! * [`Schema`] / [`Attribute`] / [`AttrType`] — typed relation and
//!   chronicle schemas, including which attribute (if any) is the
//!   *sequencing attribute* of a chronicle,
//! * [`SeqNo`] and [`Chronon`] — sequence numbers drawn from an infinite
//!   ordered domain and the temporal instants associated with them
//!   (paper §2.1),
//! * identifier newtypes for chronicles, relations, views and chronicle
//!   groups,
//! * [`ChronicleError`] — the typed error used across the workspace.
//!
//! The chronicle data model is from:
//! H. V. Jagadish, I. S. Mumick, A. Silberschatz,
//! *View Maintenance Issues for the Chronicle Data Model*, PODS 1995.

#![warn(missing_docs)]

pub mod codec;
mod error;
mod ids;
mod schema;
mod seq;
mod tuple;
mod value;

pub use error::{ChronicleError, Result};
pub use ids::{ChronicleId, GroupId, RelationId, ViewId};
pub use schema::{AttrType, Attribute, Schema};
pub use seq::{Chronon, SeqNo};
pub use tuple::{Tuple, TupleBuilder};
pub use value::Value;
