//! Immutable tuples.

use std::fmt;
use std::sync::Arc;

use crate::error::{ChronicleError, Result};
use crate::schema::Schema;
use crate::seq::SeqNo;
use crate::value::Value;

/// An immutable row. `Arc<[Value]>` makes clones O(1), which matters because
/// delta propagation moves the same tuples through many operators and views.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// The sequence number stored at `seq_pos`, or an error if that cell is
    /// not a sequence number.
    pub fn seq_at(&self, seq_pos: usize) -> Result<SeqNo> {
        self.0[seq_pos]
            .as_seq()
            .ok_or_else(|| ChronicleError::TypeMismatch {
                context: "sequencing attribute".into(),
                left: format!("{:?}", self.0[seq_pos]),
                right: "Seq".into(),
            })
    }

    /// Project onto `positions`, producing a new tuple.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate with `other`.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }

    /// Concatenate with a *slice* of values (used by joins that drop the
    /// right-hand sequencing attribute).
    pub fn concat_values(&self, other: &[Value]) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(other);
        Tuple(v.into())
    }

    /// Check that this tuple conforms to `schema` (arity and per-attribute
    /// types, NULL allowed everywhere except the sequencing attribute).
    pub fn check_against(&self, schema: &Schema) -> Result<()> {
        if self.arity() != schema.arity() {
            return Err(ChronicleError::ArityMismatch {
                expected: schema.arity(),
                found: self.arity(),
            });
        }
        for (i, v) in self.0.iter().enumerate() {
            let attr = schema.attr(i);
            if !v.conforms_to(attr.ty) {
                return Err(ChronicleError::TypeMismatch {
                    context: format!("attribute `{}`", attr.name),
                    left: format!("{v:?}"),
                    right: attr.ty.to_string(),
                });
            }
            if Some(i) == schema.seq_attr() && v.is_null() {
                return Err(ChronicleError::TypeMismatch {
                    context: "sequencing attribute".into(),
                    left: "NULL".into(),
                    right: "Seq".into(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience builder: `TupleBuilder::new().seq(5).int(42).str("x").build()`.
#[derive(Debug, Default)]
pub struct TupleBuilder(Vec<Value>);

impl TupleBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sequence number.
    #[must_use]
    pub fn seq(mut self, s: impl Into<SeqNo>) -> Self {
        self.0.push(Value::Seq(s.into()));
        self
    }

    /// Append an integer.
    #[must_use]
    pub fn int(mut self, v: i64) -> Self {
        self.0.push(Value::Int(v));
        self
    }

    /// Append a float.
    #[must_use]
    pub fn float(mut self, v: f64) -> Self {
        self.0.push(Value::Float(v));
        self
    }

    /// Append a boolean.
    #[must_use]
    pub fn bool(mut self, v: bool) -> Self {
        self.0.push(Value::Bool(v));
        self
    }

    /// Append a string.
    #[must_use]
    pub fn str(mut self, v: impl AsRef<str>) -> Self {
        self.0.push(Value::str(v));
        self
    }

    /// Append a NULL.
    #[must_use]
    pub fn null(mut self) -> Self {
        self.0.push(Value::Null);
        self
    }

    /// Append any value.
    #[must_use]
    pub fn value(mut self, v: Value) -> Self {
        self.0.push(v);
        self
    }

    /// Finish.
    pub fn build(self) -> Tuple {
        Tuple::new(self.0)
    }
}

/// Shorthand macro for building tuples in tests and examples:
/// `tuple![Value::Seq(SeqNo(1)), 42, "abc", 1.5]` — each element is anything
/// `Into<Value>`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Attribute};

    fn schema() -> Schema {
        Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
            ],
            "sn",
        )
        .unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let t = TupleBuilder::new().seq(3u64).int(7).float(1.5).build();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.seq_at(0).unwrap(), SeqNo(3));
        assert_eq!(t.get(1).as_int(), Some(7));
    }

    #[test]
    fn check_against_accepts_conforming() {
        let t = TupleBuilder::new().seq(1u64).int(7).float(2.0).build();
        assert!(t.check_against(&schema()).is_ok());
    }

    #[test]
    fn check_against_rejects_arity() {
        let t = TupleBuilder::new().seq(1u64).int(7).build();
        assert!(matches!(
            t.check_against(&schema()),
            Err(ChronicleError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn check_against_rejects_bad_type() {
        let t = TupleBuilder::new().seq(1u64).str("no").float(2.0).build();
        assert!(t.check_against(&schema()).is_err());
    }

    #[test]
    fn check_against_rejects_null_seq() {
        let t = TupleBuilder::new().null().int(7).float(2.0).build();
        assert!(t.check_against(&schema()).is_err());
    }

    #[test]
    fn int_widens_to_float_in_check() {
        let t = TupleBuilder::new().seq(1u64).int(7).int(2).build();
        assert!(t.check_against(&schema()).is_ok());
    }

    #[test]
    fn project_and_concat() {
        let t = TupleBuilder::new().seq(1u64).int(7).float(2.0).build();
        let p = t.project(&[2, 1]);
        assert_eq!(p.values(), &[Value::Float(2.0), Value::Int(7)]);
        let c = t.concat(&p);
        assert_eq!(c.arity(), 5);
        let cv = t.concat_values(&[Value::Int(9)]);
        assert_eq!(cv.arity(), 4);
        assert_eq!(cv.get(3).as_int(), Some(9));
    }

    #[test]
    fn seq_at_wrong_cell_errors() {
        let t = TupleBuilder::new().seq(1u64).int(7).float(2.0).build();
        assert!(t.seq_at(1).is_err());
    }

    #[test]
    fn tuple_macro() {
        let t = tuple![SeqNo(4), 42i64, "abc", 1.5f64, true];
        assert_eq!(t.arity(), 5);
        assert_eq!(t.seq_at(0).unwrap(), SeqNo(4));
        assert_eq!(t.get(2).as_str(), Some("abc"));
    }
}
