//! Sequence numbers and chronons.

use std::fmt;

/// A sequence number drawn from an infinite ordered domain (paper §2.1).
///
/// Every tuple appended to a chronicle carries a `SeqNo` strictly greater
/// than any sequence number already present in its *chronicle group*; the
/// numbers need not be dense, and several tuples appended together may share
/// one `SeqNo` (paper §4: "multiple tuples with the same sequence number can
/// be inserted simultaneously").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The smallest sequence number. No real tuple uses it; it serves as the
    /// "nothing seen yet" low-water mark.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number after `self`.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for SeqNo {
    fn from(v: u64) -> Self {
        SeqNo(v)
    }
}

/// A temporal instant associated with a sequence number (paper §2.1: "There
/// is a temporal instant (or chronon) associated with each sequence number").
///
/// Chronons are what calendars (§5.1) are defined over; the store keeps a
/// monotone `SeqNo → Chronon` mapping per chronicle group. We represent a
/// chronon as an integer tick (e.g. seconds or milliseconds since an epoch —
/// the unit is workload-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Chronon(pub i64);

impl Chronon {
    /// Chronon `n` ticks after this one.
    #[must_use]
    pub fn plus(self, ticks: i64) -> Chronon {
        Chronon(self.0 + ticks)
    }
}

impl fmt::Display for Chronon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<i64> for Chronon {
    fn from(v: i64) -> Self {
        Chronon(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_ordering_and_next() {
        assert!(SeqNo(1) < SeqNo(2));
        assert_eq!(SeqNo(1).next(), SeqNo(2));
        assert_eq!(SeqNo::ZERO.next(), SeqNo(1));
    }

    #[test]
    fn chronon_arithmetic() {
        assert_eq!(Chronon(10).plus(5), Chronon(15));
        assert_eq!(Chronon(10).plus(-20), Chronon(-10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SeqNo(3).to_string(), "#3");
        assert_eq!(Chronon(-4).to_string(), "t-4");
    }
}
