//! Typed errors for the chronicle workspace.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = ChronicleError> = std::result::Result<T, E>;

/// Every failure mode in the chronicle data model surfaces as one of these
/// variants; the library never panics on user input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChronicleError {
    /// A schema was malformed (duplicate names, stray SEQ attribute, ...).
    InvalidSchema(String),
    /// An attribute name did not resolve.
    UnknownAttribute {
        /// The name that failed to resolve.
        name: String,
        /// Where resolution was attempted.
        context: String,
    },
    /// A tuple's arity did not match its schema.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// Two values (or a value and a declared type) were incompatible.
    TypeMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Description of the left/actual side.
        left: String,
        /// Description of the right/expected side.
        right: String,
    },
    /// An append violated sequence-number monotonicity within a chronicle
    /// group (paper §2.3: inserts must carry a sequence number greater than
    /// every existing one in the group).
    NonMonotonicAppend {
        /// Highest sequence number already in the group.
        high_water: u64,
        /// Offending sequence number.
        attempted: u64,
    },
    /// A sliding-window insert landed in a bucket strictly older than the
    /// newest bucket already folded for its key. Bucket indices are signed
    /// offsets from the window anchor, so chronons before the anchor
    /// legitimately produce negative indices (§5.1); this variant keeps them
    /// signed instead of wrapping through `u64`.
    NonMonotonicBucket {
        /// Newest bucket index already present for the key.
        newest: i64,
        /// Offending (older) bucket index.
        attempted: i64,
    },
    /// A periodic-calendar interval index maps to a chronon outside the
    /// representable `i64` range (`anchor + idx·step` overflows). Surfaced
    /// as a typed error instead of wrapping in release / panicking in
    /// debug builds (§5.1).
    CalendarOutOfRange {
        /// The offending interval index.
        index: u64,
        /// Human-readable description of the overflowing bound.
        detail: String,
    },
    /// A relation update would have been *retroactive*: it changes versions
    /// already seen by some chronicle sequence number (paper §2.3 excludes
    /// these from the model).
    RetroactiveUpdate {
        /// Human-readable description of the offending update.
        detail: String,
    },
    /// An operation mixed chronicles from different chronicle groups
    /// (union/difference/SN-join are only defined within one group, §4).
    CrossGroupOperation {
        /// Description of the two groups involved.
        detail: String,
    },
    /// An expression fell outside the language fragment it was validated
    /// against (the Theorem 4.3 rejections and friends).
    NotInLanguage {
        /// The fragment that was required (e.g. "CA", "CA_join", "SCA_1").
        language: &'static str,
        /// Why the expression is outside it.
        reason: String,
    },
    /// A catalog object (chronicle/relation/view) was not found.
    NotFound {
        /// Kind of object ("chronicle", "relation", "view", "calendar").
        kind: &'static str,
        /// Name or id that failed to resolve.
        name: String,
    },
    /// A catalog object with this name already exists.
    AlreadyExists {
        /// Kind of object.
        kind: &'static str,
        /// The conflicting name.
        name: String,
    },
    /// A key constraint was violated (duplicate primary key on insert).
    KeyViolation {
        /// Description of the duplicate key.
        detail: String,
    },
    /// An operation needed the chronicle contents but the chronicle is not
    /// stored (or the needed prefix has been evicted from the retention
    /// window). SCA maintenance never hits this; baselines and window
    /// queries can.
    ChronicleNotStored {
        /// Which chronicle and what was needed.
        detail: String,
    },
    /// A parse error in the declarative view-definition language.
    Parse {
        /// Error message.
        message: String,
        /// Byte offset in the source text.
        offset: usize,
    },
    /// An aggregate was applied to an incompatible type (e.g. SUM over
    /// strings).
    BadAggregate {
        /// Description.
        detail: String,
    },
    /// Durable storage failed: an I/O error in the WAL/checkpoint layer, or
    /// an operation that requires a database opened with a durability
    /// directory (e.g. `checkpoint()` on an in-memory database).
    Durability {
        /// What failed and where.
        detail: String,
    },
    /// Durable state failed integrity validation: a CRC mismatch outside
    /// the torn tail, a gap in the log-sequence numbering, or an
    /// undecodable checkpoint. Recovery refuses to continue rather than
    /// silently dropping acknowledged data.
    Corruption {
        /// What failed validation.
        detail: String,
    },
    /// A request carried a stale leadership term: the sender is (or is
    /// talking to) a deposed leader. Fencing keeps a zombie ex-leader — or
    /// its WAL shipper — from diverging the replicated history; the caller
    /// should rediscover the current leader and retry there.
    Fenced {
        /// The term the rejected request carried.
        observed: u64,
        /// The rejecting node's current term.
        current: u64,
    },
    /// The server's admission budget is exhausted: the maintenance
    /// pipeline's bounded queue is full, and blocking the session thread
    /// would let one slow shard stall every connection. The request was
    /// *not* applied; retry after the hinted delay.
    Overloaded {
        /// Suggested client-side delay before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A request's read deadline elapsed before the reply arrived. The
    /// request may or may not have been applied — an idempotent retry
    /// (same session, same seq) is the safe way to find out.
    Timeout {
        /// What was being waited for.
        detail: String,
    },
    /// Internal invariant breakage — indicates a bug in this library, kept
    /// as an error instead of a panic so servers can shed the request.
    Internal(String),
}

impl fmt::Display for ChronicleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChronicleError::InvalidSchema(s) => write!(f, "invalid schema: {s}"),
            ChronicleError::UnknownAttribute { name, context } => {
                write!(f, "unknown attribute `{name}` in {context}")
            }
            ChronicleError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            ChronicleError::TypeMismatch {
                context,
                left,
                right,
            } => write!(f, "type mismatch in {context}: {left} vs {right}"),
            ChronicleError::NonMonotonicAppend {
                high_water,
                attempted,
            } => write!(
                f,
                "non-monotonic append: sequence number {attempted} is not greater than group high-water mark {high_water}"
            ),
            ChronicleError::NonMonotonicBucket { newest, attempted } => write!(
                f,
                "non-monotonic window insert: bucket {attempted} is older than the newest bucket {newest}"
            ),
            ChronicleError::CalendarOutOfRange { index, detail } => write!(
                f,
                "calendar interval {index} is out of chronon range: {detail}"
            ),
            ChronicleError::RetroactiveUpdate { detail } => {
                write!(f, "retroactive relation update rejected: {detail}")
            }
            ChronicleError::CrossGroupOperation { detail } => {
                write!(f, "operands belong to different chronicle groups: {detail}")
            }
            ChronicleError::NotInLanguage { language, reason } => {
                write!(f, "expression is not in {language}: {reason}")
            }
            ChronicleError::NotFound { kind, name } => write!(f, "{kind} `{name}` not found"),
            ChronicleError::AlreadyExists { kind, name } => {
                write!(f, "{kind} `{name}` already exists")
            }
            ChronicleError::KeyViolation { detail } => write!(f, "key violation: {detail}"),
            ChronicleError::ChronicleNotStored { detail } => {
                write!(f, "chronicle contents unavailable: {detail}")
            }
            ChronicleError::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            ChronicleError::BadAggregate { detail } => write!(f, "bad aggregate: {detail}"),
            ChronicleError::Durability { detail } => {
                write!(f, "durable storage failure: {detail}")
            }
            ChronicleError::Corruption { detail } => {
                write!(f, "durable state corrupted: {detail}")
            }
            ChronicleError::Fenced { observed, current } => write!(
                f,
                "fenced: request carried stale term {observed}, current term is {current}"
            ),
            ChronicleError::Overloaded { retry_after_ms } => write!(
                f,
                "overloaded: admission queue is full, retry after {retry_after_ms} ms"
            ),
            ChronicleError::Timeout { detail } => {
                write!(f, "timed out waiting for {detail}")
            }
            ChronicleError::Internal(s) => write!(f, "internal invariant violated: {s}"),
        }
    }
}

impl std::error::Error for ChronicleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ChronicleError::NonMonotonicAppend {
            high_water: 10,
            attempted: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('7'));

        let e = ChronicleError::NotInLanguage {
            language: "CA",
            reason: "cross product between two chronicles".into(),
        };
        assert!(e.to_string().contains("CA"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ChronicleError::Internal("x".into()));
    }
}
