//! Schemas for relations and chronicles.

use std::fmt;
use std::sync::Arc;

use crate::error::{ChronicleError, Result};

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Sequence number. Exactly the sequencing attribute of a chronicle has
    /// this type; plain relations never do.
    Seq,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "BOOL",
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Str => "STRING",
            AttrType::Seq => "SEQ",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: Arc<str>,
    /// Declared type.
    pub ty: AttrType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl AsRef<str>, ty: AttrType) -> Self {
        Attribute {
            name: Arc::from(name.as_ref()),
            ty,
        }
    }
}

/// The schema of a relation or chronicle.
///
/// A chronicle schema is a relation schema with a distinguished *sequencing
/// attribute* of type [`AttrType::Seq`] (paper §2.1: "A chronicle can be
/// represented by a relation with an extra sequencing attribute"). The
/// schema also records an optional *key*: the attribute positions whose
/// values uniquely identify a tuple. Keys drive the CA⋈ key-join guarantee
/// ("at most a constant number of relation tuples join with each chronicle
/// tuple", Def. 4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Arc<[Attribute]>,
    /// Position of the sequencing attribute, if this is a chronicle schema.
    seq_attr: Option<usize>,
    /// Positions forming the primary key, if declared.
    key: Option<Arc<[usize]>>,
}

impl Schema {
    /// Build a plain relation schema (no sequencing attribute, no key).
    pub fn relation(attrs: Vec<Attribute>) -> Result<Self> {
        Self::build(attrs, None, None)
    }

    /// Build a relation schema with a primary key given by attribute names.
    pub fn relation_with_key(attrs: Vec<Attribute>, key: &[&str]) -> Result<Self> {
        let positions = Self::resolve_names(&attrs, key)?;
        Self::build(attrs, None, Some(positions))
    }

    /// Build a chronicle schema; `seq_name` names the sequencing attribute,
    /// which must exist and have type [`AttrType::Seq`].
    pub fn chronicle(attrs: Vec<Attribute>, seq_name: &str) -> Result<Self> {
        let pos = attrs
            .iter()
            .position(|a| a.name.as_ref() == seq_name)
            .ok_or_else(|| ChronicleError::UnknownAttribute {
                name: seq_name.into(),
                context: "chronicle schema".into(),
            })?;
        if attrs[pos].ty != AttrType::Seq {
            return Err(ChronicleError::InvalidSchema(format!(
                "sequencing attribute `{seq_name}` must have type SEQ, found {}",
                attrs[pos].ty
            )));
        }
        Self::build(attrs, Some(pos), None)
    }

    fn build(
        attrs: Vec<Attribute>,
        seq_attr: Option<usize>,
        key: Option<Vec<usize>>,
    ) -> Result<Self> {
        if attrs.is_empty() {
            return Err(ChronicleError::InvalidSchema(
                "schema has no attributes".into(),
            ));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(ChronicleError::InvalidSchema(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
            if a.ty == AttrType::Seq && seq_attr != Some(i) {
                return Err(ChronicleError::InvalidSchema(format!(
                    "attribute `{}` has type SEQ but is not the sequencing attribute",
                    a.name
                )));
            }
        }
        Ok(Schema {
            attrs: attrs.into(),
            seq_attr,
            key: key.map(Into::into),
        })
    }

    fn resolve_names(attrs: &[Attribute], names: &[&str]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                attrs
                    .iter()
                    .position(|a| a.name.as_ref() == *n)
                    .ok_or_else(|| ChronicleError::UnknownAttribute {
                        name: (*n).into(),
                        context: "key declaration".into(),
                    })
            })
            .collect()
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of the sequencing attribute, if this is a chronicle schema.
    pub fn seq_attr(&self) -> Option<usize> {
        self.seq_attr
    }

    /// True iff this schema has a sequencing attribute.
    pub fn is_chronicle(&self) -> bool {
        self.seq_attr.is_some()
    }

    /// Primary-key positions, if a key is declared.
    pub fn key(&self) -> Option<&[usize]> {
        self.key.as_deref()
    }

    /// Position of attribute `name`, or a typed error.
    pub fn position(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name.as_ref() == name)
            .ok_or_else(|| ChronicleError::UnknownAttribute {
                name: name.into(),
                context: "schema lookup".into(),
            })
    }

    /// The attribute at position `idx`.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Project the schema onto `positions` (in the given order). If the
    /// sequencing attribute is among them the result is again a chronicle
    /// schema; otherwise it is a plain relation schema (the SCA
    /// summarization case, Def. 4.3).
    pub fn project(&self, positions: &[usize]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(positions.len());
        let mut seq = None;
        for (out_idx, &p) in positions.iter().enumerate() {
            if p >= self.attrs.len() {
                return Err(ChronicleError::InvalidSchema(format!(
                    "projection position {p} out of range (arity {})",
                    self.attrs.len()
                )));
            }
            if Some(p) == self.seq_attr {
                seq = Some(out_idx);
            }
            attrs.push(self.attrs[p].clone());
        }
        Schema::build(attrs, seq, None)
    }

    /// Concatenate `self` with `other` (cross product / join result),
    /// renaming collisions in `other` with the `rhs_prefix`. The sequencing
    /// attribute of `self` (if any) remains the sequencing attribute; any
    /// sequencing attribute in `other` must have been projected away by the
    /// caller (the SN-equijoin drops one of the two SN columns, Def. 4.1).
    pub fn concat(&self, other: &Schema, rhs_prefix: &str) -> Result<Schema> {
        let mut attrs: Vec<Attribute> = self.attrs.to_vec();
        for a in other.attrs.iter() {
            if other.seq_attr.is_some() && other.attr(other.seq_attr.unwrap()).name == a.name {
                return Err(ChronicleError::InvalidSchema(
                    "right operand of concat still carries its sequencing attribute".into(),
                ));
            }
            let mut name: Arc<str> = if attrs.iter().any(|b| b.name == a.name) {
                Arc::from(format!("{rhs_prefix}.{}", a.name).as_str())
            } else {
                a.name.clone()
            };
            // Repeated joins against the same relation can collide on the
            // prefixed name too; uniquify with a counter.
            let mut k = 2;
            while attrs.iter().any(|b| b.name == name) {
                name = Arc::from(format!("{rhs_prefix}.{}.{k}", a.name).as_str());
                k += 1;
            }
            attrs.push(Attribute { name, ty: a.ty });
        }
        Schema::build(attrs, self.seq_attr, None)
    }

    /// True iff the attribute lists (names and types) of the two schemas are
    /// identical — the "same type" condition for union/difference.
    pub fn same_type(&self, other: &Schema) -> bool {
        self.attrs == other.attrs && self.seq_attr == other.seq_attr
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
            if Some(i) == self.seq_attr {
                write!(f, " [SN]")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_schema() -> Schema {
        Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("minutes", AttrType::Float),
            ],
            "sn",
        )
        .unwrap()
    }

    #[test]
    fn chronicle_schema_tracks_seq_attr() {
        let s = call_schema();
        assert!(s.is_chronicle());
        assert_eq!(s.seq_attr(), Some(0));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("minutes").unwrap(), 2);
    }

    #[test]
    fn seq_attr_must_have_seq_type() {
        let err = Schema::chronicle(vec![Attribute::new("sn", AttrType::Int)], "sn").unwrap_err();
        assert!(matches!(err, ChronicleError::InvalidSchema(_)));
    }

    #[test]
    fn stray_seq_typed_attribute_rejected() {
        let err = Schema::relation(vec![Attribute::new("x", AttrType::Seq)]).unwrap_err();
        assert!(matches!(err, ChronicleError::InvalidSchema(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::relation(vec![
            Attribute::new("a", AttrType::Int),
            Attribute::new("a", AttrType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, ChronicleError::InvalidSchema(_)));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::relation(vec![]).is_err());
    }

    #[test]
    fn projection_keeps_or_drops_seq() {
        let s = call_schema();
        let with_sn = s.project(&[0, 2]).unwrap();
        assert!(with_sn.is_chronicle());
        assert_eq!(with_sn.seq_attr(), Some(0));

        let without_sn = s.project(&[1, 2]).unwrap();
        assert!(!without_sn.is_chronicle());
    }

    #[test]
    fn projection_out_of_range_errors() {
        assert!(call_schema().project(&[9]).is_err());
    }

    #[test]
    fn concat_renames_collisions() {
        let c = call_schema();
        let r = Schema::relation_with_key(
            vec![
                Attribute::new("caller", AttrType::Int),
                Attribute::new("name", AttrType::Str),
            ],
            &["caller"],
        )
        .unwrap();
        let j = c.concat(&r, "cust").unwrap();
        assert_eq!(j.arity(), 5);
        assert_eq!(j.attr(3).name.as_ref(), "cust.caller");
        assert!(j.is_chronicle());
        assert_eq!(j.seq_attr(), Some(0));
    }

    #[test]
    fn key_positions_resolved() {
        let r = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("name", AttrType::Str),
            ],
            &["acct"],
        )
        .unwrap();
        assert_eq!(r.key(), Some(&[0usize][..]));
    }

    #[test]
    fn same_type_checks_names_and_types() {
        let a = call_schema();
        let b = call_schema();
        assert!(a.same_type(&b));
        let c = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("caller", AttrType::Int),
                Attribute::new("mins", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        assert!(!a.same_type(&c));
    }
}
