//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::ChronicleError;
use crate::schema::AttrType;
use crate::seq::SeqNo;

/// A single attribute value inside a [`crate::Tuple`].
///
/// Values carry their own runtime type; the [`crate::Schema`] layer checks
/// that tuples conform to the declared [`AttrType`]s before they enter a
/// relation or chronicle.
///
/// `Value` implements a *total* order (`Ord`) so that values can be used as
/// B-tree index keys and sort keys: `Float` uses IEEE total ordering via
/// `f64::total_cmp`, and values of different runtime types order by a fixed
/// type rank. Predicate evaluation (`A θ B` in chronicle-algebra selections)
/// goes through [`Value::sql_cmp`], which only compares *compatible* types
/// and reports a type error otherwise.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares equal to itself under `Ord` (needed for indexing)
    /// but is incomparable under [`Value::sql_cmp`].
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float, totally ordered via `total_cmp`.
    Float(f64),
    /// Interned UTF-8 string. `Arc<str>` keeps tuple clones cheap.
    Str(Arc<str>),
    /// A sequence number (the sequencing attribute of a chronicle tuple).
    Seq(SeqNo),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value, or `None` for NULL (which inhabits
    /// every type).
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(AttrType::Bool),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::Str),
            Value::Seq(_) => Some(AttrType::Seq),
        }
    }

    /// Whether this value conforms to `ty` (NULL conforms to everything).
    pub fn conforms_to(&self, ty: AttrType) -> bool {
        match self.attr_type() {
            None => true,
            Some(t) => t == ty || (t == AttrType::Int && ty == AttrType::Float),
        }
    }

    /// True iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float inside, widening `Int` to `Float` as SQL does.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence number inside, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<SeqNo> {
        match self {
            Value::Seq(s) => Some(*s),
            _ => None,
        }
    }

    /// Numeric type rank used to totally order heterogeneous values.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
        }
    }

    /// SQL-style comparison: only values of compatible types compare;
    /// NULL never compares. `Int` and `Float` compare numerically.
    ///
    /// Returns `Err` on a genuine type mismatch (e.g. `Int` vs `Str`), so
    /// that predicate type errors surface instead of silently selecting
    /// nothing.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>, ChronicleError> {
        use Value::*;
        Ok(match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Seq(a), Seq(b)) => Some(a.cmp(b)),
            (a, b) => {
                return Err(ChronicleError::TypeMismatch {
                    context: "comparison".into(),
                    left: format!("{a:?}"),
                    right: format!("{b:?}"),
                })
            }
        })
    }

    /// Canonical 64-bit payload used for hashing and total ordering of the
    /// numeric tower (so that `Int(2)` and `Float(2.0)` hash and order the
    /// same way, as they compare equal).
    fn numeric_key(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            // Normalize -0.0 to 0.0 so Ord, Eq and Hash agree that the two
            // zeros are the same value.
            Value::Float(f) => Some(if *f == 0.0 { 0.0 } else { *f }),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Seq(a), Seq(b)) => a.cmp(b),
            (a, b) => match (a.numeric_key(), b.numeric_key()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float hash through the same key so Int(2) == Float(2.0)
            // implies equal hashes.
            Value::Int(_) | Value::Float(_) => {
                state.write_u8(2);
                let f = self.numeric_key().expect("numeric");
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let f = if f == 0.0 { 0.0 } else { f };
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Seq(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Seq(s) => write!(f, "#{}", s.0),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<SeqNo> for Value {
    fn from(v: SeqNo) -> Self {
        Value::Seq(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Float(-1.5),
            Value::Int(0),
            Value::Float(3.25),
            Value::str("abc"),
            Value::str("abd"),
            Value::Seq(SeqNo(1)),
        ];
        for a in &vals {
            assert_eq!(a.cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn sql_cmp_null_is_incomparable() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn sql_cmp_numeric_tower() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)).unwrap(),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sql_cmp_type_mismatch_errors() {
        assert!(Value::Int(1).sql_cmp(&Value::str("x")).is_err());
        assert!(Value::Bool(true).sql_cmp(&Value::Int(1)).is_err());
    }

    #[test]
    fn conforms_allows_int_widening() {
        assert!(Value::Int(1).conforms_to(AttrType::Float));
        assert!(!Value::Float(1.0).conforms_to(AttrType::Int));
        assert!(Value::Null.conforms_to(AttrType::Str));
    }

    #[test]
    fn display_round_trips_kinds() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Seq(SeqNo(7)).to_string(), "#7");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Seq(SeqNo(9)).as_seq(), Some(SeqNo(9)));
        assert_eq!(Value::str("s").as_int(), None);
    }
}
