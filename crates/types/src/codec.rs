//! A dependency-free binary codec for the foundational types.
//!
//! This replaces the `serde` derives the types crate used to carry: every
//! type that previously derived `Serialize`/`Deserialize` (values, tuples,
//! schemas, sequence numbers, chronons, identifiers) now has explicit
//! encode/decode methods on [`Writer`] / [`Reader`]. The format is the
//! length-prefixed tagged encoding pioneered by the view-snapshot codec in
//! `chronicle-views`, which now builds on this module for the base types
//! and adds its own extension methods for algebra state.
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns;
//! strings are UTF-8 with a u32 length prefix; enums are u8-tagged. The
//! codec detects truncation and unknown tags and reports them as
//! [`ChronicleError::Internal`], never panicking on malformed input.

use std::sync::Arc;

use crate::error::{ChronicleError, Result};
use crate::ids::{ChronicleId, GroupId, RelationId, ViewId};
use crate::schema::{AttrType, Attribute, Schema};
use crate::seq::{Chronon, SeqNo};
use crate::tuple::Tuple;
use crate::value::Value;

/// Byte-stream writer.
#[derive(Debug, Default)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Write a u8.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Write a u32 (LE).
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a u64 (LE).
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an i64 (LE).
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 (LE bits).
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed raw byte blob (nested encodings, e.g. a view
    /// snapshot embedded in a checkpoint).
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }

    /// Write a sequence number.
    pub fn seq_no(&mut self, s: SeqNo) {
        self.u64(s.0);
    }

    /// Write a chronon.
    pub fn chronon(&mut self, c: Chronon) {
        self.i64(c.0);
    }

    /// Write a value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Seq(s) => {
                self.u8(5);
                self.u64(s.0);
            }
        }
    }

    /// Write an optional value.
    pub fn opt_value(&mut self, v: &Option<Value>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.value(v);
            }
        }
    }

    /// Write a tuple.
    pub fn tuple(&mut self, t: &Tuple) {
        self.u32(t.arity() as u32);
        for v in t.values() {
            self.value(v);
        }
    }

    /// Write an attribute type.
    pub fn attr_type(&mut self, ty: AttrType) {
        self.u8(match ty {
            AttrType::Bool => 0,
            AttrType::Int => 1,
            AttrType::Float => 2,
            AttrType::Str => 3,
            AttrType::Seq => 4,
        });
    }

    /// Write an attribute (name + type).
    pub fn attribute(&mut self, a: &Attribute) {
        self.str(&a.name);
        self.attr_type(a.ty);
    }

    /// Write a schema: attributes, sequencing position, key positions.
    pub fn schema(&mut self, s: &Schema) {
        self.u32(s.arity() as u32);
        for a in s.attrs() {
            self.attribute(a);
        }
        match s.seq_attr() {
            None => self.u8(0),
            Some(p) => {
                self.u8(1);
                self.u32(p as u32);
            }
        }
        match s.key() {
            None => self.u8(0),
            Some(key) => {
                self.u8(1);
                self.u32(key.len() as u32);
                for &p in key {
                    self.u32(p as u32);
                }
            }
        }
    }

    /// Write a catalog identifier (chronicle/relation/view/group all share
    /// the u32 representation).
    pub fn chronicle_id(&mut self, id: ChronicleId) {
        self.u32(id.0);
    }

    /// Write a relation identifier.
    pub fn relation_id(&mut self, id: RelationId) {
        self.u32(id.0);
    }

    /// Write a view identifier.
    pub fn view_id(&mut self, id: ViewId) {
        self.u32(id.0);
    }

    /// Write a group identifier.
    pub fn group_id(&mut self, id: GroupId) {
        self.u32(id.0);
    }
}

/// Byte-stream reader.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True iff all bytes were consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Read a u32 length prefix claiming `n` items of at least
    /// `min_item_bytes` each, and reject any claim the remaining input
    /// cannot possibly satisfy — *before* an allocation is sized from it.
    /// A rotted length byte can otherwise demand a multi-GB `Vec` and
    /// abort recovery instead of failing the frame.
    pub fn len_prefix(&mut self, what: &str, min_item_bytes: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_item_bytes.max(1));
        if need > self.remaining() {
            return Err(ChronicleError::Corruption {
                detail: format!(
                    "encoded {what} claims {n} items (at least {need} bytes) \
                     but only {} bytes remain",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ChronicleError::Internal(format!(
                "encoded data truncated at byte {}",
                self.pos
            ))),
        }
    }

    /// Read a u8.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.len_prefix("string", 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ChronicleError::Internal("encoded string is invalid UTF-8".into()))
    }

    /// Read a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.len_prefix("byte blob", 1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a sequence number.
    pub fn seq_no(&mut self) -> Result<SeqNo> {
        Ok(SeqNo(self.u64()?))
    }

    /// Read a chronon.
    pub fn chronon(&mut self) -> Result<Chronon> {
        Ok(Chronon(self.i64()?))
    }

    /// Read a value.
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Str(Arc::from(self.str()?.as_str())),
            5 => Value::Seq(SeqNo(self.u64()?)),
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown value tag {t} in encoded data"
                )))
            }
        })
    }

    /// Read an optional value.
    pub fn opt_value(&mut self) -> Result<Option<Value>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.value()?),
        })
    }

    /// Read a tuple.
    pub fn tuple(&mut self) -> Result<Tuple> {
        // Every encoded value is at least one tag byte.
        let n = self.len_prefix("tuple", 1)?;
        let mut vals = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            vals.push(self.value()?);
        }
        Ok(Tuple::new(vals))
    }

    /// Read an attribute type.
    pub fn attr_type(&mut self) -> Result<AttrType> {
        Ok(match self.u8()? {
            0 => AttrType::Bool,
            1 => AttrType::Int,
            2 => AttrType::Float,
            3 => AttrType::Str,
            4 => AttrType::Seq,
            t => {
                return Err(ChronicleError::Internal(format!(
                    "unknown attribute-type tag {t} in encoded data"
                )))
            }
        })
    }

    /// Read an attribute.
    pub fn attribute(&mut self) -> Result<Attribute> {
        let name = self.str()?;
        let ty = self.attr_type()?;
        Ok(Attribute::new(name, ty))
    }

    /// Read a schema. Re-validates through the public constructors, so a
    /// corrupted or hand-crafted encoding cannot produce an invalid schema.
    pub fn schema(&mut self) -> Result<Schema> {
        // Every encoded attribute is a u32 name length + a type tag.
        let arity = self.len_prefix("schema", 5)?;
        let mut attrs = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            attrs.push(self.attribute()?);
        }
        let seq_attr = match self.u8()? {
            0 => None,
            _ => Some(self.u32()? as usize),
        };
        let key = match self.u8()? {
            0 => None,
            _ => {
                let n = self.len_prefix("schema key", 4)?;
                let mut ps = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ps.push(self.u32()? as usize);
                }
                Some(ps)
            }
        };
        match (seq_attr, key) {
            (Some(p), None) => {
                let name = attrs.get(p).map(|a| a.name.to_string()).ok_or_else(|| {
                    ChronicleError::Internal(format!(
                        "sequencing position {p} out of range in encoded schema"
                    ))
                })?;
                Schema::chronicle(attrs, &name)
            }
            (None, Some(key)) => {
                let names: Vec<String> = key
                    .iter()
                    .map(|&p| {
                        attrs.get(p).map(|a| a.name.to_string()).ok_or_else(|| {
                            ChronicleError::Internal(format!(
                                "key position {p} out of range in encoded schema"
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                Schema::relation_with_key(attrs, &refs)
            }
            (None, None) => Schema::relation(attrs),
            (Some(_), Some(_)) => Err(ChronicleError::Internal(
                "encoded schema claims both a sequencing attribute and a key".into(),
            )),
        }
    }

    /// Read a chronicle identifier.
    pub fn chronicle_id(&mut self) -> Result<ChronicleId> {
        Ok(ChronicleId(self.u32()?))
    }

    /// Read a relation identifier.
    pub fn relation_id(&mut self) -> Result<RelationId> {
        Ok(RelationId(self.u32()?))
    }

    /// Read a view identifier.
    pub fn view_id(&mut self) -> Result<ViewId> {
        Ok(ViewId(self.u32()?))
    }

    /// Read a group identifier.
    pub fn group_id(&mut self) -> Result<GroupId> {
        Ok(GroupId(self.u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::str("héllo"),
            Value::Seq(SeqNo(9)),
        ];
        let mut w = Writer::new();
        for v in &vals {
            w.value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn tuples_round_trip() {
        let t = tuple![SeqNo(1), 42i64, "abc", 1.5f64];
        let mut w = Writer::new();
        w.tuple(&t);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).tuple().unwrap(), t);
    }

    #[test]
    fn schemas_round_trip() {
        let chronicle = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let keyed = Schema::relation_with_key(
            vec![
                Attribute::new("acct", AttrType::Int),
                Attribute::new("name", AttrType::Str),
            ],
            &["acct"],
        )
        .unwrap();
        let plain = Schema::relation(vec![Attribute::new("x", AttrType::Bool)]).unwrap();
        for s in [&chronicle, &keyed, &plain] {
            let mut w = Writer::new();
            w.schema(s);
            let bytes = w.into_bytes();
            let back = Reader::new(&bytes).schema().unwrap();
            assert_eq!(&back, s);
            assert_eq!(back.seq_attr(), s.seq_attr());
            assert_eq!(back.key(), s.key());
        }
    }

    #[test]
    fn ids_seqnos_chronons_round_trip() {
        let mut w = Writer::new();
        w.chronicle_id(ChronicleId(3));
        w.relation_id(RelationId(4));
        w.view_id(ViewId(5));
        w.group_id(GroupId(6));
        w.seq_no(SeqNo(77));
        w.chronon(Chronon(-12));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.chronicle_id().unwrap(), ChronicleId(3));
        assert_eq!(r.relation_id().unwrap(), RelationId(4));
        assert_eq!(r.view_id().unwrap(), ViewId(5));
        assert_eq!(r.group_id().unwrap(), GroupId(6));
        assert_eq!(r.seq_no().unwrap(), SeqNo(77));
        assert_eq!(r.chronon().unwrap(), Chronon(-12));
        assert!(r.at_end());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.value(&Value::str("long enough"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert!(r.value().is_err());
    }

    #[test]
    fn bad_tags_detected() {
        assert!(Reader::new(&[99]).value().is_err());
        assert!(Reader::new(&[7]).attr_type().is_err());
    }

    #[test]
    fn oversized_length_prefixes_rejected_before_allocating() {
        // A string claiming u32::MAX bytes with 4 bytes of payload.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u32(0xdead_beef);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).str(),
            Err(ChronicleError::Corruption { .. })
        ));
        assert!(matches!(
            Reader::new(&bytes).bytes(),
            Err(ChronicleError::Corruption { .. })
        ));
        // A tuple claiming ~4 billion values.
        assert!(matches!(
            Reader::new(&bytes).tuple(),
            Err(ChronicleError::Corruption { .. })
        ));
        // A schema claiming ~4 billion attributes.
        assert!(matches!(
            Reader::new(&bytes).schema(),
            Err(ChronicleError::Corruption { .. })
        ));
    }

    #[test]
    fn rotted_length_prefix_fails_the_record_not_the_process() {
        // Encode a real tuple, then flip each byte of its length prefix to
        // 0xff — simulated bit rot. Decoding must return an error (so the
        // enclosing frame is quarantined by salvage), never allocate the
        // claimed multi-GB buffer.
        let t = tuple![SeqNo(1), 42i64, "payload", 1.5f64];
        let mut w = Writer::new();
        w.tuple(&t);
        let good = w.into_bytes();
        for i in 0..4 {
            let mut rotted = good.clone();
            rotted[i] = 0xff;
            let mut r = Reader::new(&rotted);
            let decoded = r.tuple();
            assert!(
                decoded.is_err() || decoded.is_ok_and(|d| !r.at_end() || d != t),
                "rotting length byte {i} must not silently round-trip"
            );
        }
        // All four length bytes at once: claims ~4G values.
        let mut rotted = good;
        rotted[..4].copy_from_slice(&[0xff; 4]);
        assert!(matches!(
            Reader::new(&rotted).tuple(),
            Err(ChronicleError::Corruption { .. })
        ));
    }

    #[test]
    fn corrupt_schema_rejected_by_validation() {
        // A schema whose sequencing position points past the attributes.
        let mut w = Writer::new();
        w.u32(1);
        w.attribute(&Attribute::new("sn", AttrType::Seq));
        w.u8(1);
        w.u32(9); // bogus seq position
        w.u8(0);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).schema().is_err());
    }
}
