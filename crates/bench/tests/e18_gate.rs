//! Tier-1 gate over experiment E18 (skew-resilient sharding).
//!
//! Runs the scale-0 sweep and asserts the claims the full-scale
//! `BENCH_E18.json` artifact records, on deterministic work counters
//! rather than wall time:
//!
//! * at θ = 1.1 over the adversarially hashed group set, one online
//!   heavy-light rebalance cuts the critical-path (most-loaded shard)
//!   maintenance work by ≥ 3× versus static FNV placement;
//! * placement is execution-only — the measured phase's total work is
//!   bit-identical across modes and the final view snapshots byte-equal;
//! * at θ = 0 (uniform traffic) the classifier finds no heavies and the
//!   sweep degenerates to static placement exactly (ratio 1, zero moves).
//!
//! `CHRONICLE_MUTATE=static_placement` disables the classifier; verify.sh
//! runs this gate under that mutation and demands it fail, proving the
//! ratio assertion has teeth.

use chronicle_bench::experiments::e18_zipf_skew;
use chronicle_bench::harness::Figure;

fn at(fig: &Figure, series: &str, x: f64) -> f64 {
    fig.series(series)
        .unwrap_or_else(|| panic!("series `{series}` missing"))
        .points
        .iter()
        .find(|&&(px, _)| px == x)
        .unwrap_or_else(|| panic!("series `{series}` has no point at {x}"))
        .1
}

#[test]
fn e18_heavy_light_restores_the_skewed_critical_path() {
    let fig = e18_zipf_skew(0);

    // The adversarial skew case: static hashing funnels the Zipf head
    // onto one shard; heavy-light placement must win back >= 3x.
    let ratio = at(&fig, "skew resilience (x)", 1.1);
    assert!(
        ratio >= 3.0,
        "heavy-light placement must cut the theta=1.1 critical path >=3x \
         over static hashing (got {ratio:.2}x)"
    );
    assert!(
        at(&fig, "rebalance moves", 1.1) >= 1.0,
        "the theta=1.1 rebalance must actually relocate groups"
    );

    // Placement is execution-only: identical total work, identical views.
    for theta in [0.0, 1.1] {
        assert_eq!(
            at(&fig, "phase-2 total work (static hash)", theta),
            at(&fig, "phase-2 total work (heavy-light)", theta),
            "theta={theta}: total maintenance work must be bit-identical \
             across placement modes"
        );
    }
    assert!(
        fig.notes
            .iter()
            .any(|n| n.contains("identical across modes at every theta: true")),
        "view snapshots must be byte-equal across placement modes: {:?}",
        fig.notes
    );

    // Uniform traffic: no heavies, no moves, exactly static behavior.
    assert_eq!(
        at(&fig, "rebalance moves", 0.0),
        0.0,
        "uniform traffic must not trigger relocations"
    );
    assert_eq!(
        at(&fig, "skew resilience (x)", 0.0),
        1.0,
        "with no moves both modes run the identical execution"
    );
}
