//! Experiment harness for the chronicle-model reproduction.
//!
//! The paper (a PODS extended abstract) has no numbered tables or figures;
//! its quantitative content is the theorems. DESIGN.md §6 derives twelve
//! experiments E1–E12, one per theorem/claim, each a parameter sweep whose
//! measured curve must match the predicted shape. This crate implements
//! all of them once, and exposes them to two front-ends:
//!
//! * `cargo run -p chronicle-bench --release --bin experiments` — prints
//!   every derived figure as a text table (the source of EXPERIMENTS.md),
//! * `cargo bench -p chronicle-bench` — wall-time benches, one target per
//!   experiment, driven by the in-tree [`timer`] shim (no external
//!   benchmarking crate; the tier-1 verify runs fully offline).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod timer;
