//! Sweep measurement and table rendering.

use std::time::Instant;

/// One measured series: a named curve over a swept parameter.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (e.g. "SCA incremental").
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Growth factor between the first and last point (`y_last / y_first`),
    /// the scalar the shape assertions test.
    pub fn growth(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(&(_, y0)), Some(&(_, y1))) if y0 > 0.0 => y1 / y0,
            _ => f64::NAN,
        }
    }
}

/// A derived figure: a titled set of series over one swept parameter.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id and title (e.g. "E1 — maintenance vs chronicle size").
    pub title: String,
    /// The swept parameter's name.
    pub x_label: String,
    /// The measured quantity's name.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form notes (expected shape, paper reference).
    pub notes: Vec<String>,
}

impl Figure {
    /// An empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Find a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render as a fixed-width text table (markdown-compatible).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        // Header.
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        // Rows, keyed by the x values of the first series.
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            out.push_str(&format!("| {} |", fmt_num(*x)));
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => out.push_str(&format!(" {} |", fmt_num(y))),
                    None => out.push_str(" – |"),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("\n_{} vs {}._\n", self.y_label, self.x_label));
        out
    }
}

/// Human-friendly number formatting for tables.
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if a >= 10_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Time a closure over `iters` runs and return mean nanoseconds per run.
pub fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_growth() {
        let mut s = Series::new("x");
        s.push(1.0, 10.0);
        s.push(2.0, 40.0);
        assert_eq!(s.growth(), 4.0);
        assert!(Series::new("empty").growth().is_nan());
    }

    #[test]
    fn figure_render_is_markdown_table() {
        let mut f = Figure::new("E0 — demo", "n", "work");
        let mut a = Series::new("flat");
        a.push(10.0, 5.0);
        a.push(100.0, 5.0);
        f.series.push(a);
        f.note("expected flat");
        let out = f.render();
        assert!(out.contains("### E0 — demo"));
        assert!(out.contains("| n | flat |"));
        assert!(out.contains("> expected flat"));
        assert!(out.contains("| 10.00 | 5.00 |"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(2_500_000.0), "2.50M");
        assert_eq!(fmt_num(12_000.0), "12.0k");
        assert_eq!(fmt_num(250.0), "250");
        assert_eq!(fmt_num(2.5), "2.50");
        assert_eq!(fmt_num(0.25), "0.2500");
    }

    #[test]
    fn timing_positive() {
        let ns = time_per_iter(10, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}
