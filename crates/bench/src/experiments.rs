//! The twelve derived experiments E1–E12 (DESIGN.md §6).
//!
//! Each function builds its own database, runs its sweep, and returns one
//! or more [`Figure`]s. The `experiments` binary renders them; the
//! Criterion benches reuse the same builders with reduced parameter sets.
//! A `scale` argument (1 = full) shrinks sweeps for quick runs and tests.

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::{
    AggFunc, AggSpec, CaExpr, CmpOp, Predicate, RelationRef, ScaExpr, WorkCounter,
};
use chronicle_db::baseline::{NaiveRecomputeView, ProceduralSummary, StoredThetaJoinCount};
use chronicle_db::pipeline::{Pipeline, ShardedPipeline};
use chronicle_db::{shard_of_group, ChronicleDb, DurabilityOptions, FollowerDb, ShardedDb};
use chronicle_net::{ShipEvent, Shipper, WalSource, DEFAULT_CHUNK};
use chronicle_store::{Catalog, Retention};
use chronicle_testkit::{SeedableRng, SmallRng, TempDir, Zipf};
use chronicle_types::{AttrType, Attribute, ChronicleId, Chronon, Schema, SeqNo, Tuple, Value};
use chronicle_views::{
    AppendEvent, BatchDiscount, BatchMode, Calendar, Maintainer, PeriodicViewSet, RouteMode,
    SlidingWindow, TierSchedule,
};
use chronicle_workload::{AtmGen, CallGen, TradeGen};

use crate::harness::{time_per_iter, Figure, Series};

/// Standard call-record chronicle schema used by several experiments.
fn call_schema() -> Schema {
    Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .expect("static schema")
}

fn rate_schema() -> Schema {
    Schema::relation_with_key(
        vec![
            Attribute::new("acct", AttrType::Int),
            Attribute::new("rate", AttrType::Float),
        ],
        &["acct"],
    )
    .expect("static schema")
}

fn call_tuple(seq: u64, caller: i64, minutes: f64) -> Tuple {
    Tuple::new(vec![
        Value::Seq(SeqNo(seq)),
        Value::Int(caller),
        Value::Float(minutes),
    ])
}

/// Build a catalog with one call chronicle (given retention) and a rates
/// relation of `rel_size` rows.
fn call_catalog(retention: Retention, rel_size: i64) -> (Catalog, ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").expect("fresh catalog");
    let c = cat
        .create_chronicle("calls", g, call_schema(), retention)
        .expect("fresh catalog");
    let r = cat.create_relation("rates", rate_schema()).expect("fresh");
    for i in 0..rel_size {
        cat.relation_insert(
            r,
            g,
            Tuple::new(vec![Value::Int(i), Value::Float(0.01 * i as f64)]),
        )
        .expect("unique keys");
    }
    (cat, c, RelationRef::new(r, rate_schema(), "rates"))
}

// ====================================================================== E1

/// E1 — Proposition 3.1: per-append maintenance cost vs chronicle size.
/// Naive recomputation grows linearly with |C|; SCA maintenance is flat;
/// classical IVM-with-chronicle-access sits between (flat here because the
/// view is in CA — its pathology is E7's subject).
pub fn e1_chronicle_size(scale: u32) -> Figure {
    let sizes: Vec<usize> = match scale {
        0 => vec![100, 1_000],
        _ => vec![1_000, 10_000, 100_000, 300_000],
    };
    let mut fig = Figure::new(
        "E1 — per-append maintenance vs chronicle size |C| (Prop. 3.1)",
        "|C|",
        "mean cost per append",
    );
    fig.note("SCA view: SELECT acct, SUM(amount) GROUP BY acct over the atm chronicle.");
    fig.note("expected: naive recompute grows ~linearly in |C|; SCA flat and independent of |C|.");
    let mut sca_time = Series::new("SCA time (ns)");
    let mut naive_time = Series::new("naive recompute time (ns)");
    let mut sca_work = Series::new("SCA tuples touched");
    let mut naive_work = Series::new("naive tuples read");

    for &n in &sizes {
        // Incremental database: retention None — the chronicle is not even
        // stored.
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
            .expect("ddl");
        db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
            .expect("ddl");
        let mut gen = AtmGen::new(42, 512);
        for i in 0..n {
            let row = gen.next_row();
            db.append(
                "atm",
                Chronon(i as i64),
                &[vec![row[0].clone(), row[1].clone()]],
            )
            .expect("append");
        }
        let before = db.stats().clone();
        let probes = 200usize;
        for i in 0..probes {
            let row = gen.next_row();
            db.append(
                "atm",
                Chronon((n + i) as i64),
                &[vec![row[0].clone(), row[1].clone()]],
            )
            .expect("append");
        }
        let after = db.stats();
        let dt = (after.maintenance_nanos - before.maintenance_nanos) as f64 / probes as f64;
        let dw = (after.work.total() - before.work.total()) as f64 / probes as f64;
        sca_time.push(n as f64, dt);
        sca_work.push(n as f64, dw);

        // Naive database: must store everything and recompute per append.
        let mut cat = Catalog::new();
        let g = cat.create_group("g").expect("fresh");
        let atm_schema = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("acct", AttrType::Int),
                Attribute::new("amount", AttrType::Float),
            ],
            "sn",
        )
        .expect("static");
        let c = cat
            .create_chronicle("atm", g, atm_schema, Retention::All)
            .expect("fresh");
        let mut gen = AtmGen::new(42, 512);
        for i in 0..n {
            let row = gen.next_row();
            let seq = SeqNo(i as u64 + 1);
            cat.append_at(
                c,
                seq,
                Chronon(i as i64),
                &[Tuple::new(vec![
                    Value::Seq(seq),
                    row[0].clone(),
                    row[1].clone(),
                ])],
            )
            .expect("append");
        }
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["acct"],
            vec![AggSpec::new(AggFunc::Sum(2), "b")],
        )
        .expect("in language");
        let mut naive = NaiveRecomputeView::new(expr);
        // Measure a handful of refreshes (each O(|C|)).
        let refreshes = if n >= 100_000 { 3 } else { 10 };
        let t = time_per_iter(refreshes, || {
            naive.refresh(&cat).expect("stored");
        });
        naive_time.push(n as f64, t);
        naive_work.push(n as f64, naive.last_read as f64);
    }
    fig.series = vec![sca_time, naive_time, sca_work, naive_work];
    fig
}

// ====================================================================== E2

/// E2 — Theorem 4.2: delta size/work of CA expressions vs the number of
/// chronicle×relation products `j` and unions `u`. With a relation of size
/// R, a single appended tuple produces `(u·R)^j`-shaped deltas.
pub fn e2_ca_cost(scale: u32) -> Figure {
    let r_size: i64 = if scale == 0 { 3 } else { 4 };
    let mut fig = Figure::new(
        "E2 — CA delta cost vs (u, j) (Thm 4.2)",
        "j (products)",
        "delta tuples per 1-tuple append",
    );
    fig.note(format!("relation size R = {r_size}; one tuple appended."));
    fig.note("expected: measured delta size tracks the (u·R)^j formula exactly.");
    for u in 0..=2u32 {
        let mut measured = Series::new(format!("measured (u={u})"));
        let mut predicted = Series::new(format!("predicted (u={u})"));
        for j in 0..=3u32 {
            let (cat, c, rel) = call_catalog(Retention::None, r_size);
            // Build u unions at the base (self-union is idempotent under
            // set semantics, so union distinct selections that all pass).
            let base = CaExpr::chronicle(cat.chronicle(c));
            let mut expr = base.clone();
            for k in 0..u {
                // σ_{minutes > -k-1}(C): distinct predicates, all true, so
                // the union branches each contribute the same tuple — the
                // union dedups them, but the *work* of the branches remains.
                let p = Predicate::attr_cmp_const(
                    base.schema(),
                    "minutes",
                    CmpOp::Gt,
                    Value::Float(-(k as f64) - 1.0),
                )
                .expect("typed");
                expr = expr
                    .union(base.clone().select(p).expect("valid"))
                    .expect("same type");
            }
            for _ in 0..j {
                // Chained products: each multiplies the delta by R. To keep
                // schemas growing validly, product with the same relation.
                expr = expr.product(rel.clone()).expect("relation product");
            }
            let engine = DeltaEngine::new(&cat);
            let batch = DeltaBatch {
                chronicle: c,
                seq: SeqNo(1),
                tuples: vec![call_tuple(1, 7, 1.0)],
            };
            let mut w = WorkCounter::default();
            let delta = engine.delta_ca(&expr, &batch, &mut w).expect("delta");
            measured.push(j as f64, delta.len() as f64);
            // Unions dedup identical tuples, so the delta size is R^j; the
            // paper's bound (u·R)^j is an upper bound with u branches kept.
            predicted.push(j as f64, (r_size as f64).powi(j as i32));
        }
        fig.series.push(measured);
        fig.series.push(predicted);
    }
    fig
}

// ====================================================================== E3

/// E3 — Theorem 4.2: CA⋈ vs CA as the relation grows. The key join does
/// one index probe per tuple (log |R|); the product scans all |R| rows.
pub fn e3_keyjoin_vs_product(scale: u32) -> Figure {
    let sizes: Vec<i64> = match scale {
        0 => vec![100, 1_000],
        _ => vec![100, 1_000, 10_000, 100_000],
    };
    let mut fig = Figure::new(
        "E3 — key join (CA⋈) vs product (CA) per-append cost vs |R| (Thm 4.2)",
        "|R|",
        "per-append cost",
    );
    fig.note(
        "expected: product work ~|R| and time ~linear; key-join work flat (1 probe), time ~log|R|.",
    );
    let mut join_time = Series::new("key join time (ns)");
    let mut prod_time = Series::new("product time (ns)");
    let mut join_work = Series::new("key join work");
    let mut prod_work = Series::new("product work");
    for &r in &sizes {
        let (cat, c, rel) = call_catalog(Retention::None, r);
        let join_expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c))
                .join_rel_key(rel.clone(), &["caller"])
                .expect("key join"),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        let prod_expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c))
                .product(rel.clone())
                .expect("product"),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        let engine = DeltaEngine::new(&cat);
        let mut seq = 0u64;
        let mut batch = || {
            seq += 1;
            DeltaBatch {
                chronicle: c,
                seq: SeqNo(seq),
                tuples: vec![call_tuple(seq, (seq % r as u64) as i64, 1.0)],
            }
        };
        let mut wj = WorkCounter::default();
        let b = batch();
        let tj = time_per_iter(200, || {
            engine.delta_sca(&join_expr, &b, &mut wj).expect("delta");
        });
        let mut wp = WorkCounter::default();
        let b = batch();
        let iters = if r >= 100_000 { 5 } else { 50 };
        let tp = time_per_iter(iters, || {
            engine.delta_sca(&prod_expr, &b, &mut wp).expect("delta");
        });
        join_time.push(r as f64, tj);
        prod_time.push(r as f64, tp);
        join_work.push(r as f64, wj.total() as f64 / 200.0);
        prod_work.push(r as f64, wp.total() as f64 / iters as f64);
    }
    fig.series = vec![join_time, prod_time, join_work, prod_work];
    fig
}

// ====================================================================== E4

/// E4 — Theorem 4.2: CA₁ change computation is constant — independent of
/// both |R| (no relation operands) and |C| (no chronicle access at all).
pub fn e4_ca1_constant(scale: u32) -> Figure {
    let appends: usize = if scale == 0 { 500 } else { 20_000 };
    let mut fig = Figure::new(
        "E4 — CA₁ per-append work along a growing chronicle (Thm 4.2)",
        "appends so far",
        "work per append",
    );
    fig.note("view: σ(minutes>1) ∪ σ(caller=7), grouped; no relation operands.");
    fig.note("expected: flat — the 10⁶th append costs what the 1st did.");
    let (cat, c, _) = call_catalog(Retention::None, 0);
    let base = CaExpr::chronicle(cat.chronicle(c));
    let p1 = Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(1.0))
        .expect("typed");
    let p2 = Predicate::attr_cmp_const(base.schema(), "caller", CmpOp::Eq, Value::Int(7))
        .expect("typed");
    let expr = ScaExpr::group_agg(
        base.clone()
            .select(p1)
            .expect("valid")
            .union(base.select(p2).expect("valid"))
            .expect("same type"),
        &["caller"],
        vec![AggSpec::new(AggFunc::CountStar, "n")],
    )
    .expect("in language");
    let engine = DeltaEngine::new(&cat);
    let mut series = Series::new("CA₁ work per append");
    let checkpoints = 8usize;
    let mut w_prev = 0u64;
    let mut w = WorkCounter::default();
    for i in 0..appends {
        let b = DeltaBatch {
            chronicle: c,
            seq: SeqNo(i as u64 + 1),
            tuples: vec![call_tuple(i as u64 + 1, (i % 100) as i64, (i % 7) as f64)],
        };
        engine.delta_sca(&expr, &b, &mut w).expect("delta");
        if (i + 1) % (appends / checkpoints) == 0 {
            let total = w.total();
            series.push(
                (i + 1) as f64,
                (total - w_prev) as f64 / (appends / checkpoints) as f64,
            );
            w_prev = total;
        }
    }
    fig.series.push(series);
    fig
}

// ====================================================================== E5

/// E5 — Theorem 4.4: applying a summarized delta costs `O(t log |V|)`:
/// sweep the view size |V| (groups) and the batch size t.
pub fn e5_sca_apply(scale: u32) -> (Figure, Figure) {
    let sizes: Vec<usize> = match scale {
        0 => vec![100, 1_000],
        _ => vec![1_000, 10_000, 100_000, 1_000_000],
    };
    let mut fig_v = Figure::new(
        "E5a — apply time vs view size |V| (Thm 4.4)",
        "|V| (groups)",
        "apply time per batch (ns)",
    );
    fig_v.note("expected: logarithmic growth (ordered-index probe per group).");
    let mut t_series = Series::new("apply time (ns)");
    for &v in &sizes {
        let (cat, c, _) = call_catalog(Retention::None, 0);
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        let mut maintainer = Maintainer::new();
        maintainer.register("v", expr).expect("fresh");
        // Prepopulate |V| groups.
        let mut seq = 0u64;
        for i in 0..v {
            seq += 1;
            let ev = AppendEvent {
                chronicle: c,
                seq: SeqNo(seq),
                chronon: Chronon(seq as i64),
                tuples: vec![call_tuple(seq, i as i64, 1.0)],
            };
            maintainer.on_append(&cat, &ev).expect("maintain");
        }
        // Probe: batches hitting one existing group.
        let iters = 300usize;
        let t = time_per_iter(iters, || {
            seq += 1;
            let ev = AppendEvent {
                chronicle: c,
                seq: SeqNo(seq),
                chronon: Chronon(seq as i64),
                tuples: vec![call_tuple(seq, (seq % v as u64) as i64, 1.0)],
            };
            maintainer.on_append(&cat, &ev).expect("maintain");
        });
        t_series.push(v as f64, t);
    }
    fig_v.series.push(t_series);

    let mut fig_t = Figure::new(
        "E5b — apply work vs batch size t (Thm 4.4)",
        "t (tuples per batch)",
        "work per batch",
    );
    fig_t.note("expected: linear in t.");
    let mut wseries = Series::new("work per batch");
    let (cat, c, _) = call_catalog(Retention::None, 0);
    let expr = ScaExpr::group_agg(
        CaExpr::chronicle(cat.chronicle(c)),
        &["caller"],
        vec![AggSpec::new(AggFunc::Sum(2), "m")],
    )
    .expect("in language");
    let mut maintainer = Maintainer::new();
    maintainer.register("v", expr).expect("fresh");
    let mut seq = 0u64;
    for t in [1usize, 4, 16, 64, 256, 512] {
        seq += 1;
        let tuples: Vec<Tuple> = (0..t).map(|i| call_tuple(seq, i as i64, 1.0)).collect();
        let ev = AppendEvent {
            chronicle: c,
            seq: SeqNo(seq),
            chronon: Chronon(seq as i64),
            tuples,
        };
        let report = maintainer.on_append(&cat, &ev).expect("maintain");
        wseries.push(t as f64, report.total_work.total() as f64);
    }
    fig_t.series.push(wseries);
    (fig_v, fig_t)
}

// ====================================================================== E6

/// E6 — Theorem 4.5: the class separation. Three views over the same
/// chronicle — SCA₁ (IM-Constant), SCA⋈ (IM-log R), SCA with a product
/// (IM-R^k) — swept over |R|.
pub fn e6_class_separation(scale: u32) -> Figure {
    let sizes: Vec<i64> = match scale {
        0 => vec![64, 512],
        _ => vec![64, 512, 4_096, 32_768, 262_144],
    };
    let mut fig = Figure::new(
        "E6 — IM-class separation: per-append work vs |R| (Thm 4.5)",
        "|R|",
        "work per append",
    );
    fig.note("expected: SCA₁ flat; SCA⋈ flat probes (each O(log|R|)); SCA ~|R|.");
    let mut s1 = Series::new("SCA₁ work");
    let mut sk = Series::new("SCA⋈ work");
    let mut sp = Series::new("SCA (product) work");
    let mut sk_t = Series::new("SCA⋈ time (ns)");
    for &r in &sizes {
        let (cat, c, rel) = call_catalog(Retention::None, r);
        let base = CaExpr::chronicle(cat.chronicle(c));
        let v1 = ScaExpr::group_agg(
            base.clone(),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        let vk = ScaExpr::group_agg(
            base.clone()
                .join_rel_key(rel.clone(), &["caller"])
                .expect("key join"),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        let vp = ScaExpr::group_agg(
            base.product(rel.clone()).expect("product"),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .expect("in language");
        assert_eq!(v1.language_name(), "SCA_1");
        assert_eq!(vk.language_name(), "SCA_join");
        assert_eq!(vp.language_name(), "SCA");
        let engine = DeltaEngine::new(&cat);
        let b = DeltaBatch {
            chronicle: c,
            seq: SeqNo(1),
            tuples: vec![call_tuple(1, 7, 1.0)],
        };
        let mut w1 = WorkCounter::default();
        engine.delta_sca(&v1, &b, &mut w1).expect("delta");
        let mut wk = WorkCounter::default();
        engine.delta_sca(&vk, &b, &mut wk).expect("delta");
        let mut wp = WorkCounter::default();
        engine.delta_sca(&vp, &b, &mut wp).expect("delta");
        s1.push(r as f64, w1.total() as f64);
        sk.push(r as f64, wk.total() as f64);
        sp.push(r as f64, wp.total() as f64);
        let tk = time_per_iter(500, || {
            let mut w = WorkCounter::default();
            engine.delta_sca(&vk, &b, &mut w).expect("delta");
        });
        sk_t.push(r as f64, tk);
    }
    fig.series = vec![s1, sk, sp, sk_t];
    fig
}

// ====================================================================== E7

/// E7 — Theorem 4.3 (maximality): a θ-join between two chronicles cannot
/// be in CA; the validator rejects it, and the best maintenance strategy
/// (classical IVM with chronicle access) does per-append work growing with
/// |C|.
pub fn e7_maximality(scale: u32) -> Figure {
    let sizes: Vec<usize> = match scale {
        0 => vec![100, 500],
        _ => vec![1_000, 4_000, 16_000, 64_000],
    };
    let mut fig = Figure::new(
        "E7 — beyond-CA: per-append work of C₁ ⋈_θ C₂ maintenance vs |C| (Thm 4.3)",
        "|C| (stored tuples per chronicle)",
        "chronicle tuples scanned per append",
    );
    // Demonstrate the static rejection first.
    let (cat0, c0, _) = call_catalog(Retention::All, 0);
    let e1 = CaExpr::chronicle(cat0.chronicle(c0));
    let e2 = CaExpr::chronicle(cat0.chronicle(c0));
    let rejection = e1
        .product_chronicles(e2)
        .expect_err("Theorem 4.3: chronicle×chronicle is not in CA");
    fig.note(format!("CA validator: {rejection}"));
    fig.note("expected: per-append scan work grows linearly with |C|.");
    let mut scanned = Series::new("tuples scanned per append");
    for &n in &sizes {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").expect("fresh");
        let a = cat
            .create_chronicle("a", g, call_schema(), Retention::All)
            .expect("fresh");
        let b = cat
            .create_chronicle("b", g, call_schema(), Retention::All)
            .expect("fresh");
        let mut seq = 0u64;
        for i in 0..n {
            seq += 1;
            cat.append_at(
                a,
                SeqNo(seq),
                Chronon(seq as i64),
                &[call_tuple(seq, i as i64, 1.0)],
            )
            .expect("append");
            seq += 1;
            cat.append_at(
                b,
                SeqNo(seq),
                Chronon(seq as i64),
                &[call_tuple(seq, i as i64, 2.0)],
            )
            .expect("append");
        }
        let mut joined = StoredThetaJoinCount::new(a, b, (1, CmpOp::Lt, 1));
        let probes = 5usize;
        let before = joined.scanned;
        for _ in 0..probes {
            seq += 1;
            let t = vec![call_tuple(seq, (seq % 97) as i64, 1.0)];
            cat.append_at(a, SeqNo(seq), Chronon(seq as i64), &t)
                .expect("append");
            joined.on_append(&cat, a, &t).expect("stored");
        }
        scanned.push(n as f64, (joined.scanned - before) as f64 / probes as f64);
    }
    fig.series.push(scanned);
    fig
}

// ====================================================================== E8

/// E8 — §5.1: the cyclic-buffer optimization for overlapping windows.
/// Compare, for a w-bucket moving sum over stock trades: (a) the cyclic
/// buffer, (b) a periodic view family over the sliding calendar (one full
/// view per overlapping window), (c) naive recomputation over the stored
/// window.
pub fn e8_sliding_window(scale: u32) -> Figure {
    let widths: Vec<usize> = match scale {
        0 => vec![7, 30],
        _ => vec![7, 30, 90, 365],
    };
    let appends: usize = if scale == 0 { 500 } else { 5_000 };
    let mut fig = Figure::new(
        "E8 — 30-day-style moving sum: per-append cost vs window width w (§5.1)",
        "w (buckets)",
        "per-append cost",
    );
    fig.note("expected: cyclic buffer flat in w; per-window periodic views ~w; naive recompute ~tuples-in-window.");
    let mut cyclic = Series::new("cyclic buffer time (ns)");
    let mut periodic = Series::new("periodic-views time (ns)");
    let mut naive = Series::new("naive window recompute time (ns)");
    for &w in &widths {
        // (a) cyclic buffer.
        let mut gen = TradeGen::new(7);
        let mut win =
            SlidingWindow::new(Chronon(0), w, 1, vec![0], vec![AggFunc::Sum(1)]).expect("valid");
        let mut i = 0i64;
        let t_cyc = time_per_iter(appends, || {
            let row = gen.next_row();
            let t = Tuple::new(vec![row[0].clone(), row[1].clone()]);
            win.insert(Chronon(i), &t).expect("monotone");
            i += 1;
        });
        cyclic.push(w as f64, t_cyc);

        // (b) periodic family over a sliding calendar (each append fans out
        // to w windows).
        let mut cat = Catalog::new();
        let g = cat.create_group("g").expect("fresh");
        let ts = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("symbol", AttrType::Str),
                Attribute::new("shares", AttrType::Int),
            ],
            "sn",
        )
        .expect("static");
        let c = cat
            .create_chronicle("trades", g, ts, Retention::None)
            .expect("fresh");
        let expr = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(c)),
            &["symbol"],
            vec![AggSpec::new(AggFunc::Sum(2), "shares")],
        )
        .expect("in language");
        let cal = Calendar::sliding(Chronon(0), w as i64, 1).expect("valid");
        let mut set = PeriodicViewSet::new("win", expr, cal, Some(0));
        let mut gen = TradeGen::new(7);
        let mut seq = 0u64;
        let per_iters = appends.min(1_000);
        let t_per = time_per_iter(per_iters, || {
            seq += 1;
            let row = gen.next_row();
            let ev = AppendEvent {
                chronicle: c,
                seq: SeqNo(seq),
                chronon: Chronon(seq as i64),
                tuples: vec![Tuple::new(vec![
                    Value::Seq(SeqNo(seq)),
                    row[0].clone(),
                    row[1].clone(),
                ])],
            };
            let mut wk = WorkCounter::default();
            set.on_append(&cat, &ev, &mut wk).expect("maintain");
        });
        periodic.push(w as f64, t_per);

        // (c) naive: store the window, recompute the moving sum on demand.
        let mut stored: std::collections::VecDeque<(i64, i64)> = Default::default();
        let mut gen = TradeGen::new(7);
        let mut i = 0i64;
        let t_naive = time_per_iter(appends, || {
            let row = gen.next_row();
            stored.push_back((i, row[1].as_int().expect("shares")));
            while let Some(&(t0, _)) = stored.front() {
                if t0 <= i - w as i64 {
                    stored.pop_front();
                } else {
                    break;
                }
            }
            // The "query each append" pattern: sum the whole window.
            let _sum: i64 = std::hint::black_box(stored.iter().map(|&(_, s)| s).sum());
            i += 1;
        });
        naive.push(w as f64, t_naive);
    }
    fig.series = vec![cyclic, periodic, naive];
    fig
}

// ====================================================================== E9

/// E9 — §5.2: affected-view identification. k views with selective guards;
/// routing cost vs maintaining everything.
pub fn e9_router(scale: u32) -> Figure {
    let counts: Vec<usize> = match scale {
        0 => vec![4, 64],
        _ => vec![16, 128, 1_024, 4_096],
    };
    let mut fig = Figure::new(
        "E9 — affected-view routing: per-append time vs registered views (§5.2)",
        "registered views",
        "per-append time (ns)",
    );
    fig.note("each view guards one caller id; an append matches exactly one view.");
    fig.note("expected: routed cost ≪ scan-all cost as views grow (guard eval is cheap; delta propagation is not free).");
    let mut routed = Series::new("routed (ns)");
    let mut scan_all = Series::new("scan-all (ns)");
    for &k in &counts {
        for mode in [RouteMode::Routed, RouteMode::ScanAll] {
            let (cat, c, _) = call_catalog(Retention::None, 0);
            let mut maintainer = Maintainer::new();
            maintainer.set_route_mode(mode);
            let base = CaExpr::chronicle(cat.chronicle(c));
            for i in 0..k {
                let p = Predicate::attr_cmp_const(
                    base.schema(),
                    "caller",
                    CmpOp::Eq,
                    Value::Int(i as i64),
                )
                .expect("typed");
                let expr = ScaExpr::group_agg(
                    base.clone().select(p).expect("valid"),
                    &["caller"],
                    vec![AggSpec::new(AggFunc::Sum(2), "m")],
                )
                .expect("in language");
                maintainer.register(&format!("v{i}"), expr).expect("fresh");
            }
            let mut seq = 0u64;
            let iters = if k >= 1024 { 200 } else { 500 };
            let t = time_per_iter(iters, || {
                seq += 1;
                let ev = AppendEvent {
                    chronicle: c,
                    seq: SeqNo(seq),
                    chronon: Chronon(seq as i64),
                    tuples: vec![call_tuple(seq, (seq % k as u64) as i64, 1.0)],
                };
                maintainer.on_append(&cat, &ev).expect("maintain");
            });
            match mode {
                RouteMode::Routed => routed.push(k as f64, t),
                RouteMode::ScanAll => scan_all.push(k as f64, t),
            }
        }
    }
    fig.series = vec![routed, scan_all];
    fig
}

// ===================================================================== E10

/// E10 — §5.3: tiered telephone discounts, batch vs incremental. Same
/// final answers; the incremental plan is always current, the batch plan
/// is stale until period end.
pub fn e10_tiered(scale: u32) -> Figure {
    let txns: usize = if scale == 0 { 1_000 } else { 50_000 };
    let accounts = 500i64;
    let mut fig = Figure::new(
        "E10 — tiered discount plan: batch vs incremental (§5.3)",
        "checkpoint (fraction of month)",
        "accounts with correct mid-period answer",
    );
    fig.note("plan: 0% < $10 ≤ 10% < $25 ≤ 20% (the paper's example).");
    let mut inc_correct = Series::new("incremental correct");
    let mut batch_correct = Series::new("batch correct");
    let mut active = Series::new("accounts with activity");
    let mut inc = TierSchedule::us_telephone_1995();
    let mut batch = BatchDiscount::new(&inc);
    let mut gen = CallGen::new(3, accounts);
    let checkpoints = [0.25, 0.5, 0.75, 1.0];
    let mut next_cp = 0usize;
    for i in 0..txns {
        let row = gen.next_row();
        let key = vec![row[0].clone()];
        let cost = row[3].as_float().expect("cost");
        inc.apply(&key, cost);
        batch.record(&key, cost);
        let frac = (i + 1) as f64 / txns as f64;
        if next_cp < checkpoints.len() && frac >= checkpoints[next_cp] {
            // Ground truth at this instant: recompute from a parallel batch
            // over the same prefix — which is exactly batch.compute().
            let truth = batch.compute();
            let inc_ok = truth
                .iter()
                .filter(|(k, s)| {
                    let g = inc.get(k);
                    (g.discounted - s.discounted).abs() < 1e-9
                })
                .count();
            // The batch approach answers only at period end; mid-period it
            // has no derived values (count correct = 0 until the last
            // checkpoint, where its one computation is right).
            let batch_ok = if checkpoints[next_cp] >= 1.0 {
                truth.len()
            } else {
                0
            };
            inc_correct.push(checkpoints[next_cp], inc_ok as f64);
            batch_correct.push(checkpoints[next_cp], batch_ok as f64);
            active.push(checkpoints[next_cp], truth.len() as f64);
            next_cp += 1;
        }
    }
    fig.series = vec![inc_correct, batch_correct, active];
    fig.note(format!(
        "{txns} call records over {accounts} accounts; final states agree exactly."
    ));
    fig
}

// ===================================================================== E11

/// E11 — §1 prose: transaction throughput and summary-query latency. The
/// persistent-view lookup is compared with the procedural summary field
/// (ceiling) and with scanning the stored window (what SQL-over-history
/// would do).
pub fn e11_throughput(scale: u32) -> (Figure, Figure) {
    let n: usize = if scale == 0 { 2_000 } else { 50_000 };
    let accounts = 1_000i64;

    // Throughput: pipeline with 4 producers and the balances view.
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT) RETAIN LAST 10000")
        .expect("ddl");
    db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
        .expect("ddl");
    let pipeline = Pipeline::start(db, 1024);
    let start = std::time::Instant::now();
    let mut joins = Vec::new();
    for p in 0..4u64 {
        let h = pipeline.handle();
        let per = n / 4;
        joins.push(std::thread::spawn(move || {
            let mut gen = AtmGen::new(100 + p, 1_000);
            for _ in 0..per {
                let row = gen.next_row();
                h.append_nowait(
                    "atm",
                    Chronon(0),
                    vec![vec![row[0].clone(), row[1].clone()]],
                )
                .expect("pipeline alive");
            }
        }));
    }
    for j in joins {
        j.join().expect("producer");
    }
    let db = pipeline.shutdown();
    let elapsed = start.elapsed().as_secs_f64();
    let appends_done = db.stats().appends as f64;

    let mut fig_tp = Figure::new(
        "E11a — append throughput with maintenance (pipeline, 4 producers)",
        "producers",
        "appends/sec",
    );
    let mut tp = Series::new("appends/sec");
    tp.push(4.0, appends_done / elapsed);
    fig_tp.series.push(tp);
    fig_tp.note(format!(
        "{appends_done} appends in {elapsed:.2}s; p50 maintenance {} ns, p99 {} ns",
        db.stats().latency_percentile(0.5),
        db.stats().latency_percentile(0.99),
    ));

    // Query latency: view lookup vs procedural field vs window scan.
    let mut fig_q = Figure::new(
        "E11b — summary-query latency (§1: \"answered in subseconds\")",
        "strategy (1=view, 2=procedural, 3=window scan)",
        "latency per query (ns)",
    );
    let mut lat = Series::new("latency (ns)");
    // Rebuild the same workload on a fresh db and a procedural baseline.
    let mut db2 = ChronicleDb::new();
    db2.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT) RETAIN ALL")
        .expect("ddl");
    db2.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
        .expect("ddl");
    let mut proc = ProceduralSummary::running_sum(vec![1], 2);
    let mut gen = AtmGen::new(55, accounts);
    for i in 0..n.min(20_000) {
        let row = gen.next_row();
        let out = db2
            .append(
                "atm",
                Chronon(i as i64),
                &[vec![row[0].clone(), row[1].clone()]],
            )
            .expect("append");
        let _ = out;
        proc.on_tuple(&Tuple::new(vec![
            Value::Seq(SeqNo(i as u64 + 1)),
            row[0].clone(),
            row[1].clone(),
        ]));
    }
    let key = [Value::Int(7)];
    let t_view = time_per_iter(2_000, || {
        std::hint::black_box(db2.query_view_key("balances", &key).expect("view"));
    });
    let t_proc = time_per_iter(2_000, || {
        std::hint::black_box(proc.get(&key));
    });
    let cid = db2.catalog().chronicle_id("atm").expect("exists");
    let t_scan = time_per_iter(20, || {
        let total: f64 = db2
            .catalog()
            .chronicle(cid)
            .scan_window()
            .filter(|t| t.get(1) == &key[0])
            .map(|t| t.get(2).as_float().expect("amount"))
            .sum();
        std::hint::black_box(total);
    });
    lat.push(1.0, t_view);
    lat.push(2.0, t_proc);
    lat.push(3.0, t_scan);
    fig_q.series.push(lat);
    fig_q.note("expected: view lookup within ~an order of magnitude of the hand-coded field; window scan orders of magnitude slower and growing with history.");
    (fig_tp, fig_q)
}

// ===================================================================== E12

/// E12 — §2.3 / Example 2.2: proactive updates preserve the temporal-join
/// semantics (incremental view == oracle over the version history), and
/// retroactive updates are rejected.
pub fn e12_proactive(scale: u32) -> Figure {
    let moves: usize = if scale == 0 { 20 } else { 200 };
    let mut fig = Figure::new(
        "E12 — proactive updates & the implicit temporal join (Ex. 2.2)",
        "relation updates interleaved",
        "groups where incremental == oracle",
    );
    let mut db = ChronicleDb::new();
    db.execute("CREATE CHRONICLE flights (sn SEQ, acct INT, miles INT) RETAIN ALL")
        .expect("ddl");
    db.execute("CREATE RELATION customers (acct INT, state STRING, PRIMARY KEY (acct))")
        .expect("ddl");
    for a in 0..10i64 {
        db.execute(&format!("INSERT INTO customers VALUES ({a}, 'NJ')"))
            .expect("dml");
    }
    // NJ residents get a bonus: count NJ flights per account.
    db.execute(
        "CREATE VIEW nj_flights AS SELECT acct, COUNT(*) AS n, SUM(miles) AS miles \
         FROM flights JOIN customers ON acct = acct WHERE state = 'NJ' GROUP BY acct",
    )
    .expect("view");
    let mut rng_state = 12345u64;
    let mut next = || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) as i64
    };
    let mut t = 0i64;
    for m in 0..moves {
        // A few flights...
        for _ in 0..5 {
            t += 1;
            let acct = next().rem_euclid(10);
            let miles = 100 + next().rem_euclid(900);
            db.execute(&format!(
                "APPEND INTO flights AT {t} VALUES ({acct}, {miles})"
            ))
            .expect("append");
        }
        // ...then someone moves (proactive: affects only future flights).
        let acct = next().rem_euclid(10);
        let state = if m % 2 == 0 { "NY" } else { "NJ" };
        db.execute(&format!(
            "UPDATE customers SET state = '{state}' WHERE acct = {acct}"
        ))
        .expect("dml");
    }
    // Oracle: evaluate the view definition over the stored chronicle with
    // exact per-SN relation versions.
    let expr = db
        .maintainer()
        .view_by_name("nj_flights")
        .expect("registered")
        .expr();
    let oracle = chronicle_algebra::eval::canon(
        chronicle_algebra::eval::eval_sca(db.catalog(), expr).expect("stored"),
    );
    let incremental = chronicle_algebra::eval::canon(db.query_view("nj_flights").expect("view"));
    let agree = oracle == incremental;
    let mut s = Series::new("exact agreement (1 = yes)");
    s.push(moves as f64, if agree { 1.0 } else { 0.0 });
    fig.series.push(s);
    fig.note(format!(
        "{} view rows compared against the temporal-join oracle; agreement: {agree}.",
        incremental.len()
    ));
    // And the retroactive path is rejected with a typed error.
    let g = db.catalog().group_id("default").expect("exists");
    let hw = db.catalog().group(g).high_water();
    let rid = db.catalog().relation_id("customers").expect("exists");
    let err = db
        .catalog_mut()
        .relation_mut(rid)
        .insert_effective(
            Tuple::new(vec![Value::Int(99), Value::str("NJ")]),
            SeqNo(1),
            hw,
        )
        .expect_err("retroactive must be rejected");
    fig.note(format!("retroactive update rejected: {err}"));
    fig
}

// ===================================================================== E14

/// E14 — recovery time vs pre-checkpoint chronicle length with a fixed
/// WAL tail (the durability analogue of Prop. 3.1). A checkpoint persists
/// the views in O(|V|), so reopening replays only the tail; recovery time
/// must stay flat while the pre-checkpoint history grows. This is the
/// measurement core of the `e14_recovery` bench target, exposed here so
/// the `experiments json` mode can emit `BENCH_E14.json`.
pub fn e14_recovery(scale: u32) -> Figure {
    let tail: usize = if scale == 0 { 200 } else { 1_000 };
    let sizes: &[usize] = if scale == 0 {
        &[1_000, 2_000, 4_000]
    } else {
        &[10_000, 40_000, 160_000]
    };
    let iters = if scale == 0 { 3 } else { 10 };
    let mut fig = Figure::new(
        "E14 — recovery time vs chronicle length (fixed WAL tail)",
        "pre-checkpoint appends",
        "recovery time (ns)",
    );
    let mut rec = Series::new("recovery (ns)");
    let mut replayed = Series::new("tail records replayed");
    for &n in sizes {
        let tmp = TempDir::new("e14-json");
        {
            let mut db = ChronicleDb::open(tmp.path()).expect("open");
            db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
                .expect("ddl");
            db.execute(
                "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct",
            )
            .expect("ddl");
            let mut gen = AtmGen::new(1, 100);
            for i in 0..n + tail {
                let row = gen.next_row();
                db.append(
                    "atm",
                    Chronon(i as i64),
                    &[vec![row[0].clone(), row[1].clone()]],
                )
                .expect("append");
                if i + 1 == n {
                    db.checkpoint().expect("checkpoint");
                }
            }
        }
        let mut last_replayed = 0u64;
        let ns = time_per_iter(iters, || {
            let db = ChronicleDb::open(tmp.path()).expect("reopen");
            last_replayed = db.stats().recovery_replayed_records;
            std::hint::black_box(&db);
        });
        rec.push(n as f64, ns);
        replayed.push(n as f64, last_replayed as f64);
    }
    fig.series.push(rec);
    fig.series.push(replayed);
    fig.note(format!(
        "WAL tail fixed at {tail} records; expected: recovery flat while the \
         pre-checkpoint chronicle grows {}x",
        sizes.last().expect("nonempty") / sizes.first().expect("nonempty")
    ));
    fig
}

// ===================================================================== E15

/// E15 — sharded maintenance scaling: durable append throughput and the
/// critical-path share of maintenance work as the catalog is
/// hash-partitioned. Theorem 4.1 keeps the shards coordination-free, so
/// the serial stage of a sharded run is its most-loaded shard; with the
/// balanced group set the critical path shrinks as 1/shards. Each shard
/// count is swept twice over the same total tuple stream: row-at-a-time
/// appends (one WAL record and one maintenance event per tuple) and
/// 32-row batches (one columnar WAL record and one vectorized maintenance
/// event per batch). Measurement core of the `e15_sharding` bench target,
/// exposed for `BENCH_E15.json`.
pub fn e15_sharding(scale: u32) -> Figure {
    const GROUPS: usize = 8;
    /// Rows per append in the batched sweep.
    const BATCH: usize = 32;
    // Tuples per group; divisible by BATCH so both sweeps ship the same
    // stream.
    let ops_per_group: usize = if scale == 0 { 160 } else { 2_048 };
    let shard_counts: &[usize] = if scale == 0 {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    // Per-shard channel capacity doubles as the group-commit window; a
    // small one keeps the single-shard engine fsync-stall-bound.
    let capacity = 4;
    // Group names with pairwise-distinct hashes mod 8: the assignment is
    // balanced at every swept shard count.
    let mut names: Vec<String> = Vec::new();
    let mut taken = [false; 8];
    let mut i = 0usize;
    while names.len() < GROUPS {
        let cand = format!("g{i}");
        let slot = shard_of_group(&cand, 8);
        if !taken[slot] {
            taken[slot] = true;
            names.push(cand);
        }
        i += 1;
    }
    let ops = GROUPS * ops_per_group;

    let mut fig = Figure::new(
        "E15 — sharded maintenance scaling (durable group commit)",
        "shards",
        "tuples/sec and critical-path work",
    );
    // One durable run: `batch` tuples per append, same total stream.
    // Returns wall seconds plus the finished engine for work inspection.
    let run = |shards: usize, batch: usize| {
        let tmp = TempDir::new("e15-json");
        let opts = DurabilityOptions {
            fsync: true,
            ..Default::default()
        };
        let mut db = ShardedDb::open_with(tmp.path(), shards, opts).expect("open");
        for g in &names {
            db.execute(&format!("CREATE GROUP {g}")).expect("ddl");
            db.execute(&format!(
                "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
            ))
            .expect("ddl");
            db.execute(&format!(
                "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total \
                 FROM {g}_c GROUP BY acct"
            ))
            .expect("ddl");
        }
        let pipeline = ShardedPipeline::start(db, capacity);
        let handle = pipeline.handle();
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for g in &names {
                let handle = handle.clone();
                scope.spawn(move || {
                    let chron = format!("{g}_c");
                    for b in 0..ops_per_group / batch {
                        let rows: Vec<Vec<Value>> = (0..batch)
                            .map(|j| {
                                let i = b * batch + j;
                                vec![Value::Int((i % 16) as i64), Value::Float(i as f64 % 9.0)]
                            })
                            .collect();
                        handle
                            .append_nowait(&chron, Chronon(b as i64 + 1), rows)
                            .expect("pipeline alive");
                    }
                });
            }
        });
        let db = pipeline.shutdown();
        (start.elapsed().as_secs_f64(), db)
    };
    let mut tp = Series::new("tuples/sec (row-at-a-time)");
    let mut tp_batch = Series::new(format!("tuples/sec (batched x{BATCH})"));
    let mut batch_speedup = Series::new("batch speedup (x)");
    let mut critical = Series::new("critical-path work (units)");
    let mut speedup = Series::new("model speedup (total/critical)");
    for &shards in shard_counts {
        let (row_secs, db) = run(shards, 1);
        let total = db.stats().work.total() as f64;
        let crit = (0..shards)
            .map(|i| db.shard(i).stats().work.total())
            .max()
            .unwrap_or(0) as f64;
        let (batch_secs, batch_db) = run(shards, BATCH);
        assert!(
            batch_db.stats().vectorized_views > 0,
            "batched E15 run never reached the vectorized kernels"
        );
        tp.push(shards as f64, ops as f64 / row_secs.max(1e-9));
        tp_batch.push(shards as f64, ops as f64 / batch_secs.max(1e-9));
        batch_speedup.push(shards as f64, row_secs / batch_secs.max(1e-9));
        critical.push(shards as f64, crit);
        speedup.push(shards as f64, total / crit.max(1.0));
    }
    fig.series.push(tp);
    fig.series.push(tp_batch);
    fig.series.push(batch_speedup);
    fig.series.push(critical);
    fig.series.push(speedup);
    fig.note(format!(
        "{GROUPS} groups x {ops_per_group} durable tuples, group-commit \
         window {capacity}, appended 1 and {BATCH} rows at a time; \
         expected: critical-path work ~1/shards of total (work counters \
         are deterministic), throughput rising with shards, and batched \
         ingest >=5x row-at-a-time at every shard count"
    ));
    fig
}

// ===================================================================== E16

/// E16 — follower catch-up: WAL-shipping throughput and replication lag.
/// A fresh follower pulls the leader's entire WAL through the [`Shipper`]
/// cursor machinery — the same code path the TCP server drives, minus the
/// socket — persists it byte-identically, and replays it through the
/// recovery path. Catch-up cost is linear in shipped WAL bytes (not in
/// how *old* the history is), lag after one uninterrupted catch-up is 0,
/// and the follower's views are byte-identical to the leader's.
/// Measurement core of the `e16_replication` bench target, exposed for
/// `BENCH_E16.json`.
pub fn e16_replication(scale: u32) -> Figure {
    const SHARDS: usize = 2;
    let sizes: &[usize] = if scale == 0 {
        &[400, 800, 1_600]
    } else {
        &[4_000, 8_000, 16_000]
    };
    // Small segments so every size rotates several times: catch-up covers
    // the sealed-chain walk, not just one active-segment tail.
    let opts = || DurabilityOptions {
        segment_bytes: 64 << 10,
        fsync: true,
        ..Default::default()
    };
    // Two group names on distinct shards mod 2 — both shards carry WAL.
    let mut names: Vec<String> = Vec::new();
    let mut taken = [false; SHARDS];
    let mut i = 0usize;
    while names.len() < SHARDS {
        let cand = format!("g{i}");
        let slot = shard_of_group(&cand, SHARDS);
        if !taken[slot] {
            taken[slot] = true;
            names.push(cand);
        }
        i += 1;
    }

    let mut fig = Figure::new(
        "E16 — follower catch-up over WAL shipping",
        "leader appends before the follower attaches",
        "records/sec, bytes, lag",
    );
    let mut tp = Series::new("catch-up (records applied/sec)");
    let mut shipped = Series::new("WAL bytes shipped");
    let mut lag = Series::new("replication lag after catch-up (records)");
    let mut all_identical = true;
    for &n in sizes {
        let leader_tmp = TempDir::new("e16-leader");
        let mut db = ShardedDb::open_with(leader_tmp.path(), SHARDS, opts()).expect("open");
        for g in &names {
            db.execute(&format!("CREATE GROUP {g}")).expect("ddl");
            db.execute(&format!(
                "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
            ))
            .expect("ddl");
            db.execute(&format!(
                "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total \
                 FROM {g}_c GROUP BY acct"
            ))
            .expect("ddl");
        }
        let pipeline = ShardedPipeline::start(db, 64);
        let handle = pipeline.handle();
        std::thread::scope(|scope| {
            for g in &names {
                let handle = handle.clone();
                scope.spawn(move || {
                    let chron = format!("{g}_c");
                    for i in 0..n / SHARDS {
                        handle
                            .append_nowait(
                                &chron,
                                Chronon(i as i64 + 1),
                                vec![vec![
                                    Value::Int((i % 16) as i64),
                                    Value::Float(i as f64 % 9.0),
                                ]],
                            )
                            .expect("pipeline alive");
                    }
                });
            }
        });
        let db = pipeline.shutdown();

        // The follower attaches cold and catches up in one uninterrupted
        // pull; the timed region is exactly what a freshly started
        // `Replica` does between connect and lag 0.
        let follower_tmp = TempDir::new("e16-follower");
        let mut follower =
            FollowerDb::open_with(follower_tmp.path(), SHARDS, opts()).expect("open follower");
        let mut shipper = Shipper::new(&follower.applied_lsns(), DEFAULT_CHUNK);
        let mut bytes = 0u64;
        let start = std::time::Instant::now();
        loop {
            let caught_up = {
                let follower = &mut follower;
                let bytes = &mut bytes;
                shipper
                    .pump(&db, &mut |ev| match ev {
                        ShipEvent::Start { shard, first_lsn } => {
                            follower.begin_segment(shard, first_lsn)
                        }
                        ShipEvent::Bytes {
                            shard,
                            offset,
                            bytes: chunk,
                            ..
                        } => {
                            *bytes += chunk.len() as u64;
                            follower.ingest(shard, offset, &chunk).map(|_| ())
                        }
                        ShipEvent::Seal { shard, first_lsn } => {
                            follower.seal_segment(shard, first_lsn)
                        }
                    })
                    .expect("ship")
            };
            if caught_up {
                break;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        for shard in 0..SHARDS {
            let durable = WalSource::last_durable_lsn(&db, shard).expect("leader lsn");
            follower.note_leader_durable(shard, durable);
        }
        let records: u64 = follower.applied_lsns().iter().sum();
        tp.push(n as f64, records as f64 / elapsed.max(1e-9));
        shipped.push(n as f64, bytes as f64);
        lag.push(n as f64, follower.replication_lag().unwrap_or(0) as f64);
        all_identical &= follower.snapshot_views() == db.snapshot_views();
    }
    fig.series.push(tp);
    fig.series.push(shipped);
    fig.series.push(lag);
    fig.note(format!(
        "{SHARDS} shards, 64 KiB segments, durable leader and follower; \
         expected: shipped bytes linear in appends, lag 0 after catch-up; \
         follower views byte-identical to the leader at every size: \
         {all_identical}"
    ));
    fig
}

// ===================================================================== E17

/// E17 — batch-size sweep of the vectorized delta kernels: per-tuple
/// maintenance cost as the append batch grows, vectorized (columnar
/// chunks through the σ/Π/γ kernels) vs forced-scalar (the per-tuple
/// interpreter), over one in-memory engine with a select-heavy and a
/// grouped view. Both modes produce byte-identical state — the
/// differential oracle suite pins that — so this figure isolates the
/// constant-factor win of transposing once per batch instead of boxing
/// every tuple through intermediate Z-sets. Exposed for
/// `BENCH_E17.json`.
pub fn e17_batch_kernels(scale: u32) -> Figure {
    let total: usize = if scale == 0 { 4_096 } else { 65_536 };
    let batch_sizes: &[usize] = if scale == 0 {
        &[1, 16, 256]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let run = |batch: usize, mode: BatchMode| {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT)")
            .expect("ddl");
        db.execute(
            "CREATE VIEW long_calls AS SELECT caller, COUNT(*) AS n, SUM(minutes) AS m \
             FROM calls WHERE minutes > 4.5 GROUP BY caller",
        )
        .expect("ddl");
        db.execute("CREATE VIEW callers AS SELECT caller FROM calls")
            .expect("ddl");
        db.set_batch_mode(mode);
        let start = std::time::Instant::now();
        for b in 0..total / batch {
            let rows: Vec<Vec<Value>> = (0..batch)
                .map(|j| {
                    let i = b * batch + j;
                    vec![Value::Int((i % 64) as i64), Value::Float(i as f64 % 9.0)]
                })
                .collect();
            db.append("calls", Chronon(b as i64 + 1), &rows)
                .expect("append");
        }
        let secs = start.elapsed().as_secs_f64();
        // Single-row appends ride the interpreter by design (the chunk
        // transpose only pays for itself from two rows up), so the kernel
        // counter is only required to move once batches actually batch.
        if mode == BatchMode::Vectorized && batch >= 2 {
            assert!(
                db.stats().vectorized_views > 0,
                "E17 vectorized run never reached the kernels"
            );
        }
        secs
    };
    let mut fig = Figure::new(
        "E17 — vectorized kernels vs scalar interpreter (batch-size sweep)",
        "rows per append batch",
        "tuples/sec (in-memory maintenance)",
    );
    let mut vec_tp = Series::new("tuples/sec (vectorized)");
    let mut sca_tp = Series::new("tuples/sec (scalar)");
    let mut speedup = Series::new("kernel speedup (x)");
    for &batch in batch_sizes {
        let sca = run(batch, BatchMode::Scalar);
        let vec = run(batch, BatchMode::Vectorized);
        vec_tp.push(batch as f64, total as f64 / vec.max(1e-9));
        sca_tp.push(batch as f64, total as f64 / sca.max(1e-9));
        speedup.push(batch as f64, sca / vec.max(1e-9));
    }
    fig.series.push(vec_tp);
    fig.series.push(sca_tp);
    fig.series.push(speedup);
    fig.note(format!(
        "{total} tuples through two views (sigma+gamma, pi), in-memory; \
         expected: modes coincide at batch 1 (single-row events ride the \
         interpreter by design) and the kernels pull ahead as batches grow"
    ));
    fig
}

// ===================================================================== E18

/// One placement mode's outcome in the E18 sweep.
struct SkewRun {
    /// Per-shard maintenance work charged during the measured phase.
    deltas: Vec<u64>,
    /// Wall seconds the rebalance pass held the engine (0 for static).
    pause_secs: f64,
    /// Group relocations the pass applied.
    moves: usize,
    /// Full view state after the measured phase.
    snapshot: Vec<(String, Vec<u8>)>,
}

/// E18 — skew-resilient sharding (DESIGN.md §16): Zipf(θ)-distributed
/// append traffic over a group set named adversarially so the `HOT`
/// highest-rank groups all hash to shard 0. Under static FNV placement
/// the critical path (the most-loaded shard's maintenance work) absorbs
/// nearly the whole stream; one online heavy-light rebalance after the
/// warmup phase dedicates a shard to the head group and evacuates the
/// stranded lights, restoring near-balanced execution. Placement is
/// execution-only: the measured phase's *total* work is bit-identical
/// across modes and the final view snapshots are byte-equal — only the
/// per-shard split moves. Work counters are deterministic, so the gate
/// (`crates/bench/tests/e18_gate.rs`) asserts on them rather than wall
/// time. Exposed for `BENCH_E18.json`.
pub fn e18_zipf_skew(scale: u32) -> Figure {
    const SHARDS: usize = 8;
    /// Zipf ranks that co-hash to shard 0 under static placement.
    const HOT: usize = 32;
    let groups: usize = if scale == 0 { 256 } else { 512 };
    let warmup: usize = if scale == 0 { 4_096 } else { 16_384 };
    let measured: usize = if scale == 0 { 8_192 } else { 32_768 };
    let thetas: &[f64] = if scale == 0 {
        &[0.0, 1.1]
    } else {
        &[0.0, 0.6, 1.1]
    };

    // Adversarial naming: the HOT highest-Zipf-rank groups get names that
    // all hash to shard 0 (searched, not assumed), the tail is named
    // naturally and lands wherever FNV puts it.
    let mut names: Vec<String> = Vec::with_capacity(groups);
    let mut i = 0usize;
    while names.len() < HOT {
        let cand = format!("h{i}");
        if shard_of_group(&cand, SHARDS) == 0 {
            names.push(cand);
        }
        i += 1;
    }
    for j in 0..groups - HOT {
        names.push(format!("t{j}"));
    }

    // One schedule per θ, shared verbatim by both placement modes:
    // (group rank, per-group chronon).
    let schedule_for = |theta: f64| -> Vec<(usize, i64)> {
        let zipf = Zipf::new(groups, theta);
        let mut rng = SmallRng::seed_from_u64(0xe18_5eed ^ theta.to_bits());
        let mut clock = vec![0i64; groups];
        (0..warmup + measured)
            .map(|_| {
                let g = zipf.sample(&mut rng);
                clock[g] += 1;
                (g, clock[g])
            })
            .collect()
    };

    let run = |schedule: &[(usize, i64)], heavy_light: bool| -> SkewRun {
        let mut db = ShardedDb::new(SHARDS).expect("in-memory shards");
        for g in &names {
            db.execute(&format!("CREATE GROUP {g}")).expect("ddl");
            db.execute(&format!(
                "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
            ))
            .expect("ddl");
            db.execute(&format!(
                "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total \
                 FROM {g}_c GROUP BY acct"
            ))
            .expect("ddl");
        }
        let feed = |db: ShardedDb, slice: &[(usize, i64)]| -> ShardedDb {
            let pipeline = ShardedPipeline::start(db, 64);
            let handle = pipeline.handle();
            for &(g, at) in slice {
                handle
                    .append_nowait(
                        &format!("{}_c", names[g]),
                        Chronon(at),
                        vec![vec![Value::Int((g % 16) as i64), Value::Float(1.0)]],
                    )
                    .expect("pipeline alive");
            }
            pipeline.shutdown()
        };
        // Phase 1 — warmup feeds the decayed per-group rate counters; the
        // pipeline shutdown barrier is the in-flight-delta drain, so the
        // rebalance below moves fully quiesced groups.
        let (w, m) = schedule.split_at(warmup);
        let mut db = feed(db, w);
        let (pause_secs, moves) = if heavy_light {
            let start = std::time::Instant::now();
            let plan = db.rebalance().expect("rebalance");
            (start.elapsed().as_secs_f64(), plan.len())
        } else {
            (0.0, 0)
        };
        let base: Vec<u64> = (0..SHARDS)
            .map(|i| db.shard(i).stats().work.total())
            .collect();
        // Phase 2 — the measured tail of the same stream.
        let db = feed(db, m);
        let deltas: Vec<u64> = (0..SHARDS)
            .map(|i| db.shard(i).stats().work.total() - base[i])
            .collect();
        SkewRun {
            deltas,
            pause_secs,
            moves,
            snapshot: db.snapshot_views(),
        }
    };

    let mut fig = Figure::new(
        "E18 — skew-resilient sharding: heavy-light placement vs adversarial hashing",
        "theta (Zipf skew)",
        "phase-2 critical-path maintenance work",
    );
    let mut crit_static = Series::new("critical-path work (static hash)");
    let mut crit_hl = Series::new("critical-path work (heavy-light)");
    let mut ratio = Series::new("skew resilience (x)");
    let mut total_static = Series::new("phase-2 total work (static hash)");
    let mut total_hl = Series::new("phase-2 total work (heavy-light)");
    let mut moves_s = Series::new("rebalance moves");
    let mut pause_s = Series::new("rebalance pause (ms)");
    let mut all_identical = true;
    for &theta in thetas {
        let schedule = schedule_for(theta);
        let st = run(&schedule, false);
        let hl = run(&schedule, true);
        all_identical &= st.snapshot == hl.snapshot;
        crit_static.push(theta, *st.deltas.iter().max().expect("shards") as f64);
        crit_hl.push(theta, *hl.deltas.iter().max().expect("shards") as f64);
        ratio.push(
            theta,
            st.deltas.iter().max().copied().unwrap_or(0) as f64
                / hl.deltas.iter().max().copied().unwrap_or(0).max(1) as f64,
        );
        total_static.push(theta, st.deltas.iter().sum::<u64>() as f64);
        total_hl.push(theta, hl.deltas.iter().sum::<u64>() as f64);
        moves_s.push(theta, hl.moves as f64);
        pause_s.push(theta, hl.pause_secs * 1e3);
    }
    fig.series = vec![
        crit_static,
        crit_hl,
        ratio,
        total_static,
        total_hl,
        moves_s,
        pause_s,
    ];
    fig.note(format!(
        "{groups} groups on {SHARDS} shards; top-{HOT} Zipf ranks co-hash to \
         shard 0; {warmup} warmup + {measured} measured appends per mode; \
         expected: at theta=1.1 heavy-light cuts the critical path >=3x while \
         total work stays bit-identical and view snapshots byte-equal; at \
         theta=0 the classifier finds no heavies and placement is untouched"
    ));
    fig.note(format!(
        "view snapshots identical across modes at every theta: {all_identical}"
    ));
    fig
}

// ===================================================================== E19

/// E19 — leader failover: fenced promotion downtime and the retry storm.
/// A durable leader executes stamped statements across sessioned clients
/// while a semi-synchronous follower mirrors its WAL; then the leader
/// dies. Three quantities: *promotion downtime* — the
/// [`FollowerDb::promote`] recovery that turns the follower into a
/// serving leader under a new fenced term; the *retry storm* a failover
/// triggers — every
/// client re-sends its newest `(session, seq)` stamp and all of them must
/// be answered from the dedupe cache without re-applying; and *fresh*
/// stamped throughput on the promoted lineage. A stale-term probe against
/// a follower of the new lineage must be refused with the typed fencing
/// error after every promotion. Exposed for `BENCH_E19.json`.
pub fn e19_failover(scale: u32) -> Figure {
    const SHARDS: usize = 2;
    const SESSIONS: u64 = 8;
    let sizes: &[usize] = if scale == 0 {
        &[400, 800, 1_600]
    } else {
        &[4_000, 8_000, 16_000]
    };
    let retries_per_session: usize = if scale == 0 { 50 } else { 400 };
    let fresh_per_session: usize = if scale == 0 { 50 } else { 400 };
    let opts = || DurabilityOptions {
        segment_bytes: 64 << 10,
        fsync: true,
        ..Default::default()
    };
    // Two group names on distinct shards mod 2 — both shards carry WAL.
    let mut names: Vec<String> = Vec::new();
    let mut taken = [false; SHARDS];
    let mut i = 0usize;
    while names.len() < SHARDS {
        let cand = format!("g{i}");
        let slot = shard_of_group(&cand, SHARDS);
        if !taken[slot] {
            taken[slot] = true;
            names.push(cand);
        }
        i += 1;
    }

    let mut fig = Figure::new(
        "E19 — leader failover: fenced promotion and retryable sessions",
        "stamped appends before the leader dies",
        "ms, stmts/sec",
    );
    let mut downtime = Series::new("promotion downtime (ms)");
    let mut retry_tp = Series::new("retry storm, answered from the dedupe cache (stmts/sec)");
    let mut fresh_tp = Series::new("fresh stamped appends after failover (stmts/sec)");
    let mut all_cached = true;
    let mut all_fenced = true;
    for &n in sizes {
        let leader_tmp = TempDir::new("e19-leader");
        let mut db = ShardedDb::open_with(leader_tmp.path(), SHARDS, opts()).expect("open");
        for g in &names {
            db.execute(&format!("CREATE GROUP {g}")).expect("ddl");
            db.execute(&format!(
                "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
            ))
            .expect("ddl");
            db.execute(&format!(
                "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total \
                 FROM {g}_c GROUP BY acct"
            ))
            .expect("ddl");
        }
        // Sessioned clients append round-robin across both groups; each
        // statement carries a `(session, seq)` stamp and each session
        // remembers its newest one — what a real client re-sends when the
        // ack is lost to a failover.
        let mut sn = vec![0u64; SHARDS];
        let mut last: Vec<(u64, String)> = vec![(0, String::new()); SESSIONS as usize];
        for i in 0..n {
            let session = (i as u64 % SESSIONS) + 1;
            let g = i % SHARDS;
            sn[g] += 1;
            let sql = format!(
                "APPEND INTO {}_c VALUES ({}, {}, {})",
                names[g],
                sn[g],
                i % 16,
                i % 9
            );
            let seq = last[session as usize - 1].0 + 1;
            db.execute_stamped(&sql, session, seq)
                .expect("stamped append");
            last[session as usize - 1] = (seq, sql);
        }

        // The follower mirrors the leader's WAL in one uninterrupted pull.
        let follower_tmp = TempDir::new("e19-follower");
        let mut follower =
            FollowerDb::open_with(follower_tmp.path(), SHARDS, opts()).expect("open follower");
        ship_until_caught_up(&db, &mut follower);

        // The leader dies; the follower is promoted. The timed region is
        // the full fenced takeover: drop the ingest plumbing, recover a
        // serving `ShardedDb` from the local files, begin the next term.
        drop(db);
        let start = std::time::Instant::now();
        let mut promoted = follower.promote().expect("promote");
        downtime.push(n as f64, start.elapsed().as_secs_f64() * 1e3);

        // A follower of the *new* lineage refuses the deposed term with
        // the typed fencing error.
        let refollow_tmp = TempDir::new("e19-refollower");
        let mut refollower =
            FollowerDb::open_with(refollow_tmp.path(), SHARDS, opts()).expect("open refollower");
        ship_until_caught_up(&promoted, &mut refollower);
        all_fenced &= matches!(
            refollower.check_leader_term(promoted.term().saturating_sub(1)),
            Err(chronicle_types::ChronicleError::Fenced { .. })
        );
        drop(refollower);

        // The retry storm: every session re-sends its newest stamp, over
        // and over. Every one must be answered from the dedupe cache —
        // counted by the session-replay statistic — with zero state
        // change.
        let before = promoted.snapshot_views();
        let replays_before = promoted.stats().session_replays;
        let start = std::time::Instant::now();
        for _ in 0..retries_per_session {
            for session in 1..=SESSIONS {
                let (seq, sql) = &last[session as usize - 1];
                promoted
                    .execute_stamped(sql, session, *seq)
                    .expect("retry answered from the dedupe cache");
            }
        }
        let storm = retries_per_session as u64 * SESSIONS;
        retry_tp.push(
            n as f64,
            storm as f64 / start.elapsed().as_secs_f64().max(1e-9),
        );
        all_cached &= promoted.snapshot_views() == before
            && promoted.stats().session_replays - replays_before == storm;

        // Fresh stamped work on the promoted lineage.
        let start = std::time::Instant::now();
        for k in 0..fresh_per_session {
            for session in 1..=SESSIONS {
                let g = k % SHARDS;
                sn[g] += 1;
                let sql = format!(
                    "APPEND INTO {}_c VALUES ({}, {}, {})",
                    names[g],
                    sn[g],
                    k % 16,
                    k % 9
                );
                let seq = last[session as usize - 1].0 + 1;
                promoted
                    .execute_stamped(&sql, session, seq)
                    .expect("fresh stamped append");
                last[session as usize - 1] = (seq, sql);
            }
        }
        fresh_tp.push(
            n as f64,
            (fresh_per_session as u64 * SESSIONS) as f64 / start.elapsed().as_secs_f64().max(1e-9),
        );
    }
    fig.series.push(downtime);
    fig.series.push(retry_tp);
    fig.series.push(fresh_tp);
    fig.note(format!(
        "{SHARDS} shards, {SESSIONS} sessions, 64 KiB segments, durable \
         leader and follower; promotion downtime is the full recover-and-\
         begin-term takeover; expected: every retry answered from the \
         dedupe cache with zero state change: {all_cached}; stale-term \
         probe fenced after every promotion: {all_fenced}"
    ));
    fig
}

/// Pump the [`Shipper`] until the follower has every leader WAL byte,
/// then record the leader's durable frontier so replication lag reads 0.
fn ship_until_caught_up(leader: &ShardedDb, follower: &mut FollowerDb) {
    let mut shipper = Shipper::new(&follower.applied_lsns(), DEFAULT_CHUNK);
    loop {
        let caught_up = {
            let follower = &mut *follower;
            shipper
                .pump(leader, &mut |ev| match ev {
                    ShipEvent::Start { shard, first_lsn } => {
                        follower.begin_segment(shard, first_lsn)
                    }
                    ShipEvent::Bytes {
                        shard,
                        offset,
                        bytes: chunk,
                        ..
                    } => follower.ingest(shard, offset, &chunk).map(|_| ()),
                    ShipEvent::Seal { shard, first_lsn } => follower.seal_segment(shard, first_lsn),
                })
                .expect("ship")
        };
        if caught_up {
            break;
        }
    }
    for shard in 0..follower.applied_lsns().len() {
        let durable = WalSource::last_durable_lsn(leader, shard).expect("leader lsn");
        follower.note_leader_durable(shard, durable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape assertions at scale 0 — fast, deterministic via work counters
    // wherever possible.

    #[test]
    fn e1_naive_grows_sca_flat() {
        let fig = e1_chronicle_size(0);
        let naive = fig.series("naive tuples read").expect("series");
        assert!(naive.growth() > 5.0, "naive work should track |C|");
        let sca = fig.series("SCA tuples touched").expect("series");
        assert!(sca.growth() < 1.5, "SCA work must not grow with |C|");
    }

    #[test]
    fn e2_matches_formula() {
        let fig = e2_ca_cost(0);
        let m = fig.series("measured (u=0)").expect("series");
        let p = fig.series("predicted (u=0)").expect("series");
        assert_eq!(m.points, p.points);
    }

    #[test]
    fn e3_product_scales_join_does_not() {
        let fig = e3_keyjoin_vs_product(0);
        assert!(fig.series("product work").expect("s").growth() > 5.0);
        assert!(fig.series("key join work").expect("s").growth() < 1.5);
    }

    #[test]
    fn e4_flat() {
        let fig = e4_ca1_constant(0);
        let s = &fig.series[0];
        let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ys.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.6, "CA₁ work must stay flat, got {min}..{max}");
    }

    #[test]
    fn e5_linear_in_t() {
        let (_, fig_t) = e5_sca_apply(0);
        let s = &fig_t.series[0];
        // Work at t=256 should be ~64x work at t=4 (allow slack for fixed
        // overheads).
        let y4 = s.points.iter().find(|&&(x, _)| x == 4.0).expect("t=4").1;
        let y256 = s
            .points
            .iter()
            .find(|&&(x, _)| x == 256.0)
            .expect("t=256")
            .1;
        let ratio = y256 / y4;
        assert!((32.0..=96.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn e6_separation() {
        let fig = e6_class_separation(0);
        assert!(fig.series("SCA₁ work").expect("s").growth() < 1.2);
        assert!(fig.series("SCA⋈ work").expect("s").growth() < 1.2);
        assert!(fig.series("SCA (product) work").expect("s").growth() > 4.0);
    }

    #[test]
    fn e7_grows_with_chronicle() {
        let fig = e7_maximality(0);
        let s = fig.series("tuples scanned per append").expect("s");
        assert!(
            s.growth() > 3.0,
            "beyond-CA maintenance must scale with |C|"
        );
        assert!(fig.notes.iter().any(|n| n.contains("Theorem 4.3")));
    }

    #[test]
    fn e10_final_agreement_and_staleness() {
        let fig = e10_tiered(0);
        let inc = fig.series("incremental correct").expect("s");
        let batch = fig.series("batch correct").expect("s");
        let active = fig.series("accounts with activity").expect("s");
        // Incremental is fully correct at every checkpoint.
        for (i, (&(_, y), &(_, total))) in inc.points.iter().zip(&active.points).enumerate() {
            assert_eq!(y, total, "checkpoint {i}");
        }
        // Batch has no answer (0 correct) before the period ends, and the
        // full answer at the end.
        assert_eq!(batch.points[0].1, 0.0);
        assert_eq!(
            batch.points.last().expect("final").1,
            active.points.last().expect("final").1
        );
    }

    #[test]
    fn e12_oracle_agreement() {
        let fig = e12_proactive(0);
        assert_eq!(fig.series[0].points[0].1, 1.0, "incremental == oracle");
        assert!(fig.notes.iter().any(|n| n.contains("retroactive")));
    }

    #[test]
    fn e15_sweeps_both_append_granularities() {
        let fig = e15_sharding(0);
        let row = fig.series("tuples/sec (row-at-a-time)").expect("series");
        let batch = fig.series("tuples/sec (batched x32)").expect("series");
        let speedup = fig.series("batch speedup (x)").expect("series");
        assert_eq!(row.points.len(), batch.points.len());
        assert_eq!(row.points.len(), speedup.points.len());
        // Fewer WAL records, fsyncs, and maintenance events per tuple:
        // batched ingest must never be slower than row-at-a-time.
        assert!(
            speedup.points.iter().all(|&(_, y)| y > 1.0),
            "batched ingest slower than row-at-a-time: {:?}",
            speedup.points
        );
    }

    #[test]
    fn e17_sweeps_both_kernel_modes() {
        let fig = e17_batch_kernels(0);
        for name in [
            "tuples/sec (vectorized)",
            "tuples/sec (scalar)",
            "kernel speedup (x)",
        ] {
            let s = fig.series(name).expect("series");
            assert_eq!(s.points.len(), 3, "scale-0 sweep covers 3 batch sizes");
            assert!(s.points.iter().all(|&(_, y)| y > 0.0));
        }
    }

    #[test]
    fn e16_lag_zero_views_identical_bytes_linear() {
        let fig = e16_replication(0);
        let lag = fig
            .series("replication lag after catch-up (records)")
            .expect("series");
        assert!(
            lag.points.iter().all(|&(_, y)| y == 0.0),
            "an uninterrupted catch-up must end at lag 0, got {:?}",
            lag.points
        );
        let shipped = fig.series("WAL bytes shipped").expect("series");
        assert!(
            shipped.growth() > 2.0,
            "shipped bytes must track history length, got {:?}",
            shipped.points
        );
        assert!(
            fig.notes.iter().any(|n| n.contains("every size: true")),
            "follower views must mirror the leader: {:?}",
            fig.notes
        );
    }

    #[test]
    fn e19_promotes_fenced_and_answers_retries_from_cache() {
        let fig = e19_failover(0);
        let downtime = fig.series("promotion downtime (ms)").expect("series");
        assert!(
            downtime.points.iter().all(|&(_, y)| y > 0.0),
            "promotion must take measurable time, got {:?}",
            downtime.points
        );
        let storm = fig
            .series("retry storm, answered from the dedupe cache (stmts/sec)")
            .expect("series");
        assert!(
            storm.points.iter().all(|&(_, y)| y > 0.0),
            "the retry storm must complete, got {:?}",
            storm.points
        );
        assert!(
            fig.notes
                .iter()
                .any(|n| n.contains("zero state change: true")),
            "every retry must be a dedupe-cache hit: {:?}",
            fig.notes
        );
        assert!(
            fig.notes
                .iter()
                .any(|n| n.contains("fenced after every promotion: true")),
            "the deposed term must be fenced: {:?}",
            fig.notes
        );
    }
}
