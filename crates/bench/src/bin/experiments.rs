//! Regenerate every derived figure (E1–E12) and print the tables that
//! EXPERIMENTS.md records.
//!
//! Usage: `cargo run -p chronicle-bench --release --bin experiments [quick]`
//! — `quick` runs the reduced (scale 0) sweeps.

use chronicle_bench::experiments as ex;
use chronicle_bench::harness::Figure;

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let scale: u32 = if quick { 0 } else { 1 };
    println!("# Chronicle data model — derived experiments (scale {scale})\n");

    for f in run_all(scale) {
        println!("{}", f.render());
    }
}

fn run_all(scale: u32) -> Vec<Figure> {
    let mut figs = Vec::new();
    eprintln!("[E1] chronicle-size sweep...");
    figs.push(ex::e1_chronicle_size(scale));
    eprintln!("[E2] CA cost model...");
    figs.push(ex::e2_ca_cost(scale));
    eprintln!("[E3] key join vs product...");
    figs.push(ex::e3_keyjoin_vs_product(scale));
    eprintln!("[E4] CA1 constant...");
    figs.push(ex::e4_ca1_constant(scale));
    eprintln!("[E5] SCA apply...");
    let (a, b) = ex::e5_sca_apply(scale);
    figs.push(a);
    figs.push(b);
    eprintln!("[E6] class separation...");
    figs.push(ex::e6_class_separation(scale));
    eprintln!("[E7] maximality...");
    figs.push(ex::e7_maximality(scale));
    eprintln!("[E8] sliding windows...");
    figs.push(ex::e8_sliding_window(scale));
    eprintln!("[E9] router...");
    figs.push(ex::e9_router(scale));
    eprintln!("[E10] tiered discounts...");
    figs.push(ex::e10_tiered(scale));
    eprintln!("[E11] throughput & latency...");
    let (a, b) = ex::e11_throughput(scale);
    figs.push(a);
    figs.push(b);
    eprintln!("[E12] proactive updates...");
    figs.push(ex::e12_proactive(scale));
    figs
}
