//! Regenerate every derived figure (E1–E12) and print the tables that
//! EXPERIMENTS.md records.
//!
//! Usage: `cargo run -p chronicle-bench --release --bin experiments [quick] [json] [E..]`
//! — `quick` runs the reduced (scale 0) sweeps; `json` skips the text
//! tables and instead writes the machine-readable `BENCH_E11.json`,
//! `BENCH_E14.json`, `BENCH_E15.json`, `BENCH_E16.json`,
//! `BENCH_E17.json`, `BENCH_E18.json`, and `BENCH_E19.json` artifacts at
//! the repo root. Naming experiments (e.g. `json E19`) restricts the
//! emission to those artifacts.

use chronicle_bench::experiments as ex;
use chronicle_bench::harness::Figure;
use chronicle_bench::json;

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let json_mode = std::env::args().any(|a| a == "json");
    let only: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a.starts_with('E'))
        .collect();
    let scale: u32 = if quick { 0 } else { 1 };
    if json_mode {
        emit_json(scale, &only);
        return;
    }
    println!("# Chronicle data model — derived experiments (scale {scale})\n");

    for f in run_all(scale) {
        println!("{}", f.render());
    }
}

/// Emit the machine-readable artifacts regression tooling diffs:
/// E11 (throughput/latency), E14 (recovery), E15 (sharding),
/// E16 (replication catch-up), E17 (vectorized kernels), E18 (skew),
/// E19 (failover). An `only` list restricts emission to those names.
fn emit_json(scale: u32, only: &[String]) {
    let wanted = |name: &str| only.is_empty() || only.iter().any(|o| o == name);
    if wanted("E11") {
        eprintln!("[E11] throughput & latency...");
        let (a, b) = ex::e11_throughput(scale);
        let p = json::emit("E11", scale, &[a, b]).expect("write BENCH_E11.json");
        println!("wrote {}", p.display());
    }
    if wanted("E14") {
        eprintln!("[E14] recovery...");
        let f = ex::e14_recovery(scale);
        let p = json::emit("E14", scale, &[f]).expect("write BENCH_E14.json");
        println!("wrote {}", p.display());
    }
    if wanted("E15") {
        eprintln!("[E15] sharding...");
        let f = ex::e15_sharding(scale);
        let p = json::emit("E15", scale, &[f]).expect("write BENCH_E15.json");
        println!("wrote {}", p.display());
    }
    if wanted("E16") {
        eprintln!("[E16] replication...");
        let f = ex::e16_replication(scale);
        let p = json::emit("E16", scale, &[f]).expect("write BENCH_E16.json");
        println!("wrote {}", p.display());
    }
    if wanted("E17") {
        eprintln!("[E17] vectorized kernels...");
        let f = ex::e17_batch_kernels(scale);
        let p = json::emit("E17", scale, &[f]).expect("write BENCH_E17.json");
        println!("wrote {}", p.display());
    }
    if wanted("E18") {
        eprintln!("[E18] skew-resilient sharding...");
        let f = ex::e18_zipf_skew(scale);
        let p = json::emit("E18", scale, &[f]).expect("write BENCH_E18.json");
        println!("wrote {}", p.display());
    }
    if wanted("E19") {
        eprintln!("[E19] leader failover...");
        let f = ex::e19_failover(scale);
        let p = json::emit("E19", scale, &[f]).expect("write BENCH_E19.json");
        println!("wrote {}", p.display());
    }
}

fn run_all(scale: u32) -> Vec<Figure> {
    let mut figs = Vec::new();
    eprintln!("[E1] chronicle-size sweep...");
    figs.push(ex::e1_chronicle_size(scale));
    eprintln!("[E2] CA cost model...");
    figs.push(ex::e2_ca_cost(scale));
    eprintln!("[E3] key join vs product...");
    figs.push(ex::e3_keyjoin_vs_product(scale));
    eprintln!("[E4] CA1 constant...");
    figs.push(ex::e4_ca1_constant(scale));
    eprintln!("[E5] SCA apply...");
    let (a, b) = ex::e5_sca_apply(scale);
    figs.push(a);
    figs.push(b);
    eprintln!("[E6] class separation...");
    figs.push(ex::e6_class_separation(scale));
    eprintln!("[E7] maximality...");
    figs.push(ex::e7_maximality(scale));
    eprintln!("[E8] sliding windows...");
    figs.push(ex::e8_sliding_window(scale));
    eprintln!("[E9] router...");
    figs.push(ex::e9_router(scale));
    eprintln!("[E10] tiered discounts...");
    figs.push(ex::e10_tiered(scale));
    eprintln!("[E11] throughput & latency...");
    let (a, b) = ex::e11_throughput(scale);
    figs.push(a);
    figs.push(b);
    eprintln!("[E12] proactive updates...");
    figs.push(ex::e12_proactive(scale));
    figs
}
