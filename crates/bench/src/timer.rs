//! A dependency-free stand-in for the Criterion benchmarking API.
//!
//! The workspace's tier-1 verify must pass offline with an empty registry,
//! so the `cargo bench` targets cannot link the external `criterion` crate.
//! This module implements the small slice of Criterion's API the E1–E12
//! bench files use — [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! and the [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — over
//! `std::time::Instant`. Timing methodology is deliberately simple (a
//! short warmup, then `sample_size` timed iterations reporting mean and
//! minimum); the statistically honest shape assertions live in
//! `experiments.rs`, which counts abstract work units instead of wall
//! time.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver handed to every bench target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, used to annotate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a swept-parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name` with `parameter` appended (`name/parameter`).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A group of measurements sharing a name and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Record the per-iteration throughput for output annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            sample: None,
        };
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Measure a closure parameterized by a swept input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            sample: None,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// End the group (parity with Criterion; output is already printed).
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        match &b.sample {
            None => println!("  {}/{label}: no measurement taken", self.name),
            Some(s) => {
                let mean = s.total.as_nanos() as f64 / s.iters as f64;
                let min = s.min.as_nanos();
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if mean > 0.0 => {
                        format!(", {:.0} elem/s", n as f64 * 1e9 / mean)
                    }
                    Some(Throughput::Bytes(n)) if mean > 0.0 => {
                        format!(", {:.0} B/s", n as f64 * 1e9 / mean)
                    }
                    _ => String::new(),
                };
                println!(
                    "  {}/{label}: mean {mean:.0} ns, min {min} ns over {} iters{rate}",
                    self.name, s.iters
                );
            }
        }
    }
}

#[derive(Debug)]
struct Sample {
    iters: u64,
    total: Duration,
    min: Duration,
}

/// Runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: u64,
    sample: Option<Sample>,
}

impl Bencher {
    /// Time `f`: a two-iteration warmup, then `sample_size` timed runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.sample = Some(Sample {
            iters: self.sample_size,
            total,
            min,
        });
    }
}

/// Declare a bench group function from target functions, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::timer::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 2 warmup + 5 timed.
        assert_eq!(runs, 7);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut seen = 0i64;
        group.bench_with_input(BenchmarkId::new("id", 42), &42i64, |b, &n| {
            b.iter(|| {
                seen = n;
                n
            })
        });
        assert_eq!(seen, 42);
    }
}
