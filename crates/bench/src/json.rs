//! Machine-readable benchmark artifacts (`BENCH_*.json`).
//!
//! The text tables the `experiments` binary prints are for humans;
//! regression tooling wants numbers it can diff without parsing markdown.
//! This module serialises [`Figure`]s into a small hand-rolled JSON
//! writer (the tier-1 build is offline, so no serde) and writes one
//! `BENCH_<EXP>.json` file per experiment at the repository root.
//!
//! Schema, stable across runs:
//!
//! ```json
//! {
//!   "experiment": "E11",
//!   "scale": 0,
//!   "unix_time_secs": 1754600000,
//!   "figures": [
//!     { "title": "...", "x_label": "...", "y_label": "...",
//!       "notes": ["..."],
//!       "series": [ { "name": "...", "points": [[x, y], ...],
//!                     "growth": 1.02 } ] }
//!   ]
//! }
//! ```
//!
//! Non-finite numbers (a `growth()` of an empty series is NaN) render as
//! `null` so consumers never see bare `NaN` tokens.

use std::path::{Path, PathBuf};

use crate::harness::{Figure, Series};

/// A JSON value. Object keys keep insertion order — emission is
/// deterministic, so artifact diffs are meaningful.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line (point pairs read as
                // `[x, y]`); arrays with any nested structure break.
                let flat = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        pad(out, indent + 1);
                        item.write(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialise one series: name, points, and the first-to-last growth
/// factor the shape assertions test.
fn series_json(s: &Series) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.clone())),
        (
            "points".into(),
            Json::Arr(
                s.points
                    .iter()
                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                    .collect(),
            ),
        ),
        ("growth".into(), Json::Num(s.growth())),
    ])
}

/// Serialise one figure.
pub fn figure_json(f: &Figure) -> Json {
    Json::Obj(vec![
        ("title".into(), Json::Str(f.title.clone())),
        ("x_label".into(), Json::Str(f.x_label.clone())),
        ("y_label".into(), Json::Str(f.y_label.clone())),
        (
            "notes".into(),
            Json::Arr(f.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        (
            "series".into(),
            Json::Arr(f.series.iter().map(series_json).collect()),
        ),
    ])
}

/// The repository root: two directories above this crate's manifest
/// (`crates/bench` → `crates` → the root).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

/// Build the artifact document for one experiment run.
pub fn experiment_doc(experiment: &str, scale: u32, figures: &[Figure]) -> Json {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Json::Obj(vec![
        ("experiment".into(), Json::Str(experiment.to_string())),
        ("scale".into(), Json::Num(scale as f64)),
        ("unix_time_secs".into(), Json::Num(now as f64)),
        (
            "figures".into(),
            Json::Arr(figures.iter().map(figure_json).collect()),
        ),
    ])
}

/// Write `BENCH_<experiment>.json` at the repo root and return its path.
pub fn emit(experiment: &str, scale: u32, figures: &[Figure]) -> std::io::Result<PathBuf> {
    let doc = experiment_doc(experiment, scale, figures);
    let path = repo_root().join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, doc.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Num(3.0).render(), "3\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn strings_escape() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn arrays_of_scalars_stay_flat() {
        let j = Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]);
        assert_eq!(j.render(), "[1, 2.5]\n");
    }

    #[test]
    fn figure_serialises_with_points_and_growth() {
        let mut f = Figure::new("E0 — demo", "n", "ns");
        let mut s = Series::new("flat");
        s.push(10.0, 5.0);
        s.push(100.0, 10.0);
        f.series.push(s);
        f.note("expected flat");
        let out = figure_json(&f).render();
        assert!(out.contains("\"title\": \"E0 — demo\""));
        assert!(out.contains("[10, 5]"));
        assert!(out.contains("[100, 10]"));
        assert!(out.contains("\"growth\": 2"));
        assert!(out.contains("\"expected flat\""));
    }

    #[test]
    fn empty_series_growth_is_null() {
        let mut f = Figure::new("E0", "n", "ns");
        f.series.push(Series::new("empty"));
        let out = figure_json(&f).render();
        assert!(out.contains("\"growth\": null"));
        assert!(out.contains("\"points\": []"));
    }

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn experiment_doc_carries_metadata() {
        let out = experiment_doc("E99", 0, &[]).render();
        assert!(out.contains("\"experiment\": \"E99\""));
        assert!(out.contains("\"scale\": 0"));
        assert!(out.contains("\"figures\": []"));
    }
}
