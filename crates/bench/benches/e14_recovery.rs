//! E14 — crash-recovery time vs chronicle length, and group-commit
//! throughput.
//!
//! The durability claim mirrors the paper's maintenance claim (Prop. 3.1):
//! just as per-append maintenance must not depend on |C|, recovery must
//! not either. A checkpoint persists the views (O(|V|)); recovery loads it
//! and replays only the WAL tail. With the tail length fixed, recovery
//! time must stay flat while the pre-checkpoint chronicle grows 16×.
//!
//! The second group measures the group-commit pipeline: concurrent
//! producers submitting durable appends share one WAL flush per burst, so
//! aggregate throughput should not collapse as producers are added.

use chronicle_bench::timer::{BenchmarkId, Criterion, Throughput};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_db::pipeline::Pipeline;
use chronicle_db::ChronicleDb;
use chronicle_testkit::TempDir;
use chronicle_types::{Chronon, Value};
use chronicle_workload::AtmGen;

/// WAL-tail records left beyond the checkpoint in every recovery case.
const TAIL: usize = 1_000;

fn apply_ddl(db: &mut ChronicleDb) {
    db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
        .unwrap();
    db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
        .unwrap();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_recovery");
    group.sample_size(10);
    for &n in &[10_000usize, 40_000, 160_000] {
        // Build a database with |C| = n + TAIL appends, checkpointed at n:
        // recovery always replays exactly TAIL records.
        let tmp = TempDir::new("e14-recovery");
        {
            let mut db = ChronicleDb::open(tmp.path()).unwrap();
            apply_ddl(&mut db);
            let mut gen = AtmGen::new(1, 100);
            for i in 0..n {
                let row = gen.next_row();
                db.append(
                    "atm",
                    Chronon(i as i64),
                    &[vec![row[0].clone(), row[1].clone()]],
                )
                .unwrap();
            }
            db.checkpoint().unwrap();
            for i in 0..TAIL {
                let row = gen.next_row();
                db.append(
                    "atm",
                    Chronon((n + i) as i64),
                    &[vec![row[0].clone(), row[1].clone()]],
                )
                .unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("open_fixed_tail", n), &n, |b, _| {
            b.iter(|| {
                let db = ChronicleDb::open(tmp.path()).unwrap();
                assert_eq!(db.stats().recovery_replayed_records as usize, TAIL);
                db
            });
        });
    }
    group.finish();
}

fn bench_group_commit(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("e14_group_commit");
    group.sample_size(5);
    group.throughput(Throughput::Elements(OPS as u64));
    for &producers in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("durable_producers", producers),
            &producers,
            |b, &p| {
                b.iter(|| {
                    let tmp = TempDir::new("e14-gc");
                    let mut db = ChronicleDb::open(tmp.path()).unwrap();
                    apply_ddl(&mut db);
                    let pipe = Pipeline::start(db, 256);
                    let mut joins = Vec::new();
                    for t in 0..p {
                        let h = pipe.handle();
                        joins.push(std::thread::spawn(move || {
                            for _ in 0..OPS / p {
                                // Chronons repeat across producers: group
                                // monotonicity is on sequence numbers, and
                                // interleaved threads must not step the
                                // clock backwards.
                                h.append(
                                    "atm",
                                    Chronon(0),
                                    vec![vec![Value::Int(t as i64), Value::Float(1.0)]],
                                )
                                .unwrap();
                            }
                        }));
                    }
                    for j in joins {
                        j.join().unwrap();
                    }
                    let db = pipe.shutdown();
                    // Group commit: far fewer flushes than durable records.
                    assert!(db.stats().wal_flushes <= db.stats().wal_records);
                    db.stats().wal_flushes
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery, bench_group_commit);
criterion_main!(benches);
