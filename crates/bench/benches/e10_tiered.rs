//! E10 — incremental tiered-discount maintenance per transaction.

use chronicle_bench::timer::Criterion;
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_types::Value;
use chronicle_views::{BatchDiscount, TierSchedule};
use chronicle_workload::CallGen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_tiered");
    group.bench_function("incremental_apply", |b| {
        let mut s = TierSchedule::us_telephone_1995();
        let mut gen = CallGen::new(1, 500);
        b.iter(|| {
            let row = gen.next_row();
            s.apply(&[row[0].clone()], row[3].as_float().unwrap())
        });
    });
    group.bench_function("batch_compute_10k", |b| {
        let s = TierSchedule::us_telephone_1995();
        let mut batch = BatchDiscount::new(&s);
        let mut gen = CallGen::new(1, 500);
        for _ in 0..10_000 {
            let row = gen.next_row();
            batch.record(&[row[0].clone()], row[3].as_float().unwrap());
        }
        b.iter(|| batch.compute());
    });
    group.bench_function("incremental_point_query", |b| {
        let mut s = TierSchedule::us_telephone_1995();
        let mut gen = CallGen::new(1, 500);
        for _ in 0..10_000 {
            let row = gen.next_row();
            s.apply(&[row[0].clone()], row[3].as_float().unwrap());
        }
        let key = [Value::Int(7)];
        b.iter(|| s.get(&key));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
