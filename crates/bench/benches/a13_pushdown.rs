//! A13 (ablation) — selection pushdown: delta cost of a selective
//! predicate over a chronicle×relation product, optimized vs. not.
//!
//! Unoptimized, every appended tuple is multiplied by |R| before the
//! filter runs; optimized, the filter runs at the base and the product
//! only sees survivors.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::rewrite::optimize;
use chronicle_algebra::{CaExpr, CmpOp, Predicate, RelationRef, WorkCounter};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Schema, SeqNo, Tuple, Value};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a13_pushdown");
    for &r in &[1_000i64, 100_000] {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("k", AttrType::Int),
                Attribute::new("v", AttrType::Float),
            ],
            "sn",
        )
        .unwrap();
        let chron = cat.create_chronicle("c", g, cs, Retention::None).unwrap();
        let rs = Schema::relation_with_key(
            vec![
                Attribute::new("k", AttrType::Int),
                Attribute::new("w", AttrType::Float),
            ],
            &["k"],
        )
        .unwrap();
        let rel = cat.create_relation("r", rs.clone()).unwrap();
        for i in 0..r {
            cat.relation_insert(rel, g, Tuple::new(vec![Value::Int(i), Value::Float(0.1)]))
                .unwrap();
        }
        let rel_ref = RelationRef::new(rel, rs, "r");
        // σ(v > 100) above the product — selective: the batch tuple fails it.
        let base = CaExpr::chronicle(cat.chronicle(chron));
        let product = base.product(rel_ref).unwrap();
        let pred = Predicate::attr_cmp_const(product.schema(), "v", CmpOp::Gt, Value::Float(100.0))
            .unwrap();
        let unopt = product.select(pred).unwrap();
        let opt = optimize(&unopt).unwrap();
        let engine = DeltaEngine::new(&cat);
        let batch = DeltaBatch {
            chronicle: chron,
            seq: SeqNo(1),
            tuples: vec![Tuple::new(vec![
                Value::Seq(SeqNo(1)),
                Value::Int(7),
                Value::Float(1.0),
            ])],
        };
        group.bench_with_input(BenchmarkId::new("unoptimized", r), &r, |b, _| {
            b.iter(|| {
                let mut w = WorkCounter::default();
                engine.delta_ca(&unopt, &batch, &mut w).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("pushed_down", r), &r, |b, _| {
            b.iter(|| {
                let mut w = WorkCounter::default();
                engine.delta_ca(&opt, &batch, &mut w).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
