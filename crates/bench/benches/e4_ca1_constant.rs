//! E4 — CA₁ change computation is constant time regardless of how much
//! history has flowed through the chronicle.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::{AggFunc, AggSpec, CaExpr, CmpOp, Predicate, ScaExpr, WorkCounter};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Schema, SeqNo, Tuple, Value};

fn bench(c: &mut Criterion) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let chron = cat
        .create_chronicle("calls", g, cs, Retention::None)
        .unwrap();
    let base = CaExpr::chronicle(cat.chronicle(chron));
    let p =
        Predicate::attr_cmp_const(base.schema(), "minutes", CmpOp::Gt, Value::Float(1.0)).unwrap();
    let expr = ScaExpr::group_agg(
        base.select(p).unwrap(),
        &["caller"],
        vec![AggSpec::new(AggFunc::CountStar, "n")],
    )
    .unwrap();
    let engine = DeltaEngine::new(&cat);
    let mut group = c.benchmark_group("e4_ca1_constant");
    // "History" is simulated by the sequence number: CA₁ deltas cannot
    // depend on it, so the three points must coincide.
    for &seq in &[1u64, 1_000_000, 1_000_000_000] {
        let batch = DeltaBatch {
            chronicle: chron,
            seq: SeqNo(seq),
            tuples: vec![Tuple::new(vec![
                Value::Seq(SeqNo(seq)),
                Value::Int(7),
                Value::Float(2.0),
            ])],
        };
        group.bench_with_input(BenchmarkId::new("delta", seq), &seq, |b, _| {
            b.iter(|| {
                let mut w = WorkCounter::default();
                engine.delta_sca(&expr, &batch, &mut w).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
