//! E7 — beyond-CA maintenance: C₁ ⋈_θ C₂ per-append cost grows with |C|.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::CmpOp;
use chronicle_db::baseline::StoredThetaJoinCount;
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Chronon, Schema, SeqNo, Tuple, Value};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_maximality");
    group.sample_size(10);
    for &n in &[1_000usize, 16_000] {
        let mut cat = Catalog::new();
        let g = cat.create_group("g").unwrap();
        let cs = Schema::chronicle(
            vec![
                Attribute::new("sn", AttrType::Seq),
                Attribute::new("v", AttrType::Int),
            ],
            "sn",
        )
        .unwrap();
        let a = cat
            .create_chronicle("a", g, cs.clone(), Retention::All)
            .unwrap();
        let b_id = cat.create_chronicle("b", g, cs, Retention::All).unwrap();
        let mut seq = 0u64;
        for i in 0..n {
            seq += 1;
            cat.append_at(
                a,
                SeqNo(seq),
                Chronon(seq as i64),
                &[Tuple::new(vec![
                    Value::Seq(SeqNo(seq)),
                    Value::Int(i as i64),
                ])],
            )
            .unwrap();
            seq += 1;
            cat.append_at(
                b_id,
                SeqNo(seq),
                Chronon(seq as i64),
                &[Tuple::new(vec![
                    Value::Seq(SeqNo(seq)),
                    Value::Int(i as i64),
                ])],
            )
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("theta_join_append", n), &n, |bch, _| {
            let mut joined = StoredThetaJoinCount::new(a, b_id, (1, CmpOp::Lt, 1));
            let t = vec![Tuple::new(vec![Value::Seq(SeqNo(seq)), Value::Int(42)])];
            bch.iter(|| {
                // Maintenance work for one append to `a`: scan stored b.
                joined.on_append(&cat, a, &t).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
