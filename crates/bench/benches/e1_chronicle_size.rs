//! E1 — per-append maintenance vs chronicle size (Prop. 3.1): SCA stays
//! flat while naive recomputation grows with |C|.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::{AggFunc, AggSpec, CaExpr, ScaExpr};
use chronicle_db::baseline::NaiveRecomputeView;
use chronicle_db::ChronicleDb;
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Chronon, Schema, SeqNo, Tuple, Value};
use chronicle_workload::AtmGen;

fn atm_schema() -> Schema {
    Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("acct", AttrType::Int),
            Attribute::new("amount", AttrType::Float),
        ],
        "sn",
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_chronicle_size");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        // SCA incremental append at chronicle size n.
        group.bench_with_input(BenchmarkId::new("sca_append", n), &n, |b, &n| {
            let mut db = ChronicleDb::new();
            db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
                .unwrap();
            db.execute(
                "CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct",
            )
            .unwrap();
            let mut gen = AtmGen::new(1, 512);
            for i in 0..n {
                let r = gen.next_row();
                db.append(
                    "atm",
                    Chronon(i as i64),
                    &[vec![r[0].clone(), r[1].clone()]],
                )
                .unwrap();
            }
            let mut t = n as i64;
            b.iter(|| {
                let r = gen.next_row();
                t += 1;
                db.append("atm", Chronon(t), &[vec![r[0].clone(), r[1].clone()]])
                    .unwrap();
            });
        });
        // Naive recompute at chronicle size n.
        group.bench_with_input(BenchmarkId::new("naive_recompute", n), &n, |b, &n| {
            let mut cat = Catalog::new();
            let g = cat.create_group("g").unwrap();
            let c = cat
                .create_chronicle("atm", g, atm_schema(), Retention::All)
                .unwrap();
            let mut gen = AtmGen::new(1, 512);
            for i in 0..n {
                let r = gen.next_row();
                let seq = SeqNo(i as u64 + 1);
                cat.append_at(
                    c,
                    seq,
                    Chronon(i as i64),
                    &[Tuple::new(vec![
                        Value::Seq(seq),
                        r[0].clone(),
                        r[1].clone(),
                    ])],
                )
                .unwrap();
            }
            let expr = ScaExpr::group_agg(
                CaExpr::chronicle(cat.chronicle(c)),
                &["acct"],
                vec![AggSpec::new(AggFunc::Sum(2), "b")],
            )
            .unwrap();
            let mut naive = NaiveRecomputeView::new(expr);
            b.iter(|| naive.refresh(&cat).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
