//! E12 — proactive relation updates: maintenance cost of appends that
//! follow interleaved relation updates, plus version_at reconstruction.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_db::ChronicleDb;
use chronicle_types::{Chronon, SeqNo, Value};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_proactive");
    group.sample_size(20);
    group.bench_function("append_after_updates", |b| {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE flights (sn SEQ, acct INT, miles INT)")
            .unwrap();
        db.execute("CREATE RELATION customers (acct INT, state STRING, PRIMARY KEY (acct))")
            .unwrap();
        for a in 0..100i64 {
            db.execute(&format!("INSERT INTO customers VALUES ({a}, 'NJ')"))
                .unwrap();
        }
        db.execute(
            "CREATE VIEW nj AS SELECT acct, SUM(miles) AS m FROM flights \
             JOIN customers ON acct = acct WHERE state = 'NJ' GROUP BY acct",
        )
        .unwrap();
        let mut t = 0i64;
        b.iter(|| {
            t += 1;
            let a = t % 100;
            let s = if t % 2 == 0 { "NY" } else { "NJ" };
            db.execute(&format!(
                "UPDATE customers SET state = '{s}' WHERE acct = {a}"
            ))
            .unwrap();
            db.append(
                "flights",
                Chronon(t),
                &[vec![Value::Int(a), Value::Int(500)]],
            )
            .unwrap()
        });
    });
    for &updates in &[100usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("version_at_reconstruction", updates),
            &updates,
            |b, &updates| {
                let mut db = ChronicleDb::new();
                db.execute("CREATE CHRONICLE flights (sn SEQ, acct INT, miles INT)")
                    .unwrap();
                db.execute(
                    "CREATE RELATION customers (acct INT, state STRING, PRIMARY KEY (acct))",
                )
                .unwrap();
                for a in 0..100i64 {
                    db.execute(&format!("INSERT INTO customers VALUES ({a}, 'NJ')"))
                        .unwrap();
                }
                for t in 0..updates {
                    let a = (t % 100) as i64;
                    let s = if t % 2 == 0 { "NY" } else { "NJ" };
                    db.execute(&format!(
                        "UPDATE customers SET state = '{s}' WHERE acct = {a}"
                    ))
                    .unwrap();
                    db.append(
                        "flights",
                        Chronon(t as i64),
                        &[vec![Value::Int(a), Value::Int(1)]],
                    )
                    .unwrap();
                }
                let rid = db.catalog().relation_id("customers").unwrap();
                let mid = SeqNo(updates as u64 / 2);
                b.iter(|| db.catalog().relation(rid).version_at(mid).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
