//! E5 — Theorem 4.4: applying summarized deltas costs O(t log |V|).

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::{AggFunc, AggSpec, CaExpr, ScaExpr};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Chronon, Schema, SeqNo, Tuple, Value};
use chronicle_views::{AppendEvent, Maintainer};

fn setup(groups: usize) -> (Catalog, chronicle_types::ChronicleId, Maintainer, u64) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let chron = cat
        .create_chronicle("calls", g, cs, Retention::None)
        .unwrap();
    let expr = ScaExpr::group_agg(
        CaExpr::chronicle(cat.chronicle(chron)),
        &["caller"],
        vec![AggSpec::new(AggFunc::Sum(2), "m")],
    )
    .unwrap();
    let mut m = Maintainer::new();
    m.register("v", expr).unwrap();
    let mut seq = 0u64;
    for i in 0..groups {
        seq += 1;
        let ev = AppendEvent {
            chronicle: chron,
            seq: SeqNo(seq),
            chronon: Chronon(seq as i64),
            tuples: vec![Tuple::new(vec![
                Value::Seq(SeqNo(seq)),
                Value::Int(i as i64),
                Value::Float(1.0),
            ])],
        };
        m.on_append(&cat, &ev).unwrap();
    }
    (cat, chron, m, seq)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sca_apply");
    group.sample_size(30);
    for &v in &[1_000usize, 100_000] {
        let (cat, chron, mut m, mut seq) = setup(v);
        group.bench_with_input(BenchmarkId::new("view_size", v), &v, |b, &v| {
            b.iter(|| {
                seq += 1;
                let ev = AppendEvent {
                    chronicle: chron,
                    seq: SeqNo(seq),
                    chronon: Chronon(seq as i64),
                    tuples: vec![Tuple::new(vec![
                        Value::Seq(SeqNo(seq)),
                        Value::Int((seq % v as u64) as i64),
                        Value::Float(1.0),
                    ])],
                };
                m.on_append(&cat, &ev).unwrap()
            });
        });
    }
    for &t in &[1usize, 64, 512] {
        let (cat, chron, mut m, mut seq) = setup(1_000);
        group.bench_with_input(BenchmarkId::new("batch_size", t), &t, |b, &t| {
            b.iter(|| {
                seq += 1;
                let tuples: Vec<Tuple> = (0..t)
                    .map(|i| {
                        Tuple::new(vec![
                            Value::Seq(SeqNo(seq)),
                            Value::Int(i as i64),
                            Value::Float(1.0),
                        ])
                    })
                    .collect();
                let ev = AppendEvent {
                    chronicle: chron,
                    seq: SeqNo(seq),
                    chronon: Chronon(seq as i64),
                    tuples,
                };
                m.on_append(&cat, &ev).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
