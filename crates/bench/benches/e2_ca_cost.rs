//! E2 — Theorem 4.2 cost model: delta computation time as products (j) and
//! unions (u) grow.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::{CaExpr, CmpOp, Predicate, RelationRef, WorkCounter};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Schema, SeqNo, Tuple, Value};

fn setup(rel_size: i64) -> (Catalog, chronicle_types::ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let c = cat
        .create_chronicle("calls", g, cs, Retention::None)
        .unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("acct", AttrType::Int),
            Attribute::new("rate", AttrType::Float),
        ],
        &["acct"],
    )
    .unwrap();
    let r = cat.create_relation("rates", rs.clone()).unwrap();
    for i in 0..rel_size {
        cat.relation_insert(r, g, Tuple::new(vec![Value::Int(i), Value::Float(0.1)]))
            .unwrap();
    }
    (cat, c, RelationRef::new(r, rs, "rates"))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_ca_cost");
    for j in 0..=3u32 {
        for u in 0..=1u32 {
            let (cat, chron, rel) = setup(4);
            let base = CaExpr::chronicle(cat.chronicle(chron));
            let mut expr = base.clone();
            for k in 0..u {
                let p = Predicate::attr_cmp_const(
                    base.schema(),
                    "minutes",
                    CmpOp::Gt,
                    Value::Float(-(k as f64) - 1.0),
                )
                .unwrap();
                expr = expr.union(base.clone().select(p).unwrap()).unwrap();
            }
            for _ in 0..j {
                expr = expr.product(rel.clone()).unwrap();
            }
            let engine = DeltaEngine::new(&cat);
            let batch = DeltaBatch {
                chronicle: chron,
                seq: SeqNo(1),
                tuples: vec![Tuple::new(vec![
                    Value::Seq(SeqNo(1)),
                    Value::Int(7),
                    Value::Float(1.0),
                ])],
            };
            group.bench_function(BenchmarkId::new(format!("u{u}"), format!("j{j}")), |b| {
                b.iter(|| {
                    let mut w = WorkCounter::default();
                    engine.delta_ca(&expr, &batch, &mut w).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
