//! E9 — affected-view routing vs maintaining every view.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::{AggFunc, AggSpec, CaExpr, CmpOp, Predicate, ScaExpr};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Chronon, Schema, SeqNo, Tuple, Value};
use chronicle_views::{AppendEvent, Maintainer, RouteMode};

fn setup(views: usize, mode: RouteMode) -> (Catalog, chronicle_types::ChronicleId, Maintainer) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let c = cat
        .create_chronicle("calls", g, cs, Retention::None)
        .unwrap();
    let mut m = Maintainer::new();
    m.set_route_mode(mode);
    let base = CaExpr::chronicle(cat.chronicle(c));
    for i in 0..views {
        let p = Predicate::attr_cmp_const(base.schema(), "caller", CmpOp::Eq, Value::Int(i as i64))
            .unwrap();
        let expr = ScaExpr::group_agg(
            base.clone().select(p).unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .unwrap();
        m.register(&format!("v{i}"), expr).unwrap();
    }
    (cat, c, m)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_router");
    group.sample_size(20);
    for &k in &[64usize, 1_024] {
        for (label, mode) in [
            ("routed", RouteMode::Routed),
            ("scan_all", RouteMode::ScanAll),
        ] {
            let (cat, chron, mut m) = setup(k, mode);
            let mut seq = 0u64;
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, &k| {
                b.iter(|| {
                    seq += 1;
                    let ev = AppendEvent {
                        chronicle: chron,
                        seq: SeqNo(seq),
                        chronon: Chronon(seq as i64),
                        tuples: vec![Tuple::new(vec![
                            Value::Seq(SeqNo(seq)),
                            Value::Int((seq % k as u64) as i64),
                            Value::Float(1.0),
                        ])],
                    };
                    m.on_append(&cat, &ev).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
