//! E3 — CA⋈ key join (log |R|) vs CA product (linear |R|) per append.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::delta::{DeltaBatch, DeltaEngine};
use chronicle_algebra::{AggFunc, AggSpec, CaExpr, RelationRef, ScaExpr, WorkCounter};
use chronicle_store::{Catalog, Retention};
use chronicle_types::{AttrType, Attribute, Schema, SeqNo, Tuple, Value};

fn setup(rel_size: i64) -> (Catalog, chronicle_types::ChronicleId, RelationRef) {
    let mut cat = Catalog::new();
    let g = cat.create_group("g").unwrap();
    let cs = Schema::chronicle(
        vec![
            Attribute::new("sn", AttrType::Seq),
            Attribute::new("caller", AttrType::Int),
            Attribute::new("minutes", AttrType::Float),
        ],
        "sn",
    )
    .unwrap();
    let c = cat
        .create_chronicle("calls", g, cs, Retention::None)
        .unwrap();
    let rs = Schema::relation_with_key(
        vec![
            Attribute::new("acct", AttrType::Int),
            Attribute::new("rate", AttrType::Float),
        ],
        &["acct"],
    )
    .unwrap();
    let r = cat.create_relation("rates", rs.clone()).unwrap();
    for i in 0..rel_size {
        cat.relation_insert(r, g, Tuple::new(vec![Value::Int(i), Value::Float(0.1)]))
            .unwrap();
    }
    (cat, c, RelationRef::new(r, rs, "rates"))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_keyjoin_vs_product");
    group.sample_size(20);
    for &r in &[100i64, 10_000, 100_000] {
        let (cat, chron, rel) = setup(r);
        let batch = DeltaBatch {
            chronicle: chron,
            seq: SeqNo(1),
            tuples: vec![Tuple::new(vec![
                Value::Seq(SeqNo(1)),
                Value::Int(7),
                Value::Float(1.0),
            ])],
        };
        let join = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(chron))
                .join_rel_key(rel.clone(), &["caller"])
                .unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .unwrap();
        let prod = ScaExpr::group_agg(
            CaExpr::chronicle(cat.chronicle(chron))
                .product(rel.clone())
                .unwrap(),
            &["caller"],
            vec![AggSpec::new(AggFunc::Sum(2), "m")],
        )
        .unwrap();
        let engine = DeltaEngine::new(&cat);
        group.bench_with_input(BenchmarkId::new("key_join", r), &r, |b, _| {
            b.iter(|| {
                let mut w = WorkCounter::default();
                engine.delta_sca(&join, &batch, &mut w).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("product", r), &r, |b, _| {
            b.iter(|| {
                let mut w = WorkCounter::default();
                engine.delta_sca(&prod, &batch, &mut w).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
