//! E8 — cyclic-buffer sliding windows vs per-window periodic views.

use chronicle_bench::timer::{BenchmarkId, Criterion};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_algebra::AggFunc;
use chronicle_types::{Chronon, Tuple, Value};
use chronicle_views::SlidingWindow;
use chronicle_workload::TradeGen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_sliding_window");
    for &w in &[30usize, 365] {
        group.bench_with_input(BenchmarkId::new("cyclic_insert", w), &w, |b, &w| {
            let mut win =
                SlidingWindow::new(Chronon(0), w, 1, vec![0], vec![AggFunc::Sum(1)]).unwrap();
            let mut gen = TradeGen::new(1);
            let mut t = 0i64;
            b.iter(|| {
                let row = gen.next_row();
                win.insert(
                    Chronon(t),
                    &Tuple::new(vec![row[0].clone(), row[1].clone()]),
                )
                .unwrap();
                t += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("cyclic_query", w), &w, |b, &w| {
            let mut win =
                SlidingWindow::new(Chronon(0), w, 1, vec![0], vec![AggFunc::Sum(1)]).unwrap();
            let mut gen = TradeGen::new(1);
            for t in 0..(w as i64 * 3) {
                let row = gen.next_row();
                win.insert(
                    Chronon(t),
                    &Tuple::new(vec![row[0].clone(), row[1].clone()]),
                )
                .unwrap();
            }
            let key = [Value::str("T")];
            let now = Chronon(w as i64 * 3);
            b.iter(|| win.query(&key, now).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
