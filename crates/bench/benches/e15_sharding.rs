//! E15 — sharded maintenance scaling: durable append throughput as the
//! catalog is hash-partitioned into 1, 2, 4, and 8 shards.
//!
//! The workload is the one the sharding design targets: many chronicle
//! groups, a fixed per-group view set, durable (fsync'd) group commit,
//! and one producer per group feeding the pipeline with `append_nowait`.
//! A small per-shard channel keeps commit bursts short, so the single
//!-shard engine is stalled on fsync for most of the run; with N shards
//! one shard's fsync overlaps every other shard's maintenance and fsyncs
//! (independent files), which is where the speedup comes from — Thm 4.1
//! guarantees the shards never need to coordinate.
//!
//! Groups are chosen so their FNV hashes land in distinct residues mod 8,
//! making the assignment perfectly balanced at every swept shard count.

use chronicle_bench::timer::{BenchmarkId, Criterion, Throughput};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_db::pipeline::ShardedPipeline;
use chronicle_db::{shard_of_group, DurabilityOptions, ShardedDb};
use chronicle_testkit::TempDir;
use chronicle_types::{Chronon, Value};

const GROUPS: usize = 8;
const OPS_PER_GROUP: usize = 2_000;
const OPS: usize = GROUPS * OPS_PER_GROUP;
/// Per-shard channel capacity; it doubles as the group-commit window, so
/// each fsync covers at most this many appends — a latency-sensitive
/// durable deployment bounds commit latency exactly this way. This is
/// what makes the single-shard engine fsync-stall-bound.
const CAPACITY: usize = 4;

/// Group names whose hashes are pairwise distinct mod 8: balanced shard
/// assignment for every n in {1, 2, 4, 8}.
fn group_names() -> Vec<String> {
    let mut names = Vec::new();
    let mut taken = [false; 8];
    let mut i = 0usize;
    while names.len() < GROUPS {
        let cand = format!("g{i}");
        let slot = shard_of_group(&cand, 8);
        if !taken[slot] {
            taken[slot] = true;
            names.push(cand);
        }
        i += 1;
    }
    names
}

fn setup(root: &std::path::Path, shards: usize) -> ShardedDb {
    let opts = DurabilityOptions {
        fsync: true,
        ..Default::default()
    };
    let mut db = ShardedDb::open_with(root, shards, opts).unwrap();
    for g in group_names() {
        db.execute(&format!("CREATE GROUP {g}")).unwrap();
        db.execute(&format!(
            "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total FROM {g}_c GROUP BY acct"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE VIEW {g}_n AS SELECT acct, COUNT(*) AS n FROM {g}_c GROUP BY acct"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE VIEW {g}_max AS SELECT acct, MAX(amount) AS hi FROM {g}_c GROUP BY acct"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE VIEW {g}_big AS SELECT acct, SUM(amount) AS b FROM {g}_c \
             WHERE amount > 5.0 GROUP BY acct"
        ))
        .unwrap();
    }
    db
}

/// One full durable run: producers fan out, pipeline drains, shutdown
/// waits for every shard's final group commit. Returns the recovered
/// database so the caller can read per-shard stats.
fn run_round(shards: usize) -> ShardedDb {
    let tmp = TempDir::new("e15-sharding");
    let db = setup(tmp.path(), shards);
    let pipeline = ShardedPipeline::start(db, CAPACITY);
    let handle = pipeline.handle();
    std::thread::scope(|scope| {
        for g in group_names() {
            let handle = handle.clone();
            scope.spawn(move || {
                let chron = format!("{g}_c");
                for i in 0..OPS_PER_GROUP {
                    handle
                        .append_nowait(
                            &chron,
                            Chronon(i as i64 + 1),
                            vec![vec![
                                Value::Int((i % 16) as i64),
                                Value::Float(i as f64 % 9.0),
                            ]],
                        )
                        .unwrap();
                }
            });
        }
    });
    pipeline.shutdown()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_sharding");
    group
        .sample_size(5)
        .throughput(Throughput::Elements(OPS as u64));
    for &shards in &[1usize, 2, 4, 8] {
        let mut p99 = 0u64;
        let mut flushes = 0u64;
        let mut total_work = 0u64;
        let mut critical_work = 0u64;
        group.bench_with_input(
            BenchmarkId::new("durable_append", shards),
            &shards,
            |b, &s| {
                b.iter(|| {
                    let db = run_round(s);
                    p99 = (0..s)
                        .map(|i| db.shard(i).stats().latency_percentile(0.99))
                        .max()
                        .unwrap_or(0);
                    flushes = db.stats().wal_flushes;
                    // Critical-path maintenance work: the serial stage of a
                    // sharded run is its most-loaded shard. Work counters
                    // are deterministic (see experiments.rs), so this is
                    // the core-count-independent scaling measure.
                    total_work = db.stats().work.total();
                    critical_work = (0..s)
                        .map(|i| db.shard(i).stats().work.total())
                        .max()
                        .unwrap_or(0);
                });
            },
        );
        println!(
            "    shards={shards}: critical-path work {critical_work} of {total_work} units \
             (model speedup {:.2}x), worst per-shard p99 {p99} ns, {flushes} group commits",
            total_work as f64 / critical_work.max(1) as f64,
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
