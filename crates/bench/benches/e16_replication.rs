//! E16 — follower catch-up over WAL shipping.
//!
//! A leader accumulates a durable WAL (two shards, small segments so the
//! chain has several sealed segments); a cold follower then pulls the
//! whole thing through the `Shipper` cursor machinery — the exact code
//! path the TCP server drives, minus the socket — persisting it
//! byte-identically and replaying it through the recovery path. The
//! timed region is what a freshly started `Replica` does between connect
//! and lag 0. Expected: catch-up time linear in shipped WAL bytes, and
//! the follower's views byte-identical to the leader's afterwards.

use chronicle_bench::timer::{BenchmarkId, Criterion, Throughput};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_db::pipeline::ShardedPipeline;
use chronicle_db::{shard_of_group, DurabilityOptions, FollowerDb, ShardedDb};
use chronicle_net::{ShipEvent, Shipper, DEFAULT_CHUNK};
use chronicle_testkit::TempDir;
use chronicle_types::{Chronon, Value};

const SHARDS: usize = 2;

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        segment_bytes: 64 << 10,
        fsync: true,
        ..Default::default()
    }
}

/// Two group names on distinct shards mod 2, so both shards carry WAL.
fn group_names() -> Vec<String> {
    let mut names = Vec::new();
    let mut taken = [false; SHARDS];
    let mut i = 0usize;
    while names.len() < SHARDS {
        let cand = format!("g{i}");
        let slot = shard_of_group(&cand, SHARDS);
        if !taken[slot] {
            taken[slot] = true;
            names.push(cand);
        }
        i += 1;
    }
    names
}

/// A leader with `appends` durable appends spread over both shards.
fn build_leader(root: &std::path::Path, appends: usize) -> ShardedDb {
    let mut db = ShardedDb::open_with(root, SHARDS, opts()).unwrap();
    for g in group_names() {
        db.execute(&format!("CREATE GROUP {g}")).unwrap();
        db.execute(&format!(
            "CREATE CHRONICLE {g}_c (sn SEQ, acct INT, amount FLOAT) IN GROUP {g}"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE VIEW {g}_sum AS SELECT acct, SUM(amount) AS total FROM {g}_c GROUP BY acct"
        ))
        .unwrap();
    }
    let pipeline = ShardedPipeline::start(db, 64);
    let handle = pipeline.handle();
    std::thread::scope(|scope| {
        for g in group_names() {
            let handle = handle.clone();
            scope.spawn(move || {
                let chron = format!("{g}_c");
                for i in 0..appends / SHARDS {
                    handle
                        .append_nowait(
                            &chron,
                            Chronon(i as i64 + 1),
                            vec![vec![
                                Value::Int((i % 16) as i64),
                                Value::Float(i as f64 % 9.0),
                            ]],
                        )
                        .unwrap();
                }
            });
        }
    });
    pipeline.shutdown()
}

/// One cold catch-up: ship everything, return (records applied, bytes).
fn catch_up(db: &ShardedDb) -> (u64, u64) {
    let tmp = TempDir::new("e16-follower");
    let mut follower = FollowerDb::open_with(tmp.path(), SHARDS, opts()).unwrap();
    let mut shipper = Shipper::new(&follower.applied_lsns(), DEFAULT_CHUNK);
    let mut bytes = 0u64;
    loop {
        let caught_up = shipper
            .pump(db, &mut |ev| match ev {
                ShipEvent::Start { shard, first_lsn } => follower.begin_segment(shard, first_lsn),
                ShipEvent::Bytes {
                    shard,
                    offset,
                    bytes: chunk,
                    ..
                } => {
                    bytes += chunk.len() as u64;
                    follower.ingest(shard, offset, &chunk).map(|_| ())
                }
                ShipEvent::Seal { shard, first_lsn } => follower.seal_segment(shard, first_lsn),
            })
            .unwrap();
        if caught_up {
            break;
        }
    }
    assert_eq!(
        follower.snapshot_views(),
        db.snapshot_views(),
        "caught-up follower must mirror the leader"
    );
    (follower.applied_lsns().iter().sum(), bytes)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_replication");
    group.sample_size(5);
    for &appends in &[2_000usize, 8_000] {
        let tmp = TempDir::new("e16-leader");
        let db = build_leader(tmp.path(), appends);
        group.throughput(Throughput::Elements(appends as u64));
        let mut records = 0u64;
        let mut bytes = 0u64;
        group.bench_with_input(BenchmarkId::new("catch_up", appends), &appends, |b, _| {
            b.iter(|| {
                let (r, by) = catch_up(&db);
                records = r;
                bytes = by;
            });
        });
        println!("    appends={appends}: {records} records applied, {bytes} WAL bytes shipped");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
