//! E11 — append throughput with maintenance, and summary-query latency.

use chronicle_bench::timer::{Criterion, Throughput};
use chronicle_bench::{criterion_group, criterion_main};

use chronicle_db::baseline::ProceduralSummary;
use chronicle_db::ChronicleDb;
use chronicle_types::{Chronon, SeqNo, Tuple, Value};
use chronicle_workload::AtmGen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_throughput");
    group.throughput(Throughput::Elements(1));
    group.bench_function("append_with_view", |b| {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
            .unwrap();
        db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
            .unwrap();
        let mut gen = AtmGen::new(1, 1_000);
        let mut t = 0i64;
        b.iter(|| {
            let row = gen.next_row();
            t += 1;
            db.append("atm", Chronon(t), &[vec![row[0].clone(), row[1].clone()]])
                .unwrap()
        });
    });
    group.bench_function("view_point_query", |b| {
        let mut db = ChronicleDb::new();
        db.execute("CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT)")
            .unwrap();
        db.execute("CREATE VIEW balances AS SELECT acct, SUM(amount) AS b FROM atm GROUP BY acct")
            .unwrap();
        let mut gen = AtmGen::new(1, 1_000);
        for t in 0..10_000i64 {
            let row = gen.next_row();
            db.append("atm", Chronon(t), &[vec![row[0].clone(), row[1].clone()]])
                .unwrap();
        }
        let key = [Value::Int(7)];
        b.iter(|| db.query_view_key("balances", &key).unwrap());
    });
    group.bench_function("procedural_update", |b| {
        let mut p = ProceduralSummary::running_sum(vec![1], 2);
        let mut gen = AtmGen::new(1, 1_000);
        let mut seq = 0u64;
        b.iter(|| {
            let row = gen.next_row();
            seq += 1;
            p.on_tuple(&Tuple::new(vec![
                Value::Seq(SeqNo(seq)),
                row[0].clone(),
                row[1].clone(),
            ]));
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
