//! Seeded synthetic workload generators.
//!
//! The paper's motivating domains — cellular telephony, frequent-flyer
//! programs, consumer banking (the Chemical Bank ATM incident), stock
//! trading — are represented by one generator each. All generators are
//! deterministic under a seed, so every experiment and test is exactly
//! reproducible.
//!
//! The AT&T production feeds the paper used are proprietary; these
//! generators are the documented substitution (see DESIGN.md §3): the
//! experiments measure scaling *shapes* against controlled parameters
//! (chronicle size, relation size, batch size, window width, view count),
//! which synthetic data exercises identically.

#![warn(missing_docs)]

mod gen;
mod scenario;

pub use gen::{
    AtmGen, CallGen, CustomerGen, FlightGen, SkewedCallGen, TradeGen, ATM_SCHEMA_SQL,
    CALLS_SCHEMA_SQL, CUSTOMERS_SCHEMA_SQL, FLIGHTS_SCHEMA_SQL, TRADES_SCHEMA_SQL,
};
pub use scenario::{banking_db, cellular_db, drive, frequent_flyer_db, stock_db};
