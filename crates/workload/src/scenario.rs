//! Prebuilt scenario databases used by examples, benches and integration
//! tests.

use chronicle_db::ChronicleDb;
use chronicle_types::{Chronon, Result};

use crate::gen::{
    CustomerGen, ATM_SCHEMA_SQL, CALLS_SCHEMA_SQL, CUSTOMERS_SCHEMA_SQL, FLIGHTS_SCHEMA_SQL,
    TRADES_SCHEMA_SQL,
};

/// A cellular-billing database: `calls` chronicle, `customers` relation,
/// and the two §1 summary views (minutes this setup, minutes ever).
pub fn cellular_db(seed: u64, accounts: i64) -> Result<ChronicleDb> {
    let mut db = ChronicleDb::new();
    db.execute(CALLS_SCHEMA_SQL)?;
    db.execute(CUSTOMERS_SCHEMA_SQL)?;
    let mut customers = CustomerGen::new(seed);
    for row in customers.table(accounts) {
        let t = chronicle_types::Tuple::new(row);
        db.insert_relation("customers", t)?;
    }
    db.execute(
        "CREATE VIEW total_minutes AS \
         SELECT caller, SUM(minutes) AS minutes_called, COUNT(*) AS calls \
         FROM calls GROUP BY caller",
    )?;
    db.execute(
        "CREATE VIEW total_cost AS \
         SELECT caller, SUM(cost) AS dollars FROM calls GROUP BY caller",
    )?;
    Ok(db)
}

/// A frequent-flyer database (Example 2.1): `flights` chronicle,
/// `customers` relation, and views for mileage balance and miles flown.
pub fn frequent_flyer_db(seed: u64, accounts: i64) -> Result<ChronicleDb> {
    let mut db = ChronicleDb::new();
    db.execute(FLIGHTS_SCHEMA_SQL)?;
    db.execute(CUSTOMERS_SCHEMA_SQL)?;
    let mut customers = CustomerGen::new(seed);
    for row in customers.table(accounts) {
        db.insert_relation("customers", chronicle_types::Tuple::new(row))?;
    }
    db.execute(
        "CREATE VIEW mileage_balance AS \
         SELECT acct, SUM(miles) AS balance FROM flights GROUP BY acct",
    )?;
    db.execute(
        "CREATE VIEW miles_flown AS \
         SELECT acct, SUM(miles) AS flown, COUNT(*) AS segments FROM flights GROUP BY acct",
    )?;
    Ok(db)
}

/// A consumer-banking database: `atm` chronicle and the `dollar_balance`
/// summary field as a persistent view (the anti-Chemical-Bank setup).
pub fn banking_db() -> Result<ChronicleDb> {
    let mut db = ChronicleDb::new();
    db.execute(ATM_SCHEMA_SQL)?;
    db.execute(
        "CREATE VIEW balances AS \
         SELECT acct, SUM(amount) AS dollar_balance, COUNT(*) AS txns \
         FROM atm GROUP BY acct",
    )?;
    Ok(db)
}

/// A stock-trading database: `trades` chronicle plus per-symbol volume
/// views. The 30-day moving window of §5.1 is built separately on top
/// (see the `stock_window` example and experiment E8).
pub fn stock_db() -> Result<ChronicleDb> {
    let mut db = ChronicleDb::new();
    db.execute(TRADES_SCHEMA_SQL)?;
    db.execute(
        "CREATE VIEW volume AS \
         SELECT symbol, SUM(shares) AS shares, COUNT(*) AS trades \
         FROM trades GROUP BY symbol",
    )?;
    Ok(db)
}

/// Drive `n` appends from a generator closure into `db` with one tuple per
/// batch, advancing the chronon by `tick_step` per append.
pub fn drive(
    db: &mut ChronicleDb,
    chronicle: &str,
    n: usize,
    tick_step: i64,
    mut gen_row: impl FnMut() -> Vec<chronicle_types::Value>,
) -> Result<()> {
    for i in 0..n {
        db.append(chronicle, Chronon(i as i64 * tick_step), &[gen_row()])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{AtmGen, CallGen, TradeGen};
    use chronicle_types::Value;

    #[test]
    fn cellular_scenario_runs() {
        let mut db = cellular_db(1, 20).unwrap();
        let mut calls = CallGen::new(2, 20);
        drive(&mut db, "calls", 100, 1, || calls.next_row()).unwrap();
        let rows = db.query_view("total_minutes").unwrap();
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.get(1).as_float().unwrap()).sum();
        assert!(total > 0.0);
        // COUNT column sums to the number of calls.
        let n: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        assert_eq!(n, 100);
    }

    #[test]
    fn banking_scenario_balances() {
        let mut db = banking_db().unwrap();
        let mut atm = AtmGen::new(5, 4);
        let mut expected = std::collections::HashMap::new();
        for i in 0..200usize {
            let row = atm.next_row();
            *expected.entry(row[0].as_int().unwrap()).or_insert(0.0) += row[1].as_float().unwrap();
            db.append("atm", Chronon(i as i64), &[row]).unwrap();
        }
        for (acct, bal) in expected {
            let got = db
                .query_view_key("balances", &[Value::Int(acct)])
                .unwrap()
                .unwrap();
            assert!((got.get(1).as_float().unwrap() - bal).abs() < 1e-6);
        }
    }

    #[test]
    fn stock_scenario_volume() {
        let mut db = stock_db().unwrap();
        let mut trades = TradeGen::new(8);
        drive(&mut db, "trades", 50, 1, || trades.next_row()).unwrap();
        let rows = db.query_view("volume").unwrap();
        let n: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        assert_eq!(n, 50);
    }

    #[test]
    fn frequent_flyer_scenario() {
        let db = frequent_flyer_db(3, 10).unwrap();
        assert!(db.query_view("mileage_balance").unwrap().is_empty());
    }
}
