//! Record generators.

use chronicle_testkit::{Rng, SeedableRng, SmallRng, Zipf};

use chronicle_types::Value;

/// `CREATE CHRONICLE` DDL for cellular call records.
pub const CALLS_SCHEMA_SQL: &str =
    "CREATE CHRONICLE calls (sn SEQ, caller INT, callee INT, minutes FLOAT, cost FLOAT)";

/// `CREATE CHRONICLE` DDL for frequent-flyer flight records.
pub const FLIGHTS_SCHEMA_SQL: &str =
    "CREATE CHRONICLE flights (sn SEQ, acct INT, miles INT, fare FLOAT)";

/// `CREATE CHRONICLE` DDL for ATM/banking transactions.
pub const ATM_SCHEMA_SQL: &str =
    "CREATE CHRONICLE atm (sn SEQ, acct INT, amount FLOAT, kind STRING)";

/// `CREATE CHRONICLE` DDL for stock trades.
pub const TRADES_SCHEMA_SQL: &str =
    "CREATE CHRONICLE trades (sn SEQ, symbol STRING, shares INT, price FLOAT)";

/// `CREATE RELATION` DDL for the customers dimension.
pub const CUSTOMERS_SCHEMA_SQL: &str =
    "CREATE RELATION customers (acct INT, name STRING, state STRING, plan STRING, PRIMARY KEY (acct))";

/// Generator for cellular call records (SN-less rows for
/// `ChronicleDb::append`).
#[derive(Debug)]
pub struct CallGen {
    rng: SmallRng,
    /// Number of distinct subscriber accounts.
    pub accounts: i64,
}

impl CallGen {
    /// Deterministic generator over `accounts` subscribers.
    pub fn new(seed: u64, accounts: i64) -> Self {
        CallGen {
            rng: SmallRng::seed_from_u64(seed),
            accounts: accounts.max(1),
        }
    }

    /// One call record: `[caller, callee, minutes, cost]`.
    pub fn next_row(&mut self) -> Vec<Value> {
        let caller = self.rng.gen_range(0..self.accounts);
        let callee = self.rng.gen_range(0..self.accounts);
        let minutes: f64 = (self.rng.gen_range(1..6000) as f64) / 100.0;
        let cost = (minutes * 0.07 * 100.0).round() / 100.0;
        vec![
            Value::Int(caller),
            Value::Int(callee),
            Value::Float(minutes),
            Value::Float(cost),
        ]
    }

    /// A batch of `n` records.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.next_row()).collect()
    }
}

/// Generator for frequent-flyer flight records.
#[derive(Debug)]
pub struct FlightGen {
    rng: SmallRng,
    /// Number of member accounts.
    pub accounts: i64,
}

impl FlightGen {
    /// Deterministic generator over `accounts` members.
    pub fn new(seed: u64, accounts: i64) -> Self {
        FlightGen {
            rng: SmallRng::seed_from_u64(seed),
            accounts: accounts.max(1),
        }
    }

    /// One flight record: `[acct, miles, fare]`.
    pub fn next_row(&mut self) -> Vec<Value> {
        let acct = self.rng.gen_range(0..self.accounts);
        let miles = self.rng.gen_range(100..5000i64);
        let fare = (self.rng.gen_range(5000..150000) as f64) / 100.0;
        vec![Value::Int(acct), Value::Int(miles), Value::Float(fare)]
    }

    /// A batch of `n` records.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.next_row()).collect()
    }
}

/// Generator for ATM transactions (deposits positive, withdrawals
/// negative — the Chemical Bank scenario).
#[derive(Debug)]
pub struct AtmGen {
    rng: SmallRng,
    /// Number of bank accounts.
    pub accounts: i64,
}

impl AtmGen {
    /// Deterministic generator over `accounts` bank accounts.
    pub fn new(seed: u64, accounts: i64) -> Self {
        AtmGen {
            rng: SmallRng::seed_from_u64(seed),
            accounts: accounts.max(1),
        }
    }

    /// One transaction: `[acct, amount, kind]`.
    pub fn next_row(&mut self) -> Vec<Value> {
        let acct = self.rng.gen_range(0..self.accounts);
        let withdraw = self.rng.gen_bool(0.6);
        let magnitude = (self.rng.gen_range(2000..50000) as f64) / 100.0;
        let (amount, kind) = if withdraw {
            (-magnitude, "withdrawal")
        } else {
            (magnitude, "deposit")
        };
        vec![Value::Int(acct), Value::Float(amount), Value::str(kind)]
    }

    /// A batch of `n` records.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.next_row()).collect()
    }
}

/// Generator for stock trades.
#[derive(Debug)]
pub struct TradeGen {
    rng: SmallRng,
    symbols: Vec<&'static str>,
}

impl TradeGen {
    /// Deterministic generator over a fixed ticker set.
    pub fn new(seed: u64) -> Self {
        TradeGen {
            rng: SmallRng::seed_from_u64(seed),
            symbols: vec!["T", "IBM", "GE", "XON", "MO", "DD", "KO", "PG"],
        }
    }

    /// One trade: `[symbol, shares, price]`.
    pub fn next_row(&mut self) -> Vec<Value> {
        let sym = self.symbols[self.rng.gen_range(0..self.symbols.len())];
        let shares = self.rng.gen_range(100..10_000i64);
        let price = (self.rng.gen_range(1000..20000) as f64) / 100.0;
        vec![Value::str(sym), Value::Int(shares), Value::Float(price)]
    }

    /// A batch of `n` records.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<Value>> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// The ticker universe.
    pub fn symbols(&self) -> &[&'static str] {
        &self.symbols
    }
}

/// Zipf-skewed append mix: each step picks a target rank (a chronicle
/// group, ranked hottest first) from a seeded [`Zipf`] distribution and
/// generates one call record for it. The whole mix — which group gets
/// each append and what the row contains — is a pure function of the one
/// `u64` seed, so skewed scenarios reproduce exactly like uniform ones.
#[derive(Debug)]
pub struct SkewedCallGen {
    rng: SmallRng,
    dist: Zipf,
    calls: CallGen,
}

impl SkewedCallGen {
    /// Deterministic skewed generator over `targets` ranked groups with
    /// Zipf exponent `theta` and `accounts` subscribers per group.
    pub fn new(seed: u64, targets: usize, theta: f64, accounts: i64) -> Self {
        SkewedCallGen {
            rng: SmallRng::seed_from_u64(seed),
            dist: Zipf::new(targets, theta),
            calls: CallGen::new(seed ^ 0x5ca1_ab1e, accounts),
        }
    }

    /// One append: `(target rank, call record)`.
    pub fn next_call(&mut self) -> (usize, Vec<Value>) {
        let rank = self.dist.sample(&mut self.rng);
        (rank, self.calls.next_row())
    }

    /// Just the next target rank (callers that build their own rows).
    pub fn next_rank(&mut self) -> usize {
        self.dist.sample(&mut self.rng)
    }

    /// The distribution driving the mix.
    pub fn distribution(&self) -> &Zipf {
        &self.dist
    }
}

/// Generator for the customers dimension relation.
#[derive(Debug)]
pub struct CustomerGen {
    rng: SmallRng,
}

impl CustomerGen {
    /// Deterministic generator.
    pub fn new(seed: u64) -> Self {
        CustomerGen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Customer row for account `acct`: `[acct, name, state, plan]`.
    pub fn row(&mut self, acct: i64) -> Vec<Value> {
        const STATES: [&str; 8] = ["NJ", "NY", "CA", "TX", "IL", "WA", "FL", "MA"];
        const PLANS: [&str; 3] = ["basic", "silver", "gold"];
        vec![
            Value::Int(acct),
            Value::str(format!("cust{acct}")),
            Value::str(STATES[self.rng.gen_range(0..STATES.len())]),
            Value::str(PLANS[self.rng.gen_range(0..PLANS.len())]),
        ]
    }

    /// Rows for accounts `0..n`.
    pub fn table(&mut self, n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|a| self.row(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = CallGen::new(42, 100);
        let mut b = CallGen::new(42, 100);
        for _ in 0..10 {
            assert_eq!(a.next_row(), b.next_row());
        }
        let mut c = CallGen::new(43, 100);
        let rows_a: Vec<_> = a.batch(20);
        let rows_c: Vec<_> = c.batch(20);
        assert_ne!(rows_a, rows_c, "different seeds diverge");
    }

    #[test]
    fn call_rows_are_well_formed() {
        let mut g = CallGen::new(1, 50);
        for row in g.batch(100) {
            assert_eq!(row.len(), 4);
            let caller = row[0].as_int().unwrap();
            assert!((0..50).contains(&caller));
            assert!(row[2].as_float().unwrap() > 0.0);
        }
    }

    #[test]
    fn atm_amounts_signed_by_kind() {
        let mut g = AtmGen::new(7, 10);
        for row in g.batch(200) {
            let amount = row[1].as_float().unwrap();
            let kind = row[2].as_str().unwrap().to_string();
            if kind == "withdrawal" {
                assert!(amount < 0.0);
            } else {
                assert!(amount > 0.0);
            }
        }
    }

    #[test]
    fn trades_use_known_symbols() {
        let mut g = TradeGen::new(3);
        let symbols: Vec<String> = g.symbols().iter().map(|s| s.to_string()).collect();
        for row in g.batch(50) {
            assert!(symbols.contains(&row[0].as_str().unwrap().to_string()));
            assert!(row[1].as_int().unwrap() >= 100);
        }
    }

    #[test]
    fn customer_table_covers_accounts() {
        let mut g = CustomerGen::new(9);
        let rows = g.table(25);
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[24][0], Value::Int(24));
    }

    #[test]
    fn skewed_mix_is_deterministic_and_head_heavy() {
        let mut a = SkewedCallGen::new(21, 32, 1.1, 64);
        let mut b = SkewedCallGen::new(21, 32, 1.1, 64);
        let mut counts = [0usize; 32];
        for _ in 0..2_000 {
            let (ra, row_a) = a.next_call();
            let (rb, row_b) = b.next_call();
            assert_eq!((ra, &row_a), (rb, &row_b), "mix replays from its seed");
            assert!(ra < 32);
            counts[ra] += 1;
        }
        assert!(
            counts[0] > counts[1] && counts[0] > 400,
            "rank 0 must dominate a theta=1.1 mix: {counts:?}"
        );
    }

    #[test]
    fn flight_rows_in_range() {
        let mut g = FlightGen::new(11, 5);
        for row in g.batch(50) {
            assert!((100..5000).contains(&row[1].as_int().unwrap()));
        }
    }
}
