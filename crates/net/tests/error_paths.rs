//! Wire-protocol error paths over real sockets: malformed and oversized
//! frames, protocol-version mismatches, mid-frame connection cuts, and
//! stale-term (fencing) traffic. Every case must produce a typed error or
//! a clean session drop — never a panic, never a partial apply — and the
//! server must keep serving other connections afterwards.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use chronicle_db::pipeline::ShardedPipeline;
use chronicle_db::{DurabilityOptions, ShardedDb};
use chronicle_net::frame::{encode_frame, FrameDecoder};
use chronicle_net::{
    Client, Message, RemoteOutcome, Replica, RetryClient, RetryPolicy, Role, Server,
    PROTOCOL_VERSION,
};
use chronicle_testkit::TempDir;
use chronicle_types::ChronicleError;

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        segment_bytes: 1024,
        ..DurabilityOptions::default()
    }
}

/// A leader server over a fresh database with one chronicle and a
/// counting view, so tests can observe exactly how many appends applied.
fn start_leader(dir: &TempDir, name: &str) -> (ShardedPipeline, Server, String) {
    let db = ShardedDb::open_with(dir.path().join(name), 2, opts()).unwrap();
    let pipeline = ShardedPipeline::start(db, 64);
    let server = Server::start(pipeline.handle(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.sql("CREATE GROUP g").unwrap();
    client
        .sql("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g")
        .unwrap();
    client
        .sql("CREATE VIEW v AS SELECT x, COUNT(*) AS cnt FROM c GROUP BY x")
        .unwrap();
    client.goodbye();
    (pipeline, server, addr)
}

fn applied_rows(addr: &str) -> u64 {
    let mut client = Client::connect(addr).unwrap();
    let rows = match client.sql("SELECT * FROM v").unwrap() {
        RemoteOutcome::Rows(rows) => rows,
        other => panic!("expected rows, got {other:?}"),
    };
    client.goodbye();
    rows.iter()
        .map(|t| match t.values().last().unwrap() {
            chronicle_types::Value::Int(n) => *n as u64,
            other => panic!("expected count, got {other:?}"),
        })
        .sum()
}

/// Raw framed send/recv for speaking the protocol off the beaten path.
fn send_raw(stream: &mut TcpStream, msg: &Message) {
    stream.write_all(&encode_frame(&msg.encode())).unwrap();
}

fn recv_raw(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Option<Message> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(payload) = dec.next_frame().unwrap() {
            return Some(Message::decode(&payload).unwrap());
        }
        let n = stream.read(&mut buf).unwrap();
        if n == 0 {
            return None;
        }
        dec.feed(&buf[..n]);
    }
}

fn hello(term: u64) -> Message {
    Message::Hello {
        role: Role::Client,
        version: PROTOCOL_VERSION,
        term,
    }
}

#[test]
fn corrupt_frame_drops_the_session_but_not_the_server() {
    let dir = TempDir::new("net-err-corrupt");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut frame = encode_frame(&hello(0).encode());
    let last = frame.len() - 1;
    frame[last] ^= 0xff; // payload no longer matches the CRC
    stream.write_all(&frame).unwrap();
    // The session drops: either a clean close or a reset, never a reply.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));

    // The server still serves well-formed sessions.
    let mut client = Client::connect(&addr).unwrap();
    client.sql("APPEND INTO c VALUES (1)").unwrap();
    client.goodbye();
    assert_eq!(applied_rows(&addr), 1);
    server.stop();
    pipeline.shutdown();
}

#[test]
fn oversized_frame_is_refused() {
    let dir = TempDir::new("net-err-oversized");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    let mut stream = TcpStream::connect(&addr).unwrap();
    // A header announcing a frame bigger than MAX_FRAME; no body needed —
    // the length check fires before any payload byte is read.
    let mut header = Vec::new();
    header.extend_from_slice(&(chronicle_net::frame::MAX_FRAME as u32 + 1).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&header).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));

    let mut client = Client::connect(&addr).unwrap();
    assert!(client.sql("SELECT * FROM v").is_ok());
    client.goodbye();
    server.stop();
    pipeline.shutdown();
}

#[test]
fn protocol_version_mismatch_is_a_typed_refusal() {
    let dir = TempDir::new("net-err-version");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    let mut stream = TcpStream::connect(&addr).unwrap();
    send_raw(
        &mut stream,
        &Message::Hello {
            role: Role::Client,
            version: PROTOCOL_VERSION + 7,
            term: 0,
        },
    );
    let mut dec = FrameDecoder::new();
    match recv_raw(&mut stream, &mut dec) {
        Some(Message::ErrReply(detail)) => {
            assert!(detail.contains("protocol version mismatch"), "{detail}")
        }
        other => panic!("expected a version refusal, got {other:?}"),
    }
    server.stop();
    pipeline.shutdown();
}

#[test]
fn mid_frame_cut_applies_nothing() {
    let dir = TempDir::new("net-err-cut");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    // Handshake normally, then send half an APPEND frame and vanish.
    let mut stream = TcpStream::connect(&addr).unwrap();
    send_raw(&mut stream, &hello(0));
    let mut dec = FrameDecoder::new();
    assert!(matches!(
        recv_raw(&mut stream, &mut dec),
        Some(Message::Welcome { .. })
    ));
    let frame = encode_frame(
        &Message::Sql {
            sql: "APPEND INTO c VALUES (9)".into(),
            session: 7,
            seq: 1,
        }
        .encode(),
    );
    stream.write_all(&frame[..frame.len() / 2]).unwrap();
    drop(stream);

    // Give the server a moment to observe the close, then prove the cut
    // statement never half-applied and the server still answers.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(applied_rows(&addr), 0);
    server.stop();
    pipeline.shutdown();
}

#[test]
fn stale_term_traffic_is_fenced_with_a_typed_error() {
    let dir = TempDir::new("net-err-fenced");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    // This server has never seen a promotion: term 0. A client that has
    // observed term 3 proves the server is deposed.
    let err = Client::connect_with_term(&addr, 3).unwrap_err();
    match err {
        ChronicleError::Fenced { observed, current } => {
            assert_eq!(observed, 0);
            assert_eq!(current, 3);
        }
        other => panic!("expected Fenced, got {other}"),
    }

    // Same fence on the shipping path: a follower announcing a higher
    // term in FetchWal is refused before a byte ships.
    let mut stream = TcpStream::connect(&addr).unwrap();
    send_raw(
        &mut stream,
        &Message::Hello {
            role: Role::Follower,
            version: PROTOCOL_VERSION,
            term: 0,
        },
    );
    let mut dec = FrameDecoder::new();
    assert!(matches!(
        recv_raw(&mut stream, &mut dec),
        Some(Message::Welcome { .. })
    ));
    send_raw(
        &mut stream,
        &Message::FetchWal {
            applied: vec![0, 0],
            term: 5,
        },
    );
    assert!(matches!(
        recv_raw(&mut stream, &mut dec),
        Some(Message::Fenced {
            observed: 0,
            current: 5
        })
    ));
    server.stop();
    pipeline.shutdown();
}

#[test]
fn stamped_retry_is_answered_from_cache_over_tcp() {
    let dir = TempDir::new("net-err-dedupe");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    let mut client = Client::connect(&addr).unwrap();
    let first = client
        .sql_stamped("APPEND INTO c VALUES (2)", 0xCAFE, 1)
        .unwrap();
    // Simulate a lost ack: a second client replays the same stamp, as a
    // reconnecting retrier would.
    let mut again = Client::connect(&addr).unwrap();
    let second = again
        .sql_stamped("APPEND INTO c VALUES (2)", 0xCAFE, 1)
        .unwrap();
    assert_eq!(first, second, "retry must echo the cached ack");
    assert_eq!(applied_rows(&addr), 1, "the append must not apply twice");
    let stats = again.stats().unwrap();
    assert_eq!(stats.session_replays, 1);
    client.goodbye();
    again.goodbye();
    server.stop();
    pipeline.shutdown();
}

/// A scripted fake server: welcomes the client, answers the first `n`
/// SQL requests with `Overloaded`, then acks. Exercises the client-side
/// typed mapping and the RetryClient's honoring of `retry_after`.
fn overloaded_then_ok(listener: TcpListener, refusals: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut dec = FrameDecoder::new();
        let mut refused = 0;
        loop {
            let Some(msg) = recv_raw(&mut stream, &mut dec) else {
                return;
            };
            match msg {
                Message::Hello { .. } => {
                    send_raw(&mut stream, &Message::Welcome { shards: 1, term: 0 })
                }
                Message::Sql { .. } if refused < refusals => {
                    refused += 1;
                    send_raw(&mut stream, &Message::Overloaded { retry_after_ms: 5 });
                }
                Message::Sql { .. } => send_raw(
                    &mut stream,
                    &Message::SqlOk(RemoteOutcome::RelationChanged(1)),
                ),
                Message::Goodbye => return,
                other => panic!("fake server got {other:?}"),
            }
        }
    })
}

#[test]
fn retry_client_honors_overload_hints_and_dead_addresses() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let live_addr = listener.local_addr().unwrap().to_string();
    // A dead candidate first: bind-then-drop guarantees a refused connect.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let fake = overloaded_then_ok(listener, 2);

    let policy = RetryPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
        request_timeout: Duration::from_secs(5),
    };
    let mut rc = RetryClient::new(&[&dead_addr, &live_addr], 0xD00D, policy);
    let out = rc.sql("APPEND INTO r VALUES (1)").unwrap();
    assert_eq!(out, RemoteOutcome::RelationChanged(1));
    // One rotation off the dead address, two overload waits.
    assert!(rc.retries() >= 3, "retries: {}", rc.retries());
    assert_eq!(rc.seq(), 1);
    rc.goodbye();
    fake.join().unwrap();
}

#[test]
fn promotion_over_tcp_fences_the_old_lineage_and_redirects_clients() {
    let dir = TempDir::new("net-err-promote");
    let (pipeline, server, addr) = start_leader(&dir, "L");

    let mut client = Client::connect(&addr).unwrap();
    for i in 0..20 {
        client
            .sql(&format!("APPEND INTO c VALUES ({})", i % 3))
            .unwrap();
    }

    // A follower catches up fully, then the leader dies mid-flight.
    let follower_path = dir.path().join("F");
    let replica = Replica::start(&addr, &follower_path, opts()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while replica.replication_lag() != Some(0) {
        assert!(std::time::Instant::now() < deadline, "catch-up stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.goodbye();
    server.stop();
    let old_leader = pipeline.shutdown();

    // Promote: the follower becomes a live leader under term 1.
    let promoted = replica.promote().unwrap();
    assert_eq!(promoted.term(), 1);
    let new_pipeline = ShardedPipeline::start(promoted, 64);
    let new_server = Server::start(new_pipeline.handle(), "127.0.0.1:0").unwrap();
    let new_addr = new_server.addr().to_string();

    // A fresh follower attaches to the new leader and learns term 1 from
    // the shipped Term record.
    let f2_path = dir.path().join("F2");
    let f2 = Replica::start(&new_addr, &f2_path, opts()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while f2.replication_lag() != Some(0) || f2.term() != 1 {
        assert!(std::time::Instant::now() < deadline, "F2 catch-up stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(f2.stop().unwrap());

    // The old leader restarts as a zombie, still at term 0.
    let zombie_pipeline = ShardedPipeline::start(old_leader, 64);
    let zombie_server = Server::start(zombie_pipeline.handle(), "127.0.0.1:0").unwrap();
    let zombie_addr = zombie_server.addr().to_string();

    // An informed client (observed term 1) is fenced off the zombie...
    assert!(matches!(
        Client::connect_with_term(&zombie_addr, 1),
        Err(ChronicleError::Fenced {
            observed: 0,
            current: 1
        })
    ));
    // ...and a promoted-lineage follower refuses to follow it.
    let stale = Replica::start(&zombie_addr, &f2_path, opts());
    assert!(
        matches!(stale, Err(ChronicleError::Fenced { .. })),
        "promoted-lineage follower must fence a stale leader"
    );

    // A retrying client walks the candidate list to the new leader and
    // keeps exactly-once semantics there.
    let mut rc = RetryClient::new(&[&new_addr, &zombie_addr], 0xF417, RetryPolicy::default());
    rc.sql("APPEND INTO c VALUES (7)").unwrap();
    assert_eq!(rc.last_term(), 1);
    assert_eq!(applied_rows(&new_addr), 21);
    rc.goodbye();

    new_server.stop();
    zombie_server.stop();
    new_pipeline.shutdown();
    zombie_pipeline.shutdown();
}
