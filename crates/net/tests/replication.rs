//! End-to-end TCP replication: a leader server, a SQL client, and a
//! follower replica, all real sockets on loopback.
//!
//! Honors `SHARDS` (default 2) so the verify script can sweep shard
//! counts without editing the test.

use std::time::Duration;

use chronicle_db::pipeline::{ShardedPipeline, ShardedPipelineHandle, WalRequest, WalResponse};
use chronicle_db::{DurabilityOptions, ShardedDb};
use chronicle_net::{Client, RemoteOutcome, Replica, Server};
use chronicle_testkit::TempDir;
use chronicle_types::Value;

fn shards() -> usize {
    std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// The leader's per-shard durable frontier, read fresh off the pipeline.
/// Convergence must be measured against this — `replication_lag` only
/// reflects the *last heartbeat*, which can be a whole catch-up poll stale
/// while appends keep landing.
fn durable_frontier(handle: &ShardedPipelineHandle) -> Vec<u64> {
    (0..handle.shard_count())
        .map(
            |s| match handle.wal(s, WalRequest::LastDurableLsn).unwrap() {
                WalResponse::Lsn(l) => l,
                other => panic!("unexpected wal response {other:?}"),
            },
        )
        .collect()
}

fn opts() -> DurabilityOptions {
    DurabilityOptions {
        // Tiny segments: rotation happens mid-test, so sealed-segment
        // shipping and active-segment tailing are both exercised.
        segment_bytes: 1024,
        ..DurabilityOptions::default()
    }
}

#[test]
fn leader_serves_sql_and_follower_converges_over_tcp() {
    let n = shards();
    let dir = TempDir::new("chronicle-net-e2e");
    let leader_path = dir.path().join("leader");
    let follower_path = dir.path().join("follower");

    let db = ShardedDb::open_with(&leader_path, n, opts()).unwrap();
    let pipeline = ShardedPipeline::start(db, 64);
    let server = Server::start(pipeline.handle(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    // A client drives DDL and appends over the wire.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.shards() as usize, n);
    client.sql("CREATE GROUP telecom").unwrap();
    client
        .sql("CREATE CHRONICLE calls (sn SEQ, caller INT, minutes FLOAT) IN GROUP telecom")
        .unwrap();
    client
        .sql("CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls GROUP BY caller")
        .unwrap();
    for i in 0..60 {
        let out = client
            .sql(&format!(
                "APPEND INTO calls VALUES ({}, {:.1})",
                i % 5,
                (i % 7 + 1) as f64
            ))
            .unwrap();
        assert!(matches!(out, RemoteOutcome::Appended { .. }));
    }

    // A follower attaches mid-history and catches up.
    let mut replica = Replica::start(&addr, &follower_path, opts()).unwrap();
    for i in 60..100 {
        client
            .sql(&format!(
                "APPEND INTO calls VALUES ({}, {:.1})",
                i % 5,
                (i % 7 + 1) as f64
            ))
            .unwrap();
    }

    // The leader's durable frontier per shard is the convergence target.
    let stats = client.stats().unwrap();
    assert!(stats.appends >= 100);
    assert!(stats.net_requests >= 100);
    assert!(stats.net_sessions >= 2, "client + follower sessions");

    // Wait until the follower applied everything the leader has durable
    // *right now*; only then is the heartbeat-based lag meaningful (it
    // drains to zero once the next heartbeat lands).
    let target = durable_frontier(&pipeline.handle());
    assert!(
        replica.wait_applied(&target, Duration::from_secs(30)),
        "follower never caught up: target {target:?}, applied {:?}",
        replica.applied_lsns()
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while replica.replication_lag() != Some(0) {
        assert!(
            std::time::Instant::now() < deadline,
            "lag never drained: {:?}",
            replica.replication_lag()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Read-only serving: the same query over the follower's own listener
    // answers with the leader's rows.
    let ro_addr = replica.serve("127.0.0.1:0").unwrap().to_string();
    let mut ro = Client::connect(&ro_addr).unwrap();
    let rows = match ro.sql("SELECT * FROM totals").unwrap() {
        RemoteOutcome::Rows(rows) => rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert_eq!(rows.len(), 5);
    let ro_stats = ro.stats().unwrap();
    assert_eq!(ro_stats.replication_lag, Some(0));
    assert!(ro_stats.follower_applied_lsn.unwrap_or(0) > 0);
    assert!(ro_stats.net_shipped_bytes > 0);

    // Writes are refused on the follower.
    assert!(ro.sql("APPEND INTO calls VALUES (1, 1.0)").is_err());

    // Snapshot equality at the same applied lsns: quiesce the leader
    // (shut the pipeline down), then compare view snapshots directly.
    ro.goodbye();
    client.goodbye();
    server.stop();
    let leader_db = pipeline.shutdown();
    let follower_db = replica.stop().unwrap();
    assert_eq!(follower_db.snapshot_views(), leader_db.snapshot_views());

    // The follower's query surface agrees with the leader's.
    assert_eq!(
        follower_db.query_view("totals").unwrap(),
        leader_db.query_view("totals").unwrap()
    );
    assert_eq!(
        follower_db
            .query_view_key("totals", &[Value::Int(3)])
            .unwrap(),
        leader_db
            .query_view_key("totals", &[Value::Int(3)])
            .unwrap()
    );
}

#[test]
fn follower_restart_over_tcp_resumes() {
    let n = shards();
    let dir = TempDir::new("chronicle-net-resume");
    let leader_path = dir.path().join("leader");
    let follower_path = dir.path().join("follower");

    let db = ShardedDb::open_with(&leader_path, n, opts()).unwrap();
    let pipeline = ShardedPipeline::start(db, 64);
    let server = Server::start(pipeline.handle(), "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.sql("CREATE GROUP g").unwrap();
    client
        .sql("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g")
        .unwrap();
    client
        .sql("CREATE VIEW v AS SELECT x, COUNT(*) AS cnt FROM c GROUP BY x")
        .unwrap();
    for i in 0..30 {
        client
            .sql(&format!("APPEND INTO c VALUES ({})", i % 3))
            .unwrap();
    }

    // First attachment, full catch-up, then detach.
    let replica = Replica::start(&addr, &follower_path, opts()).unwrap();
    let target = durable_frontier(&pipeline.handle());
    assert!(
        replica.wait_applied(&target, Duration::from_secs(30)),
        "first catch-up stalled: target {target:?}, applied {:?}",
        replica.applied_lsns()
    );
    let f1 = replica.stop().unwrap();
    let applied_before = f1.applied_lsns();
    drop(f1);

    // Leader keeps writing while the follower is away.
    for i in 30..60 {
        client
            .sql(&format!("APPEND INTO c VALUES ({})", i % 3))
            .unwrap();
    }

    // Second attachment recovers locally and resumes from its watermark.
    let replica = Replica::start(&addr, &follower_path, opts()).unwrap();
    let target = durable_frontier(&pipeline.handle());
    assert!(
        replica.wait_applied(&target, Duration::from_secs(30)),
        "resume stalled: target {target:?}, applied {:?}",
        replica.applied_lsns()
    );
    let f2 = replica.stop().unwrap();
    assert!(f2
        .applied_lsns()
        .iter()
        .zip(&applied_before)
        .all(|(now, before)| now >= before));

    client.goodbye();
    server.stop();
    let leader_db = pipeline.shutdown();
    assert_eq!(f2.snapshot_views(), leader_db.snapshot_views());
}
