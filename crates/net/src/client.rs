//! The blocking SQL client.
//!
//! One TCP connection, one in-flight request: [`Client::sql`] and
//! [`Client::stats`] send a frame and block for the reply. Appends
//! acknowledged with `SqlOk` are durable on the leader (the server answers
//! after the shard's group-commit flush).

use std::net::TcpStream;

use chronicle_types::{ChronicleError, Result};

use crate::conn::Conn;
use crate::proto::{Message, RemoteOutcome, Role, WireStats};

fn remote_err(detail: String) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("remote: {detail}"),
    }
}

/// A connected SQL session.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
    shards: u32,
}

impl Client {
    /// Connect to a leader (or a read-only follower) at `addr`.
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| ChronicleError::Durability {
            detail: format!("network: connecting {addr}: {e}"),
        })?;
        let mut conn = Conn::new(stream)?;
        conn.send(&Message::Hello(Role::Client))?;
        match conn.recv()? {
            Message::Welcome { shards } => Ok(Client { conn, shards }),
            Message::ErrReply(detail) => Err(remote_err(detail)),
            other => Err(ChronicleError::Corruption {
                detail: format!("expected Welcome, got {other:?}"),
            }),
        }
    }

    /// Shard count of the server.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Execute one SQL statement remotely.
    pub fn sql(&mut self, sql: &str) -> Result<RemoteOutcome> {
        self.conn.send(&Message::Sql(sql.to_string()))?;
        match self.conn.recv()? {
            Message::SqlOk(outcome) => Ok(outcome),
            Message::ErrReply(detail) => Err(remote_err(detail)),
            other => Err(ChronicleError::Corruption {
                detail: format!("expected SqlOk, got {other:?}"),
            }),
        }
    }

    /// Fetch the server's statistics.
    pub fn stats(&mut self) -> Result<WireStats> {
        self.conn.send(&Message::StatsReq)?;
        match self.conn.recv()? {
            Message::StatsReply(stats) => Ok(stats),
            Message::ErrReply(detail) => Err(remote_err(detail)),
            other => Err(ChronicleError::Corruption {
                detail: format!("expected StatsReply, got {other:?}"),
            }),
        }
    }

    /// Orderly close.
    pub fn goodbye(mut self) {
        let _ = self.conn.send(&Message::Goodbye);
    }
}
