//! The blocking SQL client.
//!
//! One TCP connection, one in-flight request: [`Client::sql`] and
//! [`Client::stats`] send a frame and block for the reply — up to the
//! per-request deadline ([`Client::set_request_timeout`]), after which
//! the typed [`ChronicleError::Timeout`] surfaces. A timed-out request
//! *may* have been applied; an idempotent retry through
//! [`Client::sql_stamped`] (same session, same seq) is the safe way to
//! find out — the server answers a replayed stamp from its dedupe cache
//! instead of applying it twice. Appends acknowledged with `SqlOk` are
//! durable on the leader (the server answers after the shard's
//! group-commit flush).
//!
//! [`Fenced`](crate::proto::Message::Fenced) and
//! [`Overloaded`](crate::proto::Message::Overloaded) replies map to their
//! typed errors; [`crate::RetryClient`] builds leader redirection and
//! backoff on top of them.

use std::net::TcpStream;
use std::time::Duration;

use chronicle_types::{ChronicleError, Result};

use crate::conn::Conn;
use crate::proto::{Message, RemoteOutcome, Role, WireStats, PROTOCOL_VERSION};

/// Default per-request read deadline: generous enough for a group-commit
/// flush under load, small enough that a dead leader is noticed.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

fn remote_err(detail: String) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("remote: {detail}"),
    }
}

/// Map an error-shaped reply message to its typed error; `None` for
/// non-error replies.
fn reply_err(msg: &Message) -> Option<ChronicleError> {
    match msg {
        Message::ErrReply(detail) => Some(remote_err(detail.clone())),
        Message::Fenced { observed, current } => Some(ChronicleError::Fenced {
            observed: *observed,
            current: *current,
        }),
        Message::Overloaded { retry_after_ms } => Some(ChronicleError::Overloaded {
            retry_after_ms: *retry_after_ms,
        }),
        _ => None,
    }
}

/// A connected SQL session.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
    shards: u32,
    term: u64,
    request_timeout: Duration,
}

impl Client {
    /// Connect to a leader (or a read-only follower) at `addr`,
    /// announcing no prior term.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_with_term(addr, 0)
    }

    /// Connect announcing the highest leadership term this client has
    /// observed; a deposed leader (its term below `term`) answers
    /// `Fenced` instead of `Welcome`, so a zombie can never serve a
    /// client that has already seen its successor.
    pub fn connect_with_term(addr: &str, term: u64) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| ChronicleError::Durability {
            detail: format!("network: connecting {addr}: {e}"),
        })?;
        let mut conn = Conn::new(stream)?;
        conn.send(&Message::Hello {
            role: Role::Client,
            version: PROTOCOL_VERSION,
            term,
        })?;
        match conn.recv()? {
            Message::Welcome { shards, term } => Ok(Client {
                conn,
                shards,
                term,
                request_timeout: DEFAULT_REQUEST_TIMEOUT,
            }),
            ref msg => match reply_err(msg) {
                Some(e) => Err(e),
                None => Err(ChronicleError::Corruption {
                    detail: format!("expected Welcome, got {msg:?}"),
                }),
            },
        }
    }

    /// Shard count of the server.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The leadership term the server announced at the handshake.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Set the per-request read deadline for [`Client::sql`] and
    /// [`Client::stats`].
    pub fn set_request_timeout(&mut self, timeout: Duration) {
        self.request_timeout = timeout;
    }

    /// Execute one SQL statement remotely, unstamped (no idempotency).
    pub fn sql(&mut self, sql: &str) -> Result<RemoteOutcome> {
        self.sql_stamped(sql, 0, 0)
    }

    /// Execute one SQL statement stamped with `(session, seq)` for
    /// exactly-once semantics under retry (`session == 0` = unstamped).
    pub fn sql_stamped(&mut self, sql: &str, session: u64, seq: u64) -> Result<RemoteOutcome> {
        self.conn.send(&Message::Sql {
            sql: sql.to_string(),
            session,
            seq,
        })?;
        match self.conn.recv_deadline(self.request_timeout, "SQL reply")? {
            Message::SqlOk(outcome) => Ok(outcome),
            ref msg => match reply_err(msg) {
                Some(e) => Err(e),
                None => Err(ChronicleError::Corruption {
                    detail: format!("expected SqlOk, got {msg:?}"),
                }),
            },
        }
    }

    /// Fetch the server's statistics.
    pub fn stats(&mut self) -> Result<WireStats> {
        self.conn.send(&Message::StatsReq)?;
        match self
            .conn
            .recv_deadline(self.request_timeout, "stats reply")?
        {
            Message::StatsReply(stats) => Ok(stats),
            ref msg => match reply_err(msg) {
                Some(e) => Err(e),
                None => Err(ChronicleError::Corruption {
                    detail: format!("expected StatsReply, got {msg:?}"),
                }),
            },
        }
    }

    /// Orderly close.
    pub fn goodbye(mut self) {
        let _ = self.conn.send(&Message::Goodbye);
    }
}
