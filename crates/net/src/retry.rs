//! The retrying, failover-aware SQL client.
//!
//! [`RetryClient`] wraps [`Client`] with everything a caller needs to
//! survive a leader failover without losing or duplicating statements:
//!
//! * every statement is stamped `(session, seq)`, so a retry whose
//!   original ack was lost is answered from the server's dedupe cache —
//!   exactly-once across reconnects *and* across promotion (the dedupe
//!   table rides the WAL and checkpoints to the new leader);
//! * transport failures and [`ChronicleError::Timeout`]s reconnect with
//!   jittered exponential backoff under one total deadline;
//! * a [`ChronicleError::Fenced`] reply or a refused connect rotates to
//!   the next candidate address — the promoted leader is found by
//!   walking the candidate list, no external coordinator involved;
//! * an [`ChronicleError::Overloaded`] refusal sleeps for the server's
//!   hinted `retry_after` (plus jitter) and retries the same stamp.
//!
//! SQL-level errors (parse errors, unknown names, key violations…) are
//! *not* retried — they would fail identically on any leader.

use std::time::{Duration, Instant};

use chronicle_types::{ChronicleError, Result};

use crate::client::Client;
use crate::proto::{RemoteOutcome, WireStats};

/// Backoff and deadline knobs for a [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First reconnect backoff; doubled per failure up to `max_backoff`.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Total time budget per statement, across every retry.
    pub deadline: Duration,
    /// Per-request read deadline on the underlying connection.
    pub request_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(30),
            request_timeout: Duration::from_secs(5),
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How one attempt's failure should be handled.
enum Recovery {
    /// Drop the connection, rotate to the next address, back off.
    Rotate,
    /// Keep the connection, sleep the server's hint, retry.
    Wait(Duration),
    /// Not retryable: surface to the caller.
    Fatal,
}

fn classify(e: &ChronicleError) -> Recovery {
    match e {
        // A deposed leader answered: the successor is at another address.
        ChronicleError::Fenced { .. } => Recovery::Rotate,
        // Admission refused; the statement was not applied.
        ChronicleError::Overloaded { retry_after_ms } => {
            Recovery::Wait(Duration::from_millis(*retry_after_ms))
        }
        // The reply may be lost but the stamp makes the retry idempotent.
        ChronicleError::Timeout { .. } => Recovery::Rotate,
        // Transport failures ("network: …") are retryable; remote SQL
        // errors ("remote: …") and everything else are not.
        ChronicleError::Durability { detail } if detail.starts_with("network:") => Recovery::Rotate,
        _ => Recovery::Fatal,
    }
}

/// A stamped, reconnecting, leader-following SQL session (module docs).
#[derive(Debug)]
pub struct RetryClient {
    addrs: Vec<String>,
    next_addr: usize,
    policy: RetryPolicy,
    session: u64,
    seq: u64,
    rng: u64,
    conn: Option<Client>,
    connected_once: bool,
    retries: u64,
    reconnects: u64,
    last_term: u64,
}

impl RetryClient {
    /// A session over one or more candidate leader addresses. `session`
    /// must be nonzero and unique among concurrent clients (it keys the
    /// server's dedupe table); it also seeds the backoff jitter.
    pub fn new(addrs: &[&str], session: u64, policy: RetryPolicy) -> RetryClient {
        assert!(session != 0, "session id 0 means 'unstamped' on the wire");
        assert!(!addrs.is_empty(), "need at least one candidate address");
        RetryClient {
            addrs: addrs.iter().map(|a| a.to_string()).collect(),
            next_addr: 0,
            policy,
            session,
            seq: 0,
            rng: session ^ 0x5e55_10f2_57a3_b1e9,
            conn: None,
            connected_once: false,
            retries: 0,
            reconnects: 0,
            last_term: 0,
        }
    }

    /// The session id stamped on every statement.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sequence number of the most recently issued statement.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Failed attempts recovered from so far (reconnects included).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections established after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Highest leadership term observed across all connections.
    pub fn last_term(&self) -> u64 {
        self.last_term
    }

    /// Execute one statement with a fresh stamp, retrying per the policy
    /// until it is durably acked exactly once or the deadline passes.
    pub fn sql(&mut self, sql: &str) -> Result<RemoteOutcome> {
        self.seq += 1;
        let seq = self.seq;
        let (session, timeout) = (self.session, self.policy.request_timeout);
        self.run(move |client| {
            client.set_request_timeout(timeout);
            client.sql_stamped(sql, session, seq)
        })
    }

    /// Fetch statistics from whichever leader is currently reachable.
    pub fn stats(&mut self) -> Result<WireStats> {
        let timeout = self.policy.request_timeout;
        self.run(move |client| {
            client.set_request_timeout(timeout);
            client.stats()
        })
    }

    /// Orderly close of the current connection, if any.
    pub fn goodbye(mut self) {
        if let Some(c) = self.conn.take() {
            c.goodbye();
        }
    }

    fn run<T>(&mut self, mut attempt: impl FnMut(&mut Client) -> Result<T>) -> Result<T> {
        let deadline = Instant::now() + self.policy.deadline;
        let mut backoff = self.policy.initial_backoff;
        loop {
            let result = match self.ensure_connected() {
                Ok(client) => attempt(client),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let wait = match classify(&err) {
                Recovery::Fatal => return Err(err),
                Recovery::Rotate => {
                    self.conn = None;
                    self.next_addr = (self.next_addr + 1) % self.addrs.len();
                    let b = backoff;
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                    b
                }
                Recovery::Wait(hint) => hint,
            };
            // Full jitter in [wait/2, wait]: desynchronizes a retry storm
            // without ever answering before the server's hint is half up.
            let jitter_span = wait.as_millis() as u64 / 2;
            let jittered = wait / 2
                + Duration::from_millis(if jitter_span == 0 {
                    0
                } else {
                    splitmix64(&mut self.rng) % (jitter_span + 1)
                });
            if Instant::now() + jittered >= deadline {
                return Err(err);
            }
            self.retries += 1;
            std::thread::sleep(jittered);
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut Client> {
        if self.conn.is_none() {
            let addr = &self.addrs[self.next_addr];
            let client = Client::connect_with_term(addr, self.last_term)?;
            self.last_term = self.last_term.max(client.term());
            if self.connected_once {
                self.reconnects += 1;
            }
            self.connected_once = true;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }
}
