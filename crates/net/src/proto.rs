//! The chronicle wire protocol: message types and their binary codec.
//!
//! Messages ride inside CRC frames ([`crate::frame`]) and are encoded with
//! the in-tree [`chronicle_types::codec`] — u8-tagged enums, little-endian
//! integers, length-prefixed strings and blobs. No external serialization
//! library is involved, keeping the workspace's zero-dependency policy.
//!
//! Connection flow:
//!
//! * every connection opens with [`Message::Hello`] and is answered by
//!   [`Message::Welcome`] carrying the shard count;
//! * a [`Role::Client`] session then alternates requests
//!   ([`Message::Sql`], [`Message::StatsReq`]) and replies;
//! * a [`Role::Follower`] session sends one [`Message::FetchWal`] with its
//!   per-shard applied lsns and then only *receives*: segment streams
//!   ([`Message::SegStart`] / [`Message::SegBytes`] / [`Message::SegSeal`])
//!   interleaved with [`Message::Heartbeat`]s carrying the leader's
//!   durable frontier.
//!
//! Unknown tags and truncated payloads decode to
//! [`ChronicleError::Corruption`]; like a bad frame CRC, they terminate
//! the connection.
//!
//! Failover additions (DESIGN.md §17): the [`Message::Hello`] carries the
//! protocol version and the peer's last observed leadership *term*;
//! [`Message::Welcome`] answers with the server's term; every
//! [`Message::SegStart`] and [`Message::FetchWal`] is term-stamped so a
//! deposed leader (or its shipper) is rejected with a typed
//! [`Message::Fenced`] instead of silently diverging the history.
//! [`Message::Sql`] carries an idempotency stamp `(session, seq)` —
//! `session == 0` means unstamped — and an admission-refused statement is
//! answered with [`Message::Overloaded`] rather than blocking the session.

use chronicle_db::{AppendOutcome, DbStats, ExecOutcome};
use chronicle_types::codec::{Reader, Writer};
use chronicle_types::{ChronicleError, Result, Tuple};

/// Wire protocol version. Bumped by the failover work (term stamps and
/// session idempotency); a peer announcing a different version is refused
/// at the handshake with a typed error, never half-understood.
pub const PROTOCOL_VERSION: u32 = 2;

/// What a connecting peer wants from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Interactive SQL over the leader pipeline.
    Client,
    /// WAL log shipping (a replication follower).
    Follower,
}

/// The result of one remotely executed statement — [`ExecOutcome`] with
/// the local-only maintenance report reduced to its wire-relevant core.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteOutcome {
    /// A catalog object was created (kind, name).
    Created(String, String),
    /// A batch was appended (sequence number, chronon).
    Appended {
        /// Sequence number the batch was admitted under.
        seq: u64,
        /// Chronon the batch was stamped with.
        at: i64,
    },
    /// Relation rows changed (count).
    RelationChanged(u64),
    /// Query rows.
    Rows(Vec<Tuple>),
    /// A view was dropped.
    Dropped(String),
}

impl From<&ExecOutcome> for RemoteOutcome {
    fn from(o: &ExecOutcome) -> Self {
        match o {
            ExecOutcome::Created(kind, name) => {
                RemoteOutcome::Created((*kind).to_string(), name.clone())
            }
            ExecOutcome::Appended(AppendOutcome { seq, at, .. }) => RemoteOutcome::Appended {
                seq: seq.0,
                at: at.0,
            },
            ExecOutcome::RelationChanged(n) => RemoteOutcome::RelationChanged(*n as u64),
            ExecOutcome::Rows(rows) => RemoteOutcome::Rows(rows.clone()),
            ExecOutcome::Dropped(name) => RemoteOutcome::Dropped(name.clone()),
        }
    }
}

/// The statistics a server reports over the wire — the replication- and
/// network-relevant cut of [`DbStats`], plus the server's own session
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Appends executed.
    pub appends: u64,
    /// Tuples appended.
    pub tuples_appended: u64,
    /// WAL records logged.
    pub wal_records: u64,
    /// WAL bytes written.
    pub wal_bytes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Network sessions accepted since the server started.
    pub net_sessions: u64,
    /// Frames received.
    pub net_frames_in: u64,
    /// Frames sent.
    pub net_frames_out: u64,
    /// Raw WAL segment bytes shipped to followers.
    pub net_shipped_bytes: u64,
    /// Request messages served.
    pub net_requests: u64,
    /// Statements answered from the session dedupe cache (idempotent
    /// retries that were *not* re-applied).
    pub session_replays: u64,
    /// Statements refused at admission because the pipeline queue was
    /// full (each was answered with [`Message::Overloaded`]).
    pub net_overload_rejections: u64,
    /// p50 request service latency in nanoseconds (0 with no samples).
    pub net_latency_p50_nanos: u64,
    /// p99 request service latency in nanoseconds (0 with no samples).
    pub net_latency_p99_nanos: u64,
    /// Follower only: highest lsn applied from shipped WAL.
    pub follower_applied_lsn: Option<u64>,
    /// Follower only: worst-shard replication lag in records.
    pub replication_lag: Option<u64>,
}

impl WireStats {
    /// Project the wire-relevant fields out of a [`DbStats`].
    pub fn from_db(stats: &DbStats) -> WireStats {
        WireStats {
            appends: stats.appends,
            tuples_appended: stats.tuples_appended,
            wal_records: stats.wal_records,
            wal_bytes: stats.wal_bytes,
            checkpoints: stats.checkpoints,
            net_sessions: stats.net_sessions,
            net_frames_in: stats.net_frames_in,
            net_frames_out: stats.net_frames_out,
            net_shipped_bytes: stats.net_shipped_bytes,
            net_requests: stats.net_requests,
            session_replays: stats.session_replays,
            net_overload_rejections: 0,
            net_latency_p50_nanos: stats.net_latency_percentile(0.50),
            net_latency_p99_nanos: stats.net_latency_percentile(0.99),
            follower_applied_lsn: stats.follower_applied_lsn,
            replication_lag: stats.replication_lag,
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener: what the peer wants, which protocol it speaks,
    /// and the highest leadership term it has observed (0 when it has
    /// never seen one). A server whose own term is *lower* than the
    /// peer's is a deposed leader and must answer [`Message::Fenced`].
    Hello {
        /// What the peer wants from the server.
        role: Role,
        /// The peer's [`PROTOCOL_VERSION`]; a mismatch is refused.
        version: u32,
        /// Highest leadership term the peer has observed.
        term: u64,
    },
    /// Server's answer to [`Message::Hello`]: the shard count and the
    /// server's current leadership term.
    Welcome {
        /// Number of shards behind the server.
        shards: u32,
        /// The server's current leadership term.
        term: u64,
    },
    /// Execute one SQL statement, optionally stamped for idempotency.
    /// `session == 0` means unstamped (fire once, no dedupe); a nonzero
    /// session with a monotone `seq` lets the server answer a retried
    /// statement from its dedupe cache instead of applying it twice.
    Sql {
        /// The statement text.
        sql: String,
        /// Client session id (0 = unstamped).
        session: u64,
        /// Statement sequence number within the session.
        seq: u64,
    },
    /// Successful statement result.
    SqlOk(RemoteOutcome),
    /// Request failed; the error rendered as text.
    ErrReply(String),
    /// Request server statistics.
    StatsReq,
    /// Statistics reply.
    StatsReply(WireStats),
    /// Follower: start shipping from these per-shard applied lsns. The
    /// follower's term rides along: a leader seeing a *higher* term than
    /// its own has been deposed and must answer [`Message::Fenced`]
    /// instead of shipping.
    FetchWal {
        /// Applied lsn per shard (length must equal the shard count).
        applied: Vec<u64>,
        /// The follower's current term.
        term: u64,
    },
    /// A segment stream begins for one shard (from byte offset 0). The
    /// shipping leader's term rides on every stream start so a zombie
    /// ex-leader's shipper is fenced before a single byte is ingested.
    SegStart {
        /// Shard index.
        shard: u32,
        /// First lsn of the segment (its identity).
        first_lsn: u64,
        /// The shipping leader's term.
        term: u64,
    },
    /// Raw segment bytes.
    SegBytes {
        /// Shard index.
        shard: u32,
        /// Segment identity.
        first_lsn: u64,
        /// Byte offset within the segment file.
        offset: u64,
        /// The bytes (leader file content, verbatim).
        bytes: Vec<u8>,
    },
    /// The segment is complete (leader sealed it).
    SegSeal {
        /// Shard index.
        shard: u32,
        /// Segment identity.
        first_lsn: u64,
    },
    /// Leader's durable frontier per shard.
    Heartbeat {
        /// Last durable lsn per shard.
        durable: Vec<u64>,
    },
    /// Orderly goodbye; the connection closes after this.
    Goodbye,
    /// The request carried a stale leadership term — or the answering
    /// node itself is deposed. Maps to [`ChronicleError::Fenced`]; the
    /// client should rediscover the current leader and retry there.
    Fenced {
        /// The losing (stale) term.
        observed: u64,
        /// The winning (current) term.
        current: u64,
    },
    /// The statement was refused at admission: the pipeline queue is
    /// full. It was *not* applied; retry after the hinted delay. Maps to
    /// [`ChronicleError::Overloaded`].
    Overloaded {
        /// Suggested client-side delay before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_SQL: u8 = 2;
const TAG_SQL_OK: u8 = 3;
const TAG_ERR: u8 = 4;
const TAG_STATS_REQ: u8 = 5;
const TAG_STATS_REPLY: u8 = 6;
const TAG_FETCH_WAL: u8 = 7;
const TAG_SEG_START: u8 = 8;
const TAG_SEG_BYTES: u8 = 9;
const TAG_SEG_SEAL: u8 = 10;
const TAG_SEG_HEARTBEAT: u8 = 11;
const TAG_GOODBYE: u8 = 12;
const TAG_FENCED: u8 = 13;
const TAG_OVERLOADED: u8 = 14;

const OUT_CREATED: u8 = 0;
const OUT_APPENDED: u8 = 1;
const OUT_REL_CHANGED: u8 = 2;
const OUT_ROWS: u8 = 3;
const OUT_DROPPED: u8 = 4;

fn corrupt(detail: String) -> ChronicleError {
    ChronicleError::Corruption { detail }
}

fn write_u64s(w: &mut Writer, xs: &[u64]) {
    w.u32(xs.len() as u32);
    for &x in xs {
        w.u64(x);
    }
}

fn read_u64s(r: &mut Reader) -> Result<Vec<u64>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn write_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
    }
}

fn read_opt_u64(r: &mut Reader) -> Result<Option<u64>> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.u64()?),
    })
}

fn write_outcome(w: &mut Writer, o: &RemoteOutcome) {
    match o {
        RemoteOutcome::Created(kind, name) => {
            w.u8(OUT_CREATED);
            w.str(kind);
            w.str(name);
        }
        RemoteOutcome::Appended { seq, at } => {
            w.u8(OUT_APPENDED);
            w.u64(*seq);
            w.i64(*at);
        }
        RemoteOutcome::RelationChanged(n) => {
            w.u8(OUT_REL_CHANGED);
            w.u64(*n);
        }
        RemoteOutcome::Rows(rows) => {
            w.u8(OUT_ROWS);
            w.u32(rows.len() as u32);
            for t in rows {
                w.tuple(t);
            }
        }
        RemoteOutcome::Dropped(name) => {
            w.u8(OUT_DROPPED);
            w.str(name);
        }
    }
}

fn read_outcome(r: &mut Reader) -> Result<RemoteOutcome> {
    Ok(match r.u8()? {
        OUT_CREATED => RemoteOutcome::Created(r.str()?, r.str()?),
        OUT_APPENDED => RemoteOutcome::Appended {
            seq: r.u64()?,
            at: r.i64()?,
        },
        OUT_REL_CHANGED => RemoteOutcome::RelationChanged(r.u64()?),
        OUT_ROWS => {
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rows.push(r.tuple()?);
            }
            RemoteOutcome::Rows(rows)
        }
        OUT_DROPPED => RemoteOutcome::Dropped(r.str()?),
        t => return Err(corrupt(format!("unknown outcome tag {t}"))),
    })
}

fn write_stats(w: &mut Writer, s: &WireStats) {
    w.u64(s.appends);
    w.u64(s.tuples_appended);
    w.u64(s.wal_records);
    w.u64(s.wal_bytes);
    w.u64(s.checkpoints);
    w.u64(s.net_sessions);
    w.u64(s.net_frames_in);
    w.u64(s.net_frames_out);
    w.u64(s.net_shipped_bytes);
    w.u64(s.net_requests);
    w.u64(s.session_replays);
    w.u64(s.net_overload_rejections);
    w.u64(s.net_latency_p50_nanos);
    w.u64(s.net_latency_p99_nanos);
    write_opt_u64(w, s.follower_applied_lsn);
    write_opt_u64(w, s.replication_lag);
}

fn read_stats(r: &mut Reader) -> Result<WireStats> {
    Ok(WireStats {
        appends: r.u64()?,
        tuples_appended: r.u64()?,
        wal_records: r.u64()?,
        wal_bytes: r.u64()?,
        checkpoints: r.u64()?,
        net_sessions: r.u64()?,
        net_frames_in: r.u64()?,
        net_frames_out: r.u64()?,
        net_shipped_bytes: r.u64()?,
        net_requests: r.u64()?,
        session_replays: r.u64()?,
        net_overload_rejections: r.u64()?,
        net_latency_p50_nanos: r.u64()?,
        net_latency_p99_nanos: r.u64()?,
        follower_applied_lsn: read_opt_u64(r)?,
        replication_lag: read_opt_u64(r)?,
    })
}

impl Message {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Hello {
                role,
                version,
                term,
            } => {
                w.u8(TAG_HELLO);
                w.u8(match role {
                    Role::Client => 0,
                    Role::Follower => 1,
                });
                w.u32(*version);
                w.u64(*term);
            }
            Message::Welcome { shards, term } => {
                w.u8(TAG_WELCOME);
                w.u32(*shards);
                w.u64(*term);
            }
            Message::Sql { sql, session, seq } => {
                w.u8(TAG_SQL);
                w.str(sql);
                w.u64(*session);
                w.u64(*seq);
            }
            Message::SqlOk(outcome) => {
                w.u8(TAG_SQL_OK);
                write_outcome(&mut w, outcome);
            }
            Message::ErrReply(detail) => {
                w.u8(TAG_ERR);
                w.str(detail);
            }
            Message::StatsReq => w.u8(TAG_STATS_REQ),
            Message::StatsReply(stats) => {
                w.u8(TAG_STATS_REPLY);
                write_stats(&mut w, stats);
            }
            Message::FetchWal { applied, term } => {
                w.u8(TAG_FETCH_WAL);
                write_u64s(&mut w, applied);
                w.u64(*term);
            }
            Message::SegStart {
                shard,
                first_lsn,
                term,
            } => {
                w.u8(TAG_SEG_START);
                w.u32(*shard);
                w.u64(*first_lsn);
                w.u64(*term);
            }
            Message::SegBytes {
                shard,
                first_lsn,
                offset,
                bytes,
            } => {
                w.u8(TAG_SEG_BYTES);
                w.u32(*shard);
                w.u64(*first_lsn);
                w.u64(*offset);
                w.bytes(bytes);
            }
            Message::SegSeal { shard, first_lsn } => {
                w.u8(TAG_SEG_SEAL);
                w.u32(*shard);
                w.u64(*first_lsn);
            }
            Message::Heartbeat { durable } => {
                w.u8(TAG_SEG_HEARTBEAT);
                write_u64s(&mut w, durable);
            }
            Message::Goodbye => w.u8(TAG_GOODBYE),
            Message::Fenced { observed, current } => {
                w.u8(TAG_FENCED);
                w.u64(*observed);
                w.u64(*current);
            }
            Message::Overloaded { retry_after_ms } => {
                w.u8(TAG_OVERLOADED);
                w.u64(*retry_after_ms);
            }
        }
        w.into_bytes()
    }

    /// Decode from a frame payload. Trailing garbage after a well-formed
    /// message is corruption too — frames carry exactly one message.
    pub fn decode(payload: &[u8]) -> Result<Message> {
        let mut r = Reader::new(payload);
        let msg = match r.u8().map_err(|e| corrupt(format!("empty message: {e}")))? {
            TAG_HELLO => Message::Hello {
                role: match r.u8()? {
                    0 => Role::Client,
                    1 => Role::Follower,
                    t => return Err(corrupt(format!("unknown role tag {t}"))),
                },
                version: r.u32()?,
                term: r.u64()?,
            },
            TAG_WELCOME => Message::Welcome {
                shards: r.u32()?,
                term: r.u64()?,
            },
            TAG_SQL => Message::Sql {
                sql: r.str()?,
                session: r.u64()?,
                seq: r.u64()?,
            },
            TAG_SQL_OK => Message::SqlOk(read_outcome(&mut r)?),
            TAG_ERR => Message::ErrReply(r.str()?),
            TAG_STATS_REQ => Message::StatsReq,
            TAG_STATS_REPLY => Message::StatsReply(read_stats(&mut r)?),
            TAG_FETCH_WAL => Message::FetchWal {
                applied: read_u64s(&mut r)?,
                term: r.u64()?,
            },
            TAG_SEG_START => Message::SegStart {
                shard: r.u32()?,
                first_lsn: r.u64()?,
                term: r.u64()?,
            },
            TAG_SEG_BYTES => Message::SegBytes {
                shard: r.u32()?,
                first_lsn: r.u64()?,
                offset: r.u64()?,
                bytes: r.bytes()?,
            },
            TAG_SEG_SEAL => Message::SegSeal {
                shard: r.u32()?,
                first_lsn: r.u64()?,
            },
            TAG_SEG_HEARTBEAT => Message::Heartbeat {
                durable: read_u64s(&mut r)?,
            },
            TAG_GOODBYE => Message::Goodbye,
            TAG_FENCED => Message::Fenced {
                observed: r.u64()?,
                current: r.u64()?,
            },
            TAG_OVERLOADED => Message::Overloaded {
                retry_after_ms: r.u64()?,
            },
            t => return Err(corrupt(format!("unknown message tag {t}"))),
        };
        if !r.at_end() {
            return Err(corrupt("trailing bytes after message".into()));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_testkit::{Rng, SeedableRng, SmallRng};
    use chronicle_types::{tuple, SeqNo};

    fn sample_messages(rng: &mut SmallRng) -> Vec<Message> {
        let mut msgs = vec![
            Message::Hello {
                role: Role::Client,
                version: PROTOCOL_VERSION,
                term: 0,
            },
            Message::Hello {
                role: Role::Follower,
                version: PROTOCOL_VERSION,
                term: 3,
            },
            Message::Welcome { shards: 4, term: 2 },
            Message::Sql {
                sql: "SELECT * FROM totals".into(),
                session: 0,
                seq: 0,
            },
            Message::Sql {
                sql: "APPEND INTO c VALUES (1)".into(),
                session: 0xfeed_beef,
                seq: 41,
            },
            Message::SqlOk(RemoteOutcome::Created("view".into(), "totals".into())),
            Message::SqlOk(RemoteOutcome::Appended { seq: 17, at: -3 }),
            Message::SqlOk(RemoteOutcome::RelationChanged(2)),
            Message::SqlOk(RemoteOutcome::Rows(vec![
                tuple![SeqNo(1), 42i64, "x", 1.5f64],
                tuple![SeqNo(2), -7i64, "y", 0.25f64],
            ])),
            Message::SqlOk(RemoteOutcome::Dropped("totals".into())),
            Message::ErrReply("no such view".into()),
            Message::StatsReq,
            Message::StatsReply(WireStats {
                appends: 10,
                net_shipped_bytes: 12345,
                follower_applied_lsn: Some(99),
                replication_lag: None,
                ..WireStats::default()
            }),
            Message::FetchWal {
                applied: vec![0, 17, 4],
                term: 1,
            },
            Message::SegSeal {
                shard: 2,
                first_lsn: 18,
            },
            Message::Heartbeat {
                durable: vec![40, 41],
            },
            Message::Goodbye,
            Message::Fenced {
                observed: 1,
                current: 2,
            },
            Message::Overloaded { retry_after_ms: 25 },
        ];
        for _ in 0..20 {
            let n = rng.gen_range(0..300usize);
            msgs.push(Message::SegBytes {
                shard: rng.gen_range(0..8u32),
                first_lsn: rng.next_u64() >> 20,
                offset: rng.next_u64() >> 40,
                bytes: (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect(),
            });
            msgs.push(Message::SegStart {
                shard: rng.gen_range(0..8u32),
                first_lsn: rng.next_u64() >> 20,
                term: rng.gen_range(0..4u32) as u64,
            });
        }
        msgs
    }

    #[test]
    fn messages_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xc0de_ca11);
        for msg in sample_messages(&mut rng) {
            let bytes = msg.encode();
            assert_eq!(Message::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncations_never_panic_and_never_misparse() {
        let mut rng = SmallRng::seed_from_u64(0xdead_50f7);
        for msg in sample_messages(&mut rng) {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // Either an error, or (only possible when the cut removes
                // trailing-garbage-sensitive padding — it cannot here) a
                // different message. Never the original bytes' meaning.
                if let Ok(parsed) = Message::decode(&bytes[..cut]) {
                    assert_ne!(parsed, msg, "cut {cut} of {msg:?}");
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Message::Goodbye.encode();
        bytes.push(0);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn framed_messages_survive_rechunking() {
        use crate::frame::{encode_frame, FrameDecoder};
        let mut rng = SmallRng::seed_from_u64(0x0b5e_55ed);
        let msgs = sample_messages(&mut rng);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(&m.encode()));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = 1 + rng.gen_range(0..100usize);
            let end = (pos + n).min(stream.len());
            dec.feed(&stream[pos..end]);
            pos = end;
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(Message::decode(&p).unwrap());
            }
        }
        assert_eq!(got, msgs);
    }
}
