//! One framed, message-typed connection over a `TcpStream`.
//!
//! Shared by the server, the client, and the replica: send a
//! [`Message`] as one CRC frame, receive messages either blocking or with
//! a bounded wait (so serving loops can interleave socket reads with
//! shipping work and stop-flag checks).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use chronicle_types::{ChronicleError, Result};

use crate::frame::{encode_frame, FrameDecoder};
use crate::proto::Message;

fn net_err(context: &str, e: std::io::Error) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("network: {context}: {e}"),
    }
}

fn closed(context: &str) -> ChronicleError {
    ChronicleError::Durability {
        detail: format!("network: {context}: connection closed"),
    }
}

/// A framed connection; counts frames for the stats surface.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Frames received on this connection.
    pub frames_in: u64,
    /// Frames sent on this connection.
    pub frames_out: u64,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Result<Conn> {
        stream
            .set_nodelay(true)
            .map_err(|e| net_err("setting TCP_NODELAY", e))?;
        Ok(Conn {
            stream,
            dec: FrameDecoder::new(),
            frames_in: 0,
            frames_out: 0,
        })
    }

    /// Send one message (one frame), flushing to the socket.
    pub(crate) fn send(&mut self, msg: &Message) -> Result<()> {
        let frame = encode_frame(&msg.encode());
        self.stream
            .write_all(&frame)
            .map_err(|e| net_err("sending frame", e))?;
        self.frames_out += 1;
        Ok(())
    }

    /// Receive the next message, blocking until one arrives. An orderly or
    /// disorderly close is an error — callers treat it as end-of-session.
    pub(crate) fn recv(&mut self) -> Result<Message> {
        self.stream
            .set_read_timeout(None)
            .map_err(|e| net_err("clearing read timeout", e))?;
        loop {
            if let Some(payload) = self.dec.next_frame()? {
                self.frames_in += 1;
                return Message::decode(&payload);
            }
            let mut buf = [0u8; 16 * 1024];
            let n = self
                .stream
                .read(&mut buf)
                .map_err(|e| net_err("reading", e))?;
            if n == 0 {
                return Err(closed("reading"));
            }
            self.dec.feed(&buf[..n]);
        }
    }

    /// Receive the next message, waiting at most `wait` in total; a
    /// deadline miss is the typed [`ChronicleError::Timeout`] naming
    /// `what`. Unlike [`Conn::try_recv`], the budget is absolute: partial
    /// frames trickling in cannot extend it.
    pub(crate) fn recv_deadline(&mut self, wait: Duration, what: &str) -> Result<Message> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(ChronicleError::Timeout {
                    detail: what.to_string(),
                });
            }
            // Bound each socket wait so the absolute deadline is honored
            // even while partial frames keep arriving.
            if let Some(msg) = self.try_recv(left.min(Duration::from_millis(50)))? {
                return Ok(msg);
            }
        }
    }

    /// Receive the next message, waiting at most `wait`. `Ok(None)` means
    /// the wait elapsed with no complete frame.
    pub(crate) fn try_recv(&mut self, wait: Duration) -> Result<Option<Message>> {
        if let Some(payload) = self.dec.next_frame()? {
            self.frames_in += 1;
            return Ok(Some(Message::decode(&payload)?));
        }
        // set_read_timeout(0) is invalid; clamp to 1ms.
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(|e| net_err("setting read timeout", e))?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(closed("reading")),
                Ok(n) => {
                    self.dec.feed(&buf[..n]);
                    if let Some(payload) = self.dec.next_frame()? {
                        self.frames_in += 1;
                        return Ok(Some(Message::decode(&payload)?));
                    }
                    // Partial frame: keep waiting within this call's
                    // timeout budget (approximately — each read re-arms).
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(net_err("reading", e)),
            }
        }
    }
}
