//! Leader-side WAL shipping: cursors over live segments.
//!
//! A [`Shipper`] owns one cursor per shard and turns the leader's segment
//! surface ([`WalSource`]) into an ordered stream of [`ShipEvent`]s: a
//! `Start` when a segment stream (re)opens, `Bytes` chunks, and a `Seal`
//! when the leader sealed the segment and the follower may move on. The
//! events map one-to-one onto the wire messages, but the shipper itself is
//! transport-free — the TCP server, the deterministic simulation, and the
//! bench harness all drive the same `pump` loop.
//!
//! Resume discipline (mirroring [`chronicle_durability::WalIngest`]): a
//! cursor seeking lsn `L` restarts the *whole* segment containing `L` from
//! byte offset 0. The follower rewrites it byte-for-byte and skips records
//! at or below its applied lsn, so no byte-level negotiation is needed and
//! the follower's local file never diverges from the leader's.
//!
//! Only flushed bytes are ever visible through [`WalSource`] (see
//! [`chronicle_durability::Wal::read_segment`]), so a follower can never
//! apply a record its crash-recovered leader would not have.

use chronicle_db::pipeline::{ShardedPipelineHandle, WalRequest, WalResponse};
use chronicle_db::{ChronicleDb, ShardedDb};
use chronicle_durability::{SegmentInfo, SegmentRead};
use chronicle_types::{ChronicleError, Result};

/// Default shipping chunk: big enough to amortize framing, small enough
/// to interleave shards fairly.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// The leader-side segment surface a [`Shipper`] reads. Implemented for a
/// running [`ShardedPipelineHandle`] (the TCP server's view) and for a
/// directly held [`ShardedDb`] (simulation and bench harnesses).
pub trait WalSource {
    /// Number of shards.
    fn shard_count(&self) -> usize;
    /// Highest durable lsn of one shard.
    fn last_durable_lsn(&self, shard: usize) -> Result<u64>;
    /// The live segment containing `lsn` on one shard.
    fn segment_containing(&self, shard: usize, lsn: u64) -> Result<Option<SegmentInfo>>;
    /// Raw segment bytes of one shard (flushed prefix only for the active
    /// segment).
    fn read_segment(
        &self,
        shard: usize,
        first_lsn: u64,
        offset: u64,
        max: usize,
    ) -> Result<SegmentRead>;
}

impl WalSource for ShardedPipelineHandle {
    fn shard_count(&self) -> usize {
        ShardedPipelineHandle::shard_count(self)
    }

    fn last_durable_lsn(&self, shard: usize) -> Result<u64> {
        match self.wal(shard, WalRequest::LastDurableLsn)? {
            WalResponse::Lsn(l) => Ok(l),
            other => Err(ChronicleError::Internal(format!(
                "mismatched WAL response {other:?}"
            ))),
        }
    }

    fn segment_containing(&self, shard: usize, lsn: u64) -> Result<Option<SegmentInfo>> {
        match self.wal(shard, WalRequest::SegmentContaining(lsn))? {
            WalResponse::Segment(s) => Ok(s),
            other => Err(ChronicleError::Internal(format!(
                "mismatched WAL response {other:?}"
            ))),
        }
    }

    fn read_segment(
        &self,
        shard: usize,
        first_lsn: u64,
        offset: u64,
        max: usize,
    ) -> Result<SegmentRead> {
        match self.wal(
            shard,
            WalRequest::ReadSegment {
                first_lsn,
                offset,
                max,
            },
        )? {
            WalResponse::Bytes(b) => Ok(b),
            other => Err(ChronicleError::Internal(format!(
                "mismatched WAL response {other:?}"
            ))),
        }
    }
}

impl WalSource for ShardedDb {
    fn shard_count(&self) -> usize {
        ShardedDb::shard_count(self)
    }

    fn last_durable_lsn(&self, shard: usize) -> Result<u64> {
        self.shard(shard).wal_last_durable_lsn()
    }

    fn segment_containing(&self, shard: usize, lsn: u64) -> Result<Option<SegmentInfo>> {
        self.shard(shard).wal_segment_containing(lsn)
    }

    fn read_segment(
        &self,
        shard: usize,
        first_lsn: u64,
        offset: u64,
        max: usize,
    ) -> Result<SegmentRead> {
        self.shard(shard).wal_read_segment(first_lsn, offset, max)
    }
}

/// A single-shard source (the simulation's single-db mode).
impl WalSource for ChronicleDb {
    fn shard_count(&self) -> usize {
        1
    }

    fn last_durable_lsn(&self, _shard: usize) -> Result<u64> {
        self.wal_last_durable_lsn()
    }

    fn segment_containing(&self, _shard: usize, lsn: u64) -> Result<Option<SegmentInfo>> {
        self.wal_segment_containing(lsn)
    }

    fn read_segment(
        &self,
        _shard: usize,
        first_lsn: u64,
        offset: u64,
        max: usize,
    ) -> Result<SegmentRead> {
        self.wal_read_segment(first_lsn, offset, max)
    }
}

/// One shipping step's output, addressed to a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipEvent {
    /// A segment stream (re)opens from byte offset 0.
    Start {
        /// Shard index.
        shard: usize,
        /// Segment identity.
        first_lsn: u64,
    },
    /// Raw segment bytes at an offset.
    Bytes {
        /// Shard index.
        shard: usize,
        /// Segment identity.
        first_lsn: u64,
        /// Byte offset within the segment.
        offset: u64,
        /// The bytes.
        bytes: Vec<u8>,
    },
    /// The segment is complete.
    Seal {
        /// Shard index.
        shard: usize,
        /// Segment identity.
        first_lsn: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum Cursor {
    /// Find the segment containing this lsn and restart it from offset 0.
    Seek(u64),
    /// Mid-segment, next byte to ship.
    At { first_lsn: u64, offset: u64 },
}

/// Per-shard shipping cursors (see module docs).
#[derive(Debug)]
pub struct Shipper {
    cursors: Vec<Cursor>,
    chunk: usize,
}

impl Shipper {
    /// A shipper resuming after `applied` — the follower's per-shard
    /// applied lsns (zeros for a fresh follower).
    pub fn new(applied: &[u64], chunk: usize) -> Shipper {
        Shipper {
            cursors: applied.iter().map(|&l| Cursor::Seek(l + 1)).collect(),
            chunk: chunk.max(1),
        }
    }

    /// Advance every shard by at most one chunk of bytes, emitting events.
    /// Returns `true` when every shard is fully caught up with its
    /// leader's durable frontier (the caller then sleeps or polls).
    ///
    /// An `Err` from `emit` aborts the pump (connection gone); an `Err`
    /// from the source is a protocol-fatal condition, e.g. the history a
    /// cursor needs was checkpoint-truncated away.
    pub fn pump(
        &mut self,
        src: &impl WalSource,
        emit: &mut impl FnMut(ShipEvent) -> Result<()>,
    ) -> Result<bool> {
        let mut all_caught_up = true;
        for shard in 0..self.cursors.len() {
            if !self.pump_shard(shard, src, emit)? {
                all_caught_up = false;
            }
        }
        Ok(all_caught_up)
    }

    /// Advance one shard; returns `true` when it is caught up.
    fn pump_shard(
        &mut self,
        shard: usize,
        src: &impl WalSource,
        emit: &mut impl FnMut(ShipEvent) -> Result<()>,
    ) -> Result<bool> {
        let mut sent_bytes = false;
        loop {
            match self.cursors[shard] {
                Cursor::Seek(lsn) => {
                    let seg = src.segment_containing(shard, lsn)?.ok_or_else(|| {
                        ChronicleError::Durability {
                            detail: format!(
                                "shard {shard}: WAL history at lsn {lsn} was truncated away; \
                                 the follower needs a fresh copy"
                            ),
                        }
                    })?;
                    emit(ShipEvent::Start {
                        shard,
                        first_lsn: seg.first_lsn,
                    })?;
                    self.cursors[shard] = Cursor::At {
                        first_lsn: seg.first_lsn,
                        offset: 0,
                    };
                }
                Cursor::At { first_lsn, offset } => {
                    if sent_bytes {
                        // One chunk per shard per pump keeps shards fair.
                        return Ok(false);
                    }
                    let read = src.read_segment(shard, first_lsn, offset, self.chunk)?;
                    let n = read.bytes.len() as u64;
                    if n > 0 {
                        emit(ShipEvent::Bytes {
                            shard,
                            first_lsn,
                            offset,
                            bytes: read.bytes,
                        })?;
                        sent_bytes = true;
                        self.cursors[shard] = Cursor::At {
                            first_lsn,
                            offset: offset + n,
                        };
                    }
                    if offset + n >= read.total_len {
                        if read.sealed {
                            emit(ShipEvent::Seal { shard, first_lsn })?;
                            // The sealed segment's last lsn names the next
                            // segment's first record.
                            let info =
                                src.segment_containing(shard, first_lsn)?.ok_or_else(|| {
                                    ChronicleError::Durability {
                                        detail: format!(
                                            "shard {shard}: segment at lsn {first_lsn} vanished \
                                         while being shipped"
                                        ),
                                    }
                                })?;
                            self.cursors[shard] = Cursor::Seek(info.last_lsn + 1);
                        } else {
                            // Active segment fully shipped: caught up.
                            return Ok(true);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_db::{DurabilityOptions, FollowerDb};
    use chronicle_simkit::{SimFs, Vfs};
    use std::sync::Arc;

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            segment_bytes: 256,
            fsync: true,
            ..DurabilityOptions::default()
        }
    }

    /// Drive a shipper against a follower until caught up; the error path
    /// a real transport adds is absent here.
    fn sync(shipper: &mut Shipper, src: &impl WalSource, f: &mut FollowerDb) {
        loop {
            let mut events = Vec::new();
            let done = shipper
                .pump(src, &mut |e| {
                    events.push(e);
                    Ok(())
                })
                .unwrap();
            for e in events {
                match e {
                    ShipEvent::Start { shard, first_lsn } => {
                        f.begin_segment(shard, first_lsn).unwrap()
                    }
                    ShipEvent::Bytes {
                        shard,
                        first_lsn: _,
                        offset,
                        bytes,
                    } => {
                        f.ingest(shard, offset, &bytes).unwrap();
                    }
                    ShipEvent::Seal { shard, first_lsn } => {
                        f.seal_segment(shard, first_lsn).unwrap()
                    }
                }
            }
            if done {
                break;
            }
        }
    }

    #[test]
    fn shipper_streams_rotating_segments_to_convergence() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(21));
        let mut leader = ShardedDb::open_with_vfs(Arc::clone(&fs), "/L", 2, opts()).unwrap();
        leader.execute("CREATE GROUP g").unwrap();
        leader
            .execute("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g")
            .unwrap();
        leader
            .execute("CREATE VIEW v AS SELECT x, COUNT(*) AS n FROM c GROUP BY x")
            .unwrap();
        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/F", 2, opts()).unwrap();
        let mut shipper = Shipper::new(&f.applied_lsns(), 37);

        // Interleave leader writes with catch-up pumps: tiny segments force
        // many rotations mid-stream.
        for round in 0..10 {
            for i in 0..15 {
                leader
                    .execute(&format!("APPEND INTO c VALUES ({})", (round * 15 + i) % 4))
                    .unwrap();
            }
            leader.wal_flush().unwrap();
            sync(&mut shipper, &leader, &mut f);
            assert_eq!(f.snapshot_views(), leader.snapshot_views(), "round {round}");
        }
    }

    #[test]
    fn reconnect_reships_the_applied_segment_without_duplication() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(22));
        let mut leader = ShardedDb::open_with_vfs(Arc::clone(&fs), "/L", 1, opts()).unwrap();
        leader.execute("CREATE GROUP g").unwrap();
        leader
            .execute("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g")
            .unwrap();
        leader
            .execute("CREATE VIEW v AS SELECT x, SUM(x) AS s FROM c GROUP BY x")
            .unwrap();
        for i in 0..20 {
            leader
                .execute(&format!("APPEND INTO c VALUES ({})", i % 3))
                .unwrap();
        }
        leader.wal_flush().unwrap();

        let mut f = FollowerDb::open_with_vfs(Arc::clone(&fs), "/F", 1, opts()).unwrap();
        let mut s1 = Shipper::new(&f.applied_lsns(), 50);
        sync(&mut s1, &leader, &mut f);
        let mid = f.applied_lsn(0);
        assert!(mid > 0);

        // "Connection drops"; more writes land; a fresh shipper resumes
        // from the follower's applied watermark.
        for i in 0..20 {
            leader
                .execute(&format!("APPEND INTO c VALUES ({})", i % 3))
                .unwrap();
        }
        leader.wal_flush().unwrap();
        let mut s2 = Shipper::new(&f.applied_lsns(), 50);
        sync(&mut s2, &leader, &mut f);
        assert!(f.applied_lsn(0) > mid);
        assert_eq!(f.snapshot_views(), leader.snapshot_views());
    }

    #[test]
    fn truncated_history_is_a_loud_error() {
        let fs: Arc<dyn Vfs> = Arc::new(SimFs::new(23));
        let mut leader = ShardedDb::open_with_vfs(Arc::clone(&fs), "/L", 1, opts()).unwrap();
        leader.execute("CREATE GROUP g").unwrap();
        leader
            .execute("CREATE CHRONICLE c (sn SEQ, x INT) IN GROUP g")
            .unwrap();
        for i in 0..40 {
            leader
                .execute(&format!("APPEND INTO c VALUES ({i})"))
                .unwrap();
        }
        // Checkpointing without a retain floor deletes covered segments;
        // a fresh follower (applied 0) can then not be served.
        leader.checkpoint().unwrap();
        let mut shipper = Shipper::new(&[0], 64);
        let err = shipper.pump(&leader, &mut |_| Ok(())).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}
