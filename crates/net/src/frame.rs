//! Byte-stream framing: `[u32 len][u32 crc][payload]`.
//!
//! The transport under a chronicle connection is an ordered byte stream
//! (TCP, or the deterministic in-memory pipe the simulation uses) that can
//! be torn mid-frame by a crash or partition. Framing makes message
//! boundaries explicit and cheap to find again, and the CRC (the same
//! table-driven CRC-32 the WAL uses) rejects any frame the transport
//! delivered damaged — a corrupt frame is a protocol error that drops the
//! connection, never a silently misparsed message.
//!
//! Both integers are little-endian; the CRC covers the payload only. A
//! length above [`MAX_FRAME`] is rejected before any allocation, so a
//! garbage length prefix cannot balloon memory.

use chronicle_durability::crc::crc32;
use chronicle_types::{ChronicleError, Result};

/// Hard ceiling on one frame's payload (64 MiB) — far above any legal
/// message, low enough that a corrupt length prefix fails fast.
pub const MAX_FRAME: usize = 64 << 20;

/// Bytes of framing overhead per frame.
pub const FRAME_OVERHEAD: usize = 8;

/// Test-only mutation backdoor for the verify.sh mutation check: prove the
/// corrupt-frame tests notice when CRC verification is skipped.
pub(crate) fn mutate(which: &str) -> bool {
    std::env::var("CHRONICLE_MUTATE").is_ok_and(|v| v == which)
}

fn corrupt(detail: String) -> ChronicleError {
    ChronicleError::Corruption { detail }
}

/// Wrap `payload` in a frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload too large");
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder over an arbitrary chunking of the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a non-zero value after the
    /// stream ends means it died mid-frame).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next complete frame, if one is buffered. `Ok(None)`
    /// means more bytes are needed; a bad length or CRC is a hard
    /// [`ChronicleError::Corruption`] — the connection is unusable, since
    /// frame boundaries can no longer be trusted.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < FRAME_OVERHEAD {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(corrupt(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte ceiling"
            )));
        }
        if self.buf.len() < FRAME_OVERHEAD + len {
            return Ok(None);
        }
        let want = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        let payload: Vec<u8> = self.buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len].to_vec();
        self.buf.drain(..FRAME_OVERHEAD + len);
        if !mutate("skip_frame_crc") {
            let got = crc32(&payload);
            if got != want {
                return Err(corrupt(format!(
                    "frame CRC mismatch: stored {want:#010x}, computed {got:#010x}"
                )));
            }
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronicle_testkit::{Rng, SeedableRng, SmallRng};

    #[test]
    fn frames_round_trip_under_any_chunking() {
        let mut rng = SmallRng::seed_from_u64(0x5eed_f7a3);
        let payloads: Vec<Vec<u8>> = (0..50)
            .map(|_| {
                let n = rng.gen_range(0..200usize);
                (0..n).map(|_| rng.gen_range(0..256u32) as u8).collect()
            })
            .collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        for trial in 0..20usize {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                let n = 1 + rng.gen_range(0..64 + trial);
                let end = (pos + n).min(stream.len());
                dec.feed(&stream[pos..end]);
                pos = end;
                while let Some(p) = dec.next_frame().unwrap() {
                    got.push(p);
                }
            }
            assert_eq!(got, payloads, "trial {trial}");
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn truncated_stream_yields_no_frame() {
        let frame = encode_frame(b"hello, chronicle");
        for cut in 0..frame.len() {
            let mut dec = FrameDecoder::new();
            dec.feed(&frame[..cut]);
            assert!(dec.next_frame().unwrap().is_none(), "cut {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_shortens() {
        // Flip each bit of a framed message: either the decoder reports
        // corruption, or (flips in the length prefix that *shrink* the
        // frame) the CRC no longer covers the right bytes and still fails,
        // or the frame is no longer complete. No flip may yield the
        // original payload or any other "valid" payload silently — except
        // a flip that *grows* the length past the buffered bytes, which
        // must simply wait for more bytes, not misparse.
        let payload = b"the chronicle is not stored".to_vec();
        let frame = encode_frame(&payload);
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut dec = FrameDecoder::new();
            dec.feed(&bad);
            match dec.next_frame() {
                Err(ChronicleError::Corruption { .. }) => {}
                Ok(None) => {} // grown length: incomplete, never misparsed
                Ok(Some(p)) => panic!("bit {bit} produced a frame: {p:?}"),
                Err(e) => panic!("bit {bit}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn absurd_length_rejected_before_allocation() {
        let mut dec = FrameDecoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err());
    }
}
